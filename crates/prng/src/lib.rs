//! # rolag-prng
//!
//! A dependency-free, deterministic pseudo-random number generator for the
//! benchmark generators and the property-testing harness.
//!
//! The generator is ChaCha with 8 rounds, the same core the evaluation
//! harness originally used through the `rand_chacha` crate. Streams are
//! fully determined by the seed, are identical across platforms, and are
//! documented to stay stable: the Angha corpus and the synthetic Table-I
//! programs are derived from them.
//!
//! The API deliberately mirrors the small subset of the `rand` crate the
//! repository uses (`Rng::gen_range`, `Rng::gen_bool`,
//! `SeedableRng::seed_from_u64`), so generator code reads identically.

#![warn(missing_docs)]

pub mod check;

use std::ops::{Range, RangeInclusive};

/// Minimal random-source trait: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 uniformly random mantissa bits, exactly representable in f64.
        let sample = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        sample < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed. The full internal key
    /// is expanded with SplitMix64, so nearby seeds give unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that knows how to sample itself. Implemented for `Range` and
/// `RangeInclusive` over the primitive integer types.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// Uniform `u64` in `[0, width)` by Lemire's widening-multiply method with
/// rejection, so every value is exactly equally likely.
fn uniform_below(rng: &mut impl RngCore, width: u64) -> u64 {
    debug_assert!(width > 0);
    let mut m = (rng.next_u64() as u128) * (width as u128);
    let mut lo = m as u64;
    if lo < width {
        let threshold = width.wrapping_neg() % width;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (width as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let offset = uniform_below(rng, width);
                ((self.start as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let width = (end as $wide).wrapping_sub(start as $wide) as u64;
                let offset = if width == u64::MAX {
                    rng.next_u64()
                } else {
                    uniform_below(rng, width + 1)
                };
                ((start as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}

impl_sample_range! {
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
}

/// ChaCha with 8 rounds, keyed from a 64-bit seed.
///
/// The keystream matches RFC 8439's block function with the round count
/// lowered to 8, a 64-bit block counter, and an all-zero nonce.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word of `buf`; 16 means "refill".
    pos: usize,
    /// One pending half-word for `next_u32` so u32 and u64 draws interleave
    /// deterministically.
    spare: Option<u32>,
}

const CHACHA_SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] is the all-zero nonce.
        let input = state;
        for _ in 0..4 {
            // Four double rounds = 8 ChaCha rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(init);
        }
        self.buf = state;
        self.pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            pos: 16,
            spare: None,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if let Some(w) = self.spare.take() {
            return w;
        }
        if self.pos >= 16 {
            self.refill();
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha_rfc_block_shape() {
        // The keystream must not be trivially degenerate: all 16 words of a
        // block distinct from the raw key/constant inputs is a cheap sanity
        // check that the rounds actually ran.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert!(first.iter().all(|&w| !CHACHA_SIGMA.contains(&w)));
        let distinct: std::collections::HashSet<u32> = first.iter().copied().collect();
        assert!(
            distinct.len() > 12,
            "keystream block suspiciously repetitive"
        );
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let w: i32 = rng.gen_range(-100..100);
            assert!((-100..100).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rough_balance() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "biased coin: {heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _: u32 = rng.gen_range(5..5);
    }
}
