//! # rolag-tv
//!
//! Per-rewrite **translation validation** for RoLAG loop rolling, in the
//! spirit of translation-validation work on SSA peephole rewriting: instead
//! of trusting the scheduler and code generator, every candidate rewrite is
//! checked after the fact by symbolically unrolling the generated loop lane
//! by lane and proving a simulation relation against the original
//! straight-line region.
//!
//! The relation is checked *modulo the paper's abstractions* — the exact
//! algebraic liberties the alignment graph is allowed to take (see
//! [`ABSTRACTIONS`]). Everything else must match syntactically, and the
//! order of the original memory operations performed by the rolled code
//! must respect the dependence graph computed by `rolag-analysis`.
//!
//! The checker is deliberately one-sided: it may reject a correct rewrite
//! it cannot prove (a *false reject*, pinned to zero over the generator and
//! benchmark corpora by property tests), but within the declared
//! abstractions it never accepts an incorrect one. The `rolag` crate runs
//! it as a gating check before the cost model commits a candidate; the
//! difftest oracle cross-checks its verdicts against the dynamic
//! interpreter.

#![warn(missing_docs)]

pub mod expr;
mod sim;

use std::collections::HashMap;
use std::fmt;

use rolag_ir::{BlockId, Function, InstId, Module};

/// The abstractions the simulation relation is allowed to match modulo —
/// one entry per special alignment-node family the paper introduces.
/// DESIGN.md documents each; a drift-guard test keeps the two in sync.
pub const ABSTRACTIONS: &[&str] = &[
    "commutativity",
    "algebraic-identities",
    "neutral-pointer-ops",
    "monotonic-sequences",
    "recurrences",
    "reduction-reassociation",
];

/// What the rewriter did, as told to the validator. All of this is
/// untrusted: the validator re-derives everything it can and fails if the
/// hints are inconsistent with the functions.
#[derive(Debug, Clone)]
pub struct RewriteHints {
    /// Number of lanes the region was rolled into (the loop's trip count).
    pub lanes: usize,
    /// The candidate block the rewrite targeted (now the loop preheader).
    pub block: BlockId,
    /// The generated loop block.
    pub loop_block: BlockId,
    /// The generated exit block.
    pub exit_block: BlockId,
    /// Number of module globals before the rewrite; globals at or past
    /// this index are constant lookup tables the rewrite created.
    pub first_new_global: usize,
    /// Whether float reassociation (fast-math) was licensed.
    pub fast_math: bool,
    /// For every original instruction the alignment graph claimed, the
    /// lane it was assigned to.
    pub claimed_lanes: HashMap<InstId, usize>,
}

/// Why a rewrite failed to validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TvError {
    /// The rolled CFG does not have the shape a rolling rewrite produces.
    Structure(String),
    /// The rewrite uses a construct the validator does not model.
    Unsupported(String),
    /// An effectful operation has no matching original, or an original
    /// effect is never re-executed.
    EffectMismatch(String),
    /// A surviving use evaluates to a different expression than the
    /// original.
    ValueMismatch(String),
    /// The rolled code reorders conflicting memory operations.
    MemoryOrder(String),
}

impl TvError {
    /// Short machine-readable category name.
    pub fn kind(&self) -> &'static str {
        match self {
            TvError::Structure(_) => "structure",
            TvError::Unsupported(_) => "unsupported",
            TvError::EffectMismatch(_) => "effect-mismatch",
            TvError::ValueMismatch(_) => "value-mismatch",
            TvError::MemoryOrder(_) => "memory-order",
        }
    }
}

impl fmt::Display for TvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, msg) = match self {
            TvError::Structure(m)
            | TvError::Unsupported(m)
            | TvError::EffectMismatch(m)
            | TvError::ValueMismatch(m)
            | TvError::MemoryOrder(m) => (self.kind(), m),
        };
        write!(f, "{kind}: {msg}")
    }
}

impl std::error::Error for TvError {}

/// Statically validates one rolling rewrite.
///
/// `orig` is the function as it was before the rewrite; `rolled` is the
/// same function with one candidate block rolled (before any cleanup
/// pass), sharing instruction and value ids with `orig` for everything
/// that survived. `module` is the module the rolled function lives in —
/// its types, globals (including freshly added lookup tables), and
/// function effect annotations are consulted.
///
/// Returns `Ok(())` when the rolled code provably simulates the original
/// region modulo [`ABSTRACTIONS`], and a [`TvError`] describing the first
/// failed obligation otherwise.
pub fn validate_rewrite(
    module: &Module,
    orig: &Function,
    rolled: &Function,
    hints: &RewriteHints,
) -> Result<(), TvError> {
    sim::Validator::new(module, orig, rolled, hints).run()
}
