//! The simulation-relation checker: symbolically unrolls a generated
//! rolled loop lane by lane and proves it equivalent to the original
//! straight-line region.
//!
//! The proof obligations, in order:
//!
//! 1. **Structure** — the rewrite only appended a loop block and an exit
//!    block, split the candidate block's surviving instructions between
//!    preheader and exit in their original relative order, and left every
//!    other block's instruction list untouched.
//! 2. **Trip count** — the loop's latch condition folds to a constant at
//!    every lane: taken for lanes `0..lanes-1`, not taken at the last, so
//!    the loop provably executes exactly `lanes` iterations.
//! 3. **Effects** — every effectful instruction the loop executes
//!    (load/store/call on original memory) matches a distinct rolled-away
//!    original instruction at the same lane with symbolically equal
//!    operands, and every rolled-away effect is re-executed exactly once.
//!    Scratch memory introduced by the rewrite (allocas, constant-data
//!    lookup tables) is simulated precisely instead.
//! 4. **Values** — every surviving instruction's rewritten operands
//!    evaluate to the same normalized expression as the originals.
//! 5. **Memory order** — the order in which the rolled code performs the
//!    original memory operations respects every conflict edge of the
//!    block's dependence graph.
//!
//! Anything the checker cannot resolve is an error — the validator can
//! reject a correct rewrite (a false reject, which the property tests pin
//! to zero on real corpora) but never accept a wrong one within the
//! declared abstractions.

use std::collections::{HashMap, HashSet};

use rolag_analysis::depgraph::BlockDeps;
use rolag_ir::{
    Function, GlobalInit, InstData, InstExtra, InstId, Module, Opcode, TypeId, ValueDef, ValueId,
};

use crate::expr::{Expr, ExprArena, ExprId, ExtraKey};
use crate::{RewriteHints, TvError};

/// Which part of the rolled CFG an expression is being evaluated in.
/// Values defined in a later phase are not yet available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pre,
    Loop,
    Exit,
}

/// The rolled code's instruction layout discovered by the structure check.
struct Layout {
    pre_surv: Vec<InstId>,
    pre_new: Vec<InstId>,
    loop_list: Vec<InstId>,
    exit_new: Vec<InstId>,
    exit_surv: Vec<InstId>,
}

pub(crate) struct Validator<'a> {
    module: &'a Module,
    orig: &'a Function,
    rolled: &'a Function,
    hints: &'a RewriteHints,
    arena: ExprArena,
    /// Original-block instructions the rewrite deleted (rolled away).
    region: HashSet<InstId>,
    orig_block_insts: Vec<InstId>,
    orig_memo: HashMap<ValueId, ExprId>,
    /// Current symbolic value of rolled-function SSA values.
    bindings: HashMap<ValueId, ExprId>,
    /// Scratch memory: `(allocation, constant index) -> stored value`.
    heap: HashMap<(ExprId, i64), ExprId>,
    /// Allocations created by the rewrite (addresses disjoint from all
    /// original memory).
    fresh: HashSet<ExprId>,
    matched: HashSet<InstId>,
    match_order: Vec<InstId>,
    num_orig_insts: usize,
}

impl<'a> Validator<'a> {
    pub(crate) fn new(
        module: &'a Module,
        orig: &'a Function,
        rolled: &'a Function,
        hints: &'a RewriteHints,
    ) -> Self {
        Validator {
            module,
            orig,
            rolled,
            hints,
            arena: ExprArena::new(hints.fast_math),
            region: HashSet::new(),
            orig_block_insts: Vec::new(),
            orig_memo: HashMap::new(),
            bindings: HashMap::new(),
            heap: HashMap::new(),
            fresh: HashSet::new(),
            matched: HashSet::new(),
            match_order: Vec::new(),
            num_orig_insts: orig.num_insts(),
        }
    }

    pub(crate) fn run(mut self) -> Result<(), TvError> {
        let layout = self.check_structure()?;
        self.run_preheader(&layout.pre_new)?;
        self.run_loop(&layout.loop_list)?;
        for &i in &layout.exit_new {
            self.exec_inst(i, Phase::Exit, 0)?;
        }
        self.check_effect_coverage()?;
        self.check_survivors()?;
        self.check_memory_order(&layout.pre_surv, &layout.exit_surv)
    }

    // ------------------------------------------------------------ structure

    fn check_structure(&mut self) -> Result<Layout, TvError> {
        let h = self.hints;
        let nb = self.orig.num_blocks();
        if h.lanes == 0 {
            return Err(TvError::Structure("zero-lane rewrite".into()));
        }
        if self.rolled.num_blocks() != nb + 2 {
            return Err(TvError::Structure(format!(
                "expected exactly two new blocks, found {} -> {}",
                nb,
                self.rolled.num_blocks()
            )));
        }
        if h.loop_block.index() != nb || h.exit_block.index() != nb + 1 || h.block.index() >= nb {
            return Err(TvError::Structure(
                "loop/exit are not the appended blocks".into(),
            ));
        }
        for b in self.orig.block_ids() {
            if b == h.block {
                continue;
            }
            if self.orig.block(b).insts != self.rolled.block(b).insts {
                return Err(TvError::Structure(format!(
                    "untouched block `{}` changed its instruction list",
                    self.orig.block(b).name
                )));
            }
        }

        let n = self.num_orig_insts;
        let mut pre_surv = Vec::new();
        let mut pre_new = Vec::new();
        for &i in &self.rolled.block(h.block).insts {
            if i.index() < n {
                if !pre_new.is_empty() {
                    return Err(TvError::Structure(
                        "surviving instruction after generated code in the preheader".into(),
                    ));
                }
                pre_surv.push(i);
            } else {
                pre_new.push(i);
            }
        }
        let loop_list = self.rolled.block(h.loop_block).insts.clone();
        if let Some(&i) = loop_list.iter().find(|i| i.index() < n) {
            return Err(TvError::Structure(format!(
                "original instruction {} moved into the loop body",
                i.index()
            )));
        }
        let mut exit_new = Vec::new();
        let mut exit_surv = Vec::new();
        for &i in &self.rolled.block(h.exit_block).insts {
            if i.index() < n {
                exit_surv.push(i);
            } else {
                if !exit_surv.is_empty() {
                    return Err(TvError::Structure(
                        "generated instruction after survivors in the exit block".into(),
                    ));
                }
                exit_new.push(i);
            }
        }

        let orig_list = self.orig.block(h.block).insts.clone();
        let order: HashMap<InstId, usize> =
            orig_list.iter().enumerate().map(|(k, &i)| (i, k)).collect();
        let mut seen: HashSet<InstId> = HashSet::new();
        for &i in pre_surv.iter().chain(&exit_surv) {
            if !order.contains_key(&i) {
                return Err(TvError::Structure(format!(
                    "survivor {} is not from the candidate block",
                    i.index()
                )));
            }
            if !seen.insert(i) {
                return Err(TvError::Structure(format!(
                    "survivor {} placed twice",
                    i.index()
                )));
            }
        }
        for list in [&pre_surv, &exit_surv] {
            for w in list.windows(2) {
                if order[&w[0]] >= order[&w[1]] {
                    return Err(TvError::Structure(
                        "survivors reordered against the original block".into(),
                    ));
                }
            }
        }

        self.region = orig_list
            .iter()
            .copied()
            .filter(|i| !seen.contains(i))
            .collect();
        for &i in &self.region {
            let op = self.orig.inst(i).opcode;
            if op == Opcode::Phi || op.is_terminator() {
                return Err(TvError::Unsupported(format!(
                    "rewrite deleted a {} it cannot re-express",
                    op.mnemonic()
                )));
            }
        }
        if pre_surv
            .iter()
            .any(|&i| self.orig.inst(i).opcode.is_terminator())
        {
            return Err(TvError::Structure(
                "original terminator left in the preheader".into(),
            ));
        }
        match exit_surv.last() {
            Some(&i) if self.orig.inst(i).opcode.is_terminator() => {}
            _ => {
                return Err(TvError::Structure(
                    "exit block does not end with the original terminator".into(),
                ))
            }
        }
        self.orig_block_insts = orig_list;
        Ok(Layout {
            pre_surv,
            pre_new,
            loop_list,
            exit_new,
            exit_surv,
        })
    }

    // ------------------------------------------------------------ execution

    fn run_preheader(&mut self, pre_new: &[InstId]) -> Result<(), TvError> {
        let Some((&last, rest)) = pre_new.split_last() else {
            return Err(TvError::Structure(
                "preheader generates no branch to the loop".into(),
            ));
        };
        for &i in rest {
            self.exec_inst(i, Phase::Pre, 0)?;
        }
        let d = self.rolled.inst(last);
        match (d.opcode, &d.extra) {
            (Opcode::Br, InstExtra::Br { dest }) if *dest == self.hints.loop_block => Ok(()),
            _ => Err(TvError::Structure(
                "preheader does not end with a branch to the loop".into(),
            )),
        }
    }

    fn run_loop(&mut self, loop_list: &[InstId]) -> Result<(), TvError> {
        let h = self.hints;
        let Some((&latch, body)) = loop_list.split_last() else {
            return Err(TvError::Structure("empty loop block".into()));
        };
        let latch_data = self.rolled.inst(latch);
        let cond = match (latch_data.opcode, &latch_data.extra) {
            (
                Opcode::CondBr,
                &InstExtra::CondBr {
                    then_dest,
                    else_dest,
                },
            ) if then_dest == h.loop_block && else_dest == h.exit_block => latch_data.operands[0],
            _ => {
                return Err(TvError::Structure(
                    "loop does not end with `condbr loop, exit`".into(),
                ))
            }
        };

        // Split header phis from the straight-line body.
        let mut phis: Vec<(ValueId, ValueId, ValueId)> = Vec::new();
        let mut body_insts: Vec<InstId> = Vec::new();
        for &i in body {
            let d = self.rolled.inst(i);
            if d.opcode == Opcode::Phi {
                if !body_insts.is_empty() {
                    return Err(TvError::Structure("phi after non-phi in the loop".into()));
                }
                let InstExtra::Phi { incoming } = &d.extra else {
                    return Err(TvError::Structure("phi without incoming blocks".into()));
                };
                let (pre_arm, loop_arm) = if incoming.as_slice() == [h.block, h.loop_block] {
                    (d.operands[0], d.operands[1])
                } else if incoming.as_slice() == [h.loop_block, h.block] {
                    (d.operands[1], d.operands[0])
                } else {
                    return Err(TvError::Structure(
                        "loop phi arms are not exactly preheader + latch".into(),
                    ));
                };
                phis.push((self.rolled.inst_result(i), pre_arm, loop_arm));
            } else if d.opcode.is_terminator() {
                return Err(TvError::Structure("terminator inside the loop body".into()));
            } else {
                body_insts.push(i);
            }
        }

        for lane in 0..h.lanes {
            // All phi next-values are computed against the previous lane's
            // bindings before any rebinding (parallel phi semantics).
            let mut next = Vec::with_capacity(phis.len());
            for &(res, pre_arm, loop_arm) in &phis {
                let v = if lane == 0 {
                    self.rolled_expr(pre_arm, Phase::Pre)?
                } else {
                    self.rolled_expr(loop_arm, Phase::Loop)?
                };
                next.push((res, v));
            }
            for (res, v) in next {
                self.bindings.insert(res, v);
            }
            for &i in &body_insts {
                self.exec_inst(i, Phase::Loop, lane)?;
            }
            let c = self.rolled_expr(cond, Phase::Loop)?;
            let continues = lane + 1 < h.lanes;
            match self.arena.get(c) {
                Expr::Int { value, .. } => {
                    if (*value != 0) != continues {
                        return Err(TvError::Structure(format!(
                            "latch condition wrong at lane {lane}: loop would not run exactly {} times",
                            h.lanes
                        )));
                    }
                }
                _ => {
                    return Err(TvError::Structure(
                        "loop trip count is not statically decided".into(),
                    ))
                }
            }
        }
        Ok(())
    }

    fn exec_inst(&mut self, i: InstId, phase: Phase, lane: usize) -> Result<(), TvError> {
        let d = self.rolled.inst(i).clone();
        match d.opcode {
            Opcode::Alloca => match phase {
                Phase::Pre => {
                    let e = self.arena.intern(Expr::Fresh(i));
                    self.fresh.insert(e);
                    self.bindings.insert(self.rolled.inst_result(i), e);
                    Ok(())
                }
                Phase::Loop => self.match_effect(i, &d, lane),
                Phase::Exit => Err(TvError::Structure(
                    "generated alloca in the exit block".into(),
                )),
            },
            Opcode::Load => {
                let addr = self.rolled_expr(d.operands[0], phase)?;
                if let Some(v) = self.synthetic_load(addr, d.ty)? {
                    self.bindings.insert(self.rolled.inst_result(i), v);
                    Ok(())
                } else if phase == Phase::Loop {
                    self.match_effect(i, &d, lane)
                } else {
                    Err(TvError::Structure(
                        "generated load of original memory outside the loop".into(),
                    ))
                }
            }
            Opcode::Store => {
                let value = self.rolled_expr(d.operands[0], phase)?;
                let addr = self.rolled_expr(d.operands[1], phase)?;
                if let Some(slot) = self.fresh_slot(addr)? {
                    if phase == Phase::Exit {
                        return Err(TvError::Structure(
                            "generated store in the exit block".into(),
                        ));
                    }
                    self.heap.insert(slot, value);
                    Ok(())
                } else if phase == Phase::Loop {
                    self.match_effect(i, &d, lane)
                } else {
                    Err(TvError::Structure(
                        "generated store to original memory outside the loop".into(),
                    ))
                }
            }
            Opcode::Call => {
                if phase == Phase::Loop {
                    self.match_effect(i, &d, lane)
                } else {
                    Err(TvError::Structure("generated call outside the loop".into()))
                }
            }
            Opcode::Phi => Err(TvError::Structure(
                "generated phi outside the loop header".into(),
            )),
            op if op.is_terminator() => Err(TvError::Structure(format!(
                "unexpected generated {} outside block tails",
                op.mnemonic()
            ))),
            _ => {
                let mut args = Vec::with_capacity(d.operands.len());
                for &v in &d.operands {
                    args.push(self.rolled_expr(v, phase)?);
                }
                let extra = extra_key(&d.extra)?;
                let e = self
                    .arena
                    .op(&self.module.types, d.opcode, d.ty, extra, args);
                self.bindings.insert(self.rolled.inst_result(i), e);
                Ok(())
            }
        }
    }

    // ----------------------------------------------------- scratch memory

    /// Resolves `addr` to a scratch-memory slot, if it points into memory
    /// the rewrite itself allocated.
    fn fresh_slot(&self, addr: ExprId) -> Result<Option<(ExprId, i64)>, TvError> {
        if self.fresh.contains(&addr) {
            return Ok(Some((addr, 0)));
        }
        if let Expr::Op {
            opcode: Opcode::Gep,
            args,
            ..
        } = self.arena.get(addr)
        {
            if !args.is_empty() && self.fresh.contains(&args[0]) {
                if args.len() == 2 {
                    if let Expr::Int { value, .. } = self.arena.get(args[1]) {
                        return Ok(Some((args[0], *value)));
                    }
                }
                return Err(TvError::Unsupported(
                    "scratch-array access with a non-constant index".into(),
                ));
            }
        }
        Ok(None)
    }

    /// Evaluates a load the rewrite can satisfy without touching original
    /// memory: a scratch slot, or a constant-data lookup table the rewrite
    /// created (`rolag.cdata`).
    fn synthetic_load(&mut self, addr: ExprId, ty: TypeId) -> Result<Option<ExprId>, TvError> {
        if let Some(slot) = self.fresh_slot(addr)? {
            return match self.heap.get(&slot) {
                Some(&v) => Ok(Some(v)),
                None => Err(TvError::Unsupported(
                    "load from an uninitialized scratch slot".into(),
                )),
            };
        }
        let (base, idx) = match self.arena.get(addr) {
            Expr::Global(g) => (*g, 0i64),
            Expr::Op {
                opcode: Opcode::Gep,
                args,
                ..
            } if args.len() == 2 => match (self.arena.get(args[0]), self.arena.get(args[1])) {
                (Expr::Global(g), Expr::Int { value, .. }) => (*g, *value),
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        if base.index() < self.hints.first_new_global {
            return Ok(None);
        }
        let data = self.module.global(base);
        let GlobalInit::Ints { elem_ty, values } = &data.init else {
            return Err(TvError::Unsupported(
                "generated global without constant integer data".into(),
            ));
        };
        if *elem_ty != ty {
            return Err(TvError::ValueMismatch(
                "lookup-table load at the wrong element type".into(),
            ));
        }
        let Some(&v) = usize::try_from(idx).ok().and_then(|u| values.get(u)) else {
            return Err(TvError::Structure("lookup-table load out of bounds".into()));
        };
        Ok(Some(self.arena.int(&self.module.types, ty, v)))
    }

    // ------------------------------------------------------ effect matching

    /// Matches a generated effectful instruction at `lane` against a
    /// not-yet-matched rolled-away original claimed for the same lane.
    fn match_effect(&mut self, i: InstId, d: &InstData, lane: usize) -> Result<(), TvError> {
        let rextra = extra_key(&d.extra)?;
        let mut rargs = Vec::with_capacity(d.operands.len());
        for &v in &d.operands {
            rargs.push(self.rolled_expr(v, Phase::Loop)?);
        }
        let cands: Vec<InstId> = self
            .orig_block_insts
            .iter()
            .copied()
            .filter(|c| {
                self.region.contains(c)
                    && !self.matched.contains(c)
                    && self.hints.claimed_lanes.get(c) == Some(&lane)
            })
            .collect();
        for c in cands {
            let od = self.orig.inst(c).clone();
            if od.opcode != d.opcode
                || od.ty != d.ty
                || od.operands.len() != rargs.len()
                || extra_key(&od.extra)? != rextra
            {
                continue;
            }
            let mut equal = true;
            for (j, &ov) in od.operands.iter().enumerate() {
                if self.orig_expr(ov)? != rargs[j] {
                    equal = false;
                    break;
                }
            }
            if !equal {
                continue;
            }
            self.matched.insert(c);
            self.match_order.push(c);
            if d.opcode != Opcode::Store {
                let orig_res = self.orig.inst_result(c);
                let e = self.arena.intern(Expr::Orig(orig_res));
                self.bindings.insert(self.rolled.inst_result(i), e);
            }
            return Ok(());
        }
        Err(TvError::EffectMismatch(format!(
            "no rolled-away {} at lane {lane} matches the generated one",
            d.opcode.mnemonic()
        )))
    }

    fn check_effect_coverage(&self) -> Result<(), TvError> {
        for &i in &self.orig_block_insts {
            if !self.region.contains(&i) {
                continue;
            }
            let op = self.orig.inst(i).opcode;
            if matches!(
                op,
                Opcode::Load | Opcode::Store | Opcode::Call | Opcode::Alloca
            ) && !self.matched.contains(&i)
            {
                return Err(TvError::EffectMismatch(format!(
                    "rolled-away {} (instruction {}) is never re-executed",
                    op.mnemonic(),
                    i.index()
                )));
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------- evaluation

    /// The normalized expression of an original-function value. Region
    /// *pure* instructions expand recursively; effectful region results
    /// and everything defined outside the region stay opaque leaves.
    fn orig_expr(&mut self, v: ValueId) -> Result<ExprId, TvError> {
        if let Some(&e) = self.orig_memo.get(&v) {
            return Ok(e);
        }
        let e = match self.orig.value(v).clone() {
            ValueDef::ConstInt { ty, value } => self.arena.int(&self.module.types, ty, value),
            ValueDef::ConstFloat { ty, bits } => self.arena.intern(Expr::Float { ty, bits }),
            ValueDef::GlobalAddr(g) => self.arena.intern(Expr::Global(g)),
            ValueDef::FuncAddr(f) => self.arena.intern(Expr::Func(f)),
            ValueDef::Undef(ty) => self.arena.intern(Expr::Undef(ty)),
            ValueDef::Param { .. } => self.arena.intern(Expr::Orig(v)),
            ValueDef::Inst(i) if self.region.contains(&i) => {
                let d = self.orig.inst(i).clone();
                match d.opcode {
                    Opcode::Load | Opcode::Call | Opcode::Alloca => {
                        self.arena.intern(Expr::Orig(v))
                    }
                    op if op == Opcode::Store || op == Opcode::Phi || op.is_terminator() => {
                        return Err(TvError::Unsupported(format!(
                            "{} result used as a value",
                            op.mnemonic()
                        )))
                    }
                    _ => {
                        let mut args = Vec::with_capacity(d.operands.len());
                        for &op in &d.operands {
                            args.push(self.orig_expr(op)?);
                        }
                        let extra = extra_key(&d.extra)?;
                        self.arena
                            .op(&self.module.types, d.opcode, d.ty, extra, args)
                    }
                }
            }
            ValueDef::Inst(_) => self.arena.intern(Expr::Orig(v)),
        };
        self.orig_memo.insert(v, e);
        Ok(e)
    }

    /// The current symbolic value of a rolled-function SSA value.
    fn rolled_expr(&mut self, v: ValueId, phase: Phase) -> Result<ExprId, TvError> {
        if let Some(&e) = self.bindings.get(&v) {
            return Ok(e);
        }
        let e = match self.rolled.value(v).clone() {
            ValueDef::ConstInt { ty, value } => self.arena.int(&self.module.types, ty, value),
            ValueDef::ConstFloat { ty, bits } => self.arena.intern(Expr::Float { ty, bits }),
            ValueDef::GlobalAddr(g) => self.arena.intern(Expr::Global(g)),
            ValueDef::FuncAddr(f) => self.arena.intern(Expr::Func(f)),
            ValueDef::Undef(ty) => self.arena.intern(Expr::Undef(ty)),
            ValueDef::Param { .. } => self.arena.intern(Expr::Orig(v)),
            ValueDef::Inst(i) => {
                if i.index() >= self.num_orig_insts {
                    return Err(TvError::Structure(
                        "use of a generated value before it is computed".into(),
                    ));
                }
                if self.region.contains(&i) {
                    return Err(TvError::Structure(
                        "use of a value the rewrite deleted".into(),
                    ));
                }
                if phase != Phase::Exit && self.rolled.inst(i).block == self.hints.exit_block {
                    return Err(TvError::Structure(
                        "loop or preheader uses a value defined in the exit block".into(),
                    ));
                }
                self.arena.intern(Expr::Orig(v))
            }
        };
        Ok(e)
    }

    // ------------------------------------------------------------ survivors

    fn check_survivors(&mut self) -> Result<(), TvError> {
        let h = self.hints;
        for b in self.rolled.block_ids() {
            for idx in 0..self.rolled.block(b).insts.len() {
                let i = self.rolled.block(b).insts[idx];
                if i.index() >= self.num_orig_insts {
                    continue;
                }
                let od = self.orig.inst(i).clone();
                let rd = self.rolled.inst(i).clone();
                if od.opcode != rd.opcode
                    || od.ty != rd.ty
                    || od.operands.len() != rd.operands.len()
                {
                    return Err(TvError::Structure(format!(
                        "surviving instruction {} changed shape",
                        i.index()
                    )));
                }
                // Operand `j` of a phi rides the back-edge arm when its
                // incoming block was the candidate block itself (the block
                // was its own latch). That edge now departs from the exit
                // block, so the arm's value is evaluated there — it may be
                // rewritten and is checked by simulation below.
                let mut back_edge_arm = vec![false; od.operands.len()];
                match (&od.extra, &rd.extra) {
                    (InstExtra::Phi { incoming: oi }, InstExtra::Phi { incoming: ri }) => {
                        if oi.len() != ri.len() {
                            return Err(TvError::Structure("phi arm count changed".into()));
                        }
                        for (j, (ob, rb)) in oi.iter().zip(ri).enumerate() {
                            let want = if *ob == h.block { h.exit_block } else { *ob };
                            if *rb != want {
                                return Err(TvError::ValueMismatch(
                                    "phi incoming edge not redirected to the exit block".into(),
                                ));
                            }
                            back_edge_arm[j] = *ob == h.block;
                        }
                    }
                    (oe, re) => {
                        if oe != re {
                            return Err(TvError::Structure(format!(
                                "surviving instruction {} changed its payload",
                                i.index()
                            )));
                        }
                    }
                }
                let in_pre = b == h.block;
                for (j, (&ov, &rv)) in od.operands.iter().zip(&rd.operands).enumerate() {
                    if ov == rv {
                        if let ValueDef::Inst(di) = self.orig.value(ov) {
                            if self.region.contains(di) {
                                return Err(TvError::Structure(format!(
                                    "survivor {} still uses a deleted value",
                                    i.index()
                                )));
                            }
                        }
                        continue;
                    }
                    if in_pre && !back_edge_arm[j] {
                        // Loop/exit values cannot flow backwards into the
                        // preheader; outside a redirected back-edge phi
                        // arm, a rewritten operand there is a bug.
                        return Err(TvError::Structure(
                            "preheader survivor operand was rewritten".into(),
                        ));
                    }
                    let eo = self.orig_expr(ov)?;
                    let er = self.rolled_expr(rv, Phase::Exit)?;
                    if eo != er {
                        return Err(TvError::ValueMismatch(format!(
                            "operand {j} of surviving instruction {} does not simulate",
                            i.index()
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    // --------------------------------------------------------- memory order

    fn check_memory_order(&self, pre_surv: &[InstId], exit_surv: &[InstId]) -> Result<(), TvError> {
        let deps = BlockDeps::compute(self.module, self.orig, self.hints.block);
        let conflicts = deps.mem_conflicts();
        if conflicts.is_empty() {
            return Ok(());
        }
        let pos: HashMap<InstId, usize> = pre_surv
            .iter()
            .chain(self.match_order.iter())
            .chain(exit_surv.iter())
            .enumerate()
            .map(|(k, &i)| (i, k))
            .collect();
        for &(a, b) in conflicts {
            let (ia, ib) = (deps.insts[a], deps.insts[b]);
            let (Some(&pa), Some(&pb)) = (pos.get(&ia), pos.get(&ib)) else {
                return Err(TvError::MemoryOrder(format!(
                    "conflicting memory operations {}/{} missing from the rolled order",
                    ia.index(),
                    ib.index()
                )));
            };
            if pa >= pb {
                return Err(TvError::MemoryOrder(format!(
                    "memory operations {} and {} reordered against a dependence",
                    ia.index(),
                    ib.index()
                )));
            }
        }
        Ok(())
    }
}

/// Converts an instruction payload to its arena key; control-flow payloads
/// have no expression meaning.
fn extra_key(extra: &InstExtra) -> Result<ExtraKey, TvError> {
    Ok(match extra {
        InstExtra::None => ExtraKey::None,
        InstExtra::Icmp(p) => ExtraKey::Icmp(*p),
        InstExtra::Fcmp(p) => ExtraKey::Fcmp(*p),
        InstExtra::Gep { elem_ty } => ExtraKey::Gep(*elem_ty),
        InstExtra::Call { callee } => ExtraKey::Call(*callee),
        InstExtra::Alloca { elem_ty } => ExtraKey::Alloca(*elem_ty),
        InstExtra::Phi { .. } | InstExtra::Br { .. } | InstExtra::CondBr { .. } => {
            return Err(TvError::Unsupported(
                "control-flow payload in an expression context".into(),
            ))
        }
    })
}
