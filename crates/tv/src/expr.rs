//! A hash-consed symbolic expression arena with abstraction-aware
//! normalization.
//!
//! The validator proves value equality between the original region and the
//! symbolically unrolled loop by interning both sides into this arena and
//! comparing [`ExprId`]s. Interning normalizes exactly the algebraic
//! abstractions the aligner is allowed to exploit (see
//! [`crate::ABSTRACTIONS`]): integer constant folding, neutral-element
//! identities, zero-offset pointer arithmetic, operand ordering for
//! commutative operations, and flattened n-ary chains for
//! associative-commutative reductions. Anything the arena does not
//! normalize stays symbolic, so a failed comparison can only reject a
//! rewrite, never accept a wrong one.

use std::collections::HashMap;

use rolag_ir::fold::{eval_icmp, eval_int_binop, normalize_int};
use rolag_ir::{
    FloatPredicate, FuncId, GlobalId, InstId, IntPredicate, NeutralElement, Opcode, TypeId,
    TypeStore, ValueId,
};

/// Handle to an interned [`Expr`]. Equal ids mean structurally equal
/// expressions after normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// Position of this expression in the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The non-operand payload of an operation expression — the parts of
/// [`rolag_ir::InstExtra`] that make sense outside a CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtraKey {
    /// No payload.
    None,
    /// `icmp` predicate.
    Icmp(IntPredicate),
    /// `fcmp` predicate.
    Fcmp(FloatPredicate),
    /// `gep` element type.
    Gep(TypeId),
    /// Direct call target.
    Call(FuncId),
    /// `alloca` element type.
    Alloca(TypeId),
}

/// A normalized symbolic expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// An integer constant, stored normalized for its type.
    Int {
        /// Type of the constant.
        ty: TypeId,
        /// Sign-extended normalized value.
        value: i64,
    },
    /// A floating-point constant as raw `f64` bits.
    Float {
        /// Type of the constant.
        ty: TypeId,
        /// IEEE-754 bit pattern.
        bits: u64,
    },
    /// The address of a module global.
    Global(GlobalId),
    /// The address of a module function.
    Func(FuncId),
    /// An undefined value.
    Undef(TypeId),
    /// An opaque leaf naming a value of the *original* function: a
    /// parameter, a value defined outside the candidate block, or the
    /// result of an effectful region instruction (load/call/alloca).
    Orig(ValueId),
    /// Memory freshly allocated by the rewrite itself (a generated
    /// `alloca`), named by the generated instruction.
    Fresh(InstId),
    /// A (non-folded) operation over interned operands.
    Op {
        /// Operation.
        opcode: Opcode,
        /// Result type.
        ty: TypeId,
        /// Payload.
        extra: ExtraKey,
        /// Operand expressions, in instruction order (commutative binary
        /// operations are stored with sorted operands).
        args: Vec<ExprId>,
    },
    /// A flattened associative-commutative chain: `opcode` applied to the
    /// whole (sorted) argument list, with constants folded and neutral
    /// elements dropped. This is how reduction trees, linear reduction
    /// chains, and their rolled accumulator loops all reach one canonical
    /// form.
    Chain {
        /// The associative-commutative operation.
        opcode: Opcode,
        /// Result (and operand) type.
        ty: TypeId,
        /// At least two non-neutral, sorted operand expressions.
        args: Vec<ExprId>,
    },
}

/// The interning arena. Equal expressions — modulo the normalizations
/// listed in the module docs — receive equal [`ExprId`]s.
pub struct ExprArena {
    exprs: Vec<Expr>,
    interned: HashMap<Expr, ExprId>,
    fast_math: bool,
}

impl ExprArena {
    /// Creates an empty arena. `fast_math` controls whether `fadd`/`fmul`
    /// are treated as associative (reassociation of float reductions).
    pub fn new(fast_math: bool) -> Self {
        ExprArena {
            exprs: Vec::new(),
            interned: HashMap::new(),
            fast_math,
        }
    }

    /// The expression behind `id`.
    pub fn get(&self, id: ExprId) -> &Expr {
        &self.exprs[id.index()]
    }

    /// Interns `e` as-is (no normalization).
    pub fn intern(&mut self, e: Expr) -> ExprId {
        if let Some(&id) = self.interned.get(&e) {
            return id;
        }
        let id = ExprId(u32::try_from(self.exprs.len()).expect("arena overflow"));
        self.exprs.push(e.clone());
        self.interned.insert(e, id);
        id
    }

    /// Interns the integer constant `value` of type `ty`, normalized.
    pub fn int(&mut self, types: &TypeStore, ty: TypeId, value: i64) -> ExprId {
        let value = normalize_int(types, ty, value);
        self.intern(Expr::Int { ty, value })
    }

    /// Builds (and normalizes) the operation `opcode` over `args`.
    pub fn op(
        &mut self,
        types: &TypeStore,
        opcode: Opcode,
        ty: TypeId,
        extra: ExtraKey,
        mut args: Vec<ExprId>,
    ) -> ExprId {
        // Integer constant folding.
        if opcode.is_int_binop() && args.len() == 2 {
            if let (&Expr::Int { value: a, .. }, &Expr::Int { value: b, .. }) =
                (self.get(args[0]), self.get(args[1]))
            {
                if let Some(v) = eval_int_binop(types, opcode, ty, a, b) {
                    return self.int(types, ty, v);
                }
            }
        }
        if opcode == Opcode::Icmp && args.len() == 2 {
            if let ExtraKey::Icmp(pred) = extra {
                if let (
                    &Expr::Int {
                        ty: aty, value: a, ..
                    },
                    &Expr::Int { value: b, .. },
                ) = (self.get(args[0]), self.get(args[1]))
                {
                    let r = eval_icmp(types, pred, aty, a, b);
                    return self.int(types, ty, i64::from(r));
                }
            }
        }
        if matches!(opcode, Opcode::Trunc | Opcode::SExt | Opcode::ZExt) && args.len() == 1 {
            if let &Expr::Int { ty: from, value } = self.get(args[0]) {
                let v = if opcode == Opcode::ZExt {
                    rolag_ir::fold::as_unsigned(types, from, value) as i64
                } else {
                    value
                };
                return self.int(types, ty, v);
            }
        }
        // `gep base, 0, 0, ...` is the base pointer (neutral pointer op).
        if opcode == Opcode::Gep
            && args.len() >= 2
            && args[1..]
                .iter()
                .all(|&a| matches!(self.get(a), Expr::Int { value: 0, .. }))
        {
            return args[0];
        }
        // Neutral-element identities: `x op neutral == x`.
        if args.len() == 2 && opcode.is_binop() {
            if self.is_neutral_operand(opcode, ty, args[1]) {
                return args[0];
            }
            if opcode.is_commutative() && self.is_neutral_operand(opcode, ty, args[0]) {
                return args[1];
            }
        }
        // Associative-commutative operations flatten into sorted chains.
        if args.len() == 2 && opcode.is_commutative() && opcode.is_associative(self.fast_math) {
            return self.chain(types, opcode, ty, args);
        }
        // Commutative but not associative (float without fast-math): at
        // least canonicalize the operand order.
        if args.len() == 2 && opcode.is_commutative() && args[0] > args[1] {
            args.swap(0, 1);
        }
        self.intern(Expr::Op {
            opcode,
            ty,
            extra,
            args,
        })
    }

    /// Flattens nested same-op chains, folds constants, drops neutral
    /// elements, and sorts; the canonical form for AC reductions.
    fn chain(
        &mut self,
        types: &TypeStore,
        opcode: Opcode,
        ty: TypeId,
        parts: Vec<ExprId>,
    ) -> ExprId {
        let mut stack = parts;
        let mut flat: Vec<ExprId> = Vec::new();
        let mut acc: Option<i64> = None;
        while let Some(p) = stack.pop() {
            match self.get(p) {
                Expr::Chain {
                    opcode: o,
                    ty: t,
                    args,
                } if *o == opcode && *t == ty => stack.extend(args.iter().copied()),
                &Expr::Int { value, .. } if types.is_int(ty) => {
                    acc = Some(match acc {
                        None => value,
                        Some(c) => eval_int_binop(types, opcode, ty, c, value)
                            .expect("AC integer ops are total"),
                    });
                }
                e => {
                    if !expr_is_neutral(e, opcode, ty) {
                        flat.push(p);
                    }
                }
            }
        }
        if let Some(c) = acc {
            if Some(normalize_int(types, ty, c)) != neutral_int_value(types, opcode, ty) {
                let cid = self.int(types, ty, c);
                flat.push(cid);
            }
        }
        match flat.len() {
            0 => self.neutral_leaf(types, opcode, ty),
            1 => flat[0],
            _ => {
                flat.sort_unstable();
                self.intern(Expr::Chain {
                    opcode,
                    ty,
                    args: flat,
                })
            }
        }
    }

    fn is_neutral_operand(&self, opcode: Opcode, ty: TypeId, e: ExprId) -> bool {
        expr_is_neutral(self.get(e), opcode, ty)
    }

    /// The neutral constant of an AC operation, as a leaf (used when a
    /// chain cancels away entirely).
    fn neutral_leaf(&mut self, types: &TypeStore, opcode: Opcode, ty: TypeId) -> ExprId {
        match opcode
            .neutral_element()
            .expect("AC op has a neutral element")
        {
            NeutralElement::Zero => self.int(types, ty, 0),
            NeutralElement::One => self.int(types, ty, 1),
            NeutralElement::AllOnes => self.int(types, ty, -1),
            NeutralElement::FZero => self.intern(Expr::Float {
                ty,
                bits: 0f64.to_bits(),
            }),
            NeutralElement::FOne => self.intern(Expr::Float {
                ty,
                bits: 1f64.to_bits(),
            }),
        }
    }
}

/// The normalized integer value of `opcode`'s neutral element, when it has
/// an integer one.
fn neutral_int_value(types: &TypeStore, opcode: Opcode, ty: TypeId) -> Option<i64> {
    match opcode.neutral_element()? {
        NeutralElement::Zero => Some(0),
        NeutralElement::One => Some(normalize_int(types, ty, 1)),
        NeutralElement::AllOnes => Some(-1),
        NeutralElement::FZero | NeutralElement::FOne => None,
    }
}

/// Whether `e` is the neutral constant for `opcode` at type `ty`.
fn expr_is_neutral(e: &Expr, opcode: Opcode, ty: TypeId) -> bool {
    let Some(n) = opcode.neutral_element() else {
        return false;
    };
    match (n, e) {
        (NeutralElement::Zero, Expr::Int { ty: t, value: 0 }) => *t == ty,
        (NeutralElement::One, Expr::Int { ty: t, value }) => *t == ty && *value == 1,
        (NeutralElement::AllOnes, Expr::Int { ty: t, value: -1 }) => *t == ty,
        (NeutralElement::FZero, Expr::Float { ty: t, bits }) => *t == ty && *bits == 0f64.to_bits(),
        (NeutralElement::FOne, Expr::Float { ty: t, bits }) => *t == ty && *bits == 1f64.to_bits(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> (TypeStore, ExprArena) {
        (TypeStore::new(), ExprArena::new(false))
    }

    #[test]
    fn constants_fold_and_normalize() {
        let (types, mut a) = arena();
        let i32t = types.i32();
        let x = a.int(&types, i32t, 7);
        let y = a.int(&types, i32t, 5);
        let s = a.op(&types, Opcode::Add, i32t, ExtraKey::None, vec![x, y]);
        assert_eq!(
            a.get(s),
            &Expr::Int {
                ty: i32t,
                value: 12
            }
        );
        // i32 wrap-around normalizes.
        let big = a.int(&types, i32t, i64::from(i32::MAX));
        let one = a.int(&types, i32t, 1);
        let w = a.op(&types, Opcode::Add, i32t, ExtraKey::None, vec![big, one]);
        assert_eq!(
            a.get(w),
            &Expr::Int {
                ty: i32t,
                value: i64::from(i32::MIN)
            }
        );
    }

    #[test]
    fn commutative_operands_canonicalize() {
        let (types, mut a) = arena();
        let i32t = types.i32();
        let p = a.intern(Expr::Orig(ValueId::from_index(3)));
        let q = a.intern(Expr::Orig(ValueId::from_index(9)));
        let pq = a.op(&types, Opcode::Mul, i32t, ExtraKey::None, vec![p, q]);
        let qp = a.op(&types, Opcode::Mul, i32t, ExtraKey::None, vec![q, p]);
        assert_eq!(pq, qp);
        // Subtraction is not commutative.
        let s1 = a.op(&types, Opcode::Sub, i32t, ExtraKey::None, vec![p, q]);
        let s2 = a.op(&types, Opcode::Sub, i32t, ExtraKey::None, vec![q, p]);
        assert_ne!(s1, s2);
    }

    #[test]
    fn reduction_trees_and_chains_agree() {
        // ((a+b)+(c+d)) vs (((a+b)+c)+d) vs (d+(c+(b+a))): one canonical id.
        let (types, mut a) = arena();
        let i32t = types.i32();
        let vs: Vec<ExprId> = (0..4)
            .map(|i| a.intern(Expr::Orig(ValueId::from_index(i))))
            .collect();
        let add =
            |a: &mut ExprArena, x, y| a.op(&types, Opcode::Add, i32t, ExtraKey::None, vec![x, y]);
        let t1 = {
            let l = add(&mut a, vs[0], vs[1]);
            let r = add(&mut a, vs[2], vs[3]);
            add(&mut a, l, r)
        };
        let t2 = {
            let l = add(&mut a, vs[0], vs[1]);
            let l = add(&mut a, l, vs[2]);
            add(&mut a, l, vs[3])
        };
        let t3 = {
            let r = add(&mut a, vs[1], vs[0]);
            let r = add(&mut a, vs[2], r);
            add(&mut a, vs[3], r)
        };
        assert_eq!(t1, t2);
        assert_eq!(t2, t3);
    }

    #[test]
    fn neutral_elements_vanish() {
        let (types, mut a) = arena();
        let i32t = types.i32();
        let x = a.intern(Expr::Orig(ValueId::from_index(1)));
        let zero = a.int(&types, i32t, 0);
        let one = a.int(&types, i32t, 1);
        let ones = a.int(&types, i32t, -1);
        assert_eq!(
            a.op(&types, Opcode::Add, i32t, ExtraKey::None, vec![x, zero]),
            x
        );
        assert_eq!(
            a.op(&types, Opcode::Sub, i32t, ExtraKey::None, vec![x, zero]),
            x
        );
        assert_eq!(
            a.op(&types, Opcode::Mul, i32t, ExtraKey::None, vec![one, x]),
            x
        );
        assert_eq!(
            a.op(&types, Opcode::And, i32t, ExtraKey::None, vec![x, ones]),
            x
        );
        assert_eq!(
            a.op(&types, Opcode::Shl, i32t, ExtraKey::None, vec![x, zero]),
            x
        );
        // But `0 - x` is not `x`.
        assert_ne!(
            a.op(&types, Opcode::Sub, i32t, ExtraKey::None, vec![zero, x]),
            x
        );
    }

    #[test]
    fn zero_geps_are_the_base_pointer() {
        let (types, mut a) = arena();
        let i32t = types.i32();
        let i64t = types.i64();
        let base = a.intern(Expr::Global(GlobalId::from_index(0)));
        let zero = a.int(&types, i64t, 0);
        let g = a.op(
            &types,
            Opcode::Gep,
            types.ptr(),
            ExtraKey::Gep(i32t),
            vec![base, zero],
        );
        assert_eq!(g, base);
        let two = a.int(&types, i64t, 2);
        let g2 = a.op(
            &types,
            Opcode::Gep,
            types.ptr(),
            ExtraKey::Gep(i32t),
            vec![base, two],
        );
        assert_ne!(g2, base);
    }

    #[test]
    fn float_reassociation_requires_fast_math() {
        let types = TypeStore::new();
        let f64t = types.double();
        let mk = |fast: bool| {
            let mut a = ExprArena::new(fast);
            let vs: Vec<ExprId> = (0..3)
                .map(|i| a.intern(Expr::Orig(ValueId::from_index(i))))
                .collect();
            let l = a.op(
                &types,
                Opcode::FAdd,
                f64t,
                ExtraKey::None,
                vec![vs[0], vs[1]],
            );
            let t1 = a.op(&types, Opcode::FAdd, f64t, ExtraKey::None, vec![l, vs[2]]);
            let r = a.op(
                &types,
                Opcode::FAdd,
                f64t,
                ExtraKey::None,
                vec![vs[1], vs[2]],
            );
            let t2 = a.op(&types, Opcode::FAdd, f64t, ExtraKey::None, vec![vs[0], r]);
            t1 == t2
        };
        assert!(!mk(false), "strict floats must not reassociate");
        assert!(mk(true), "fast-math floats reassociate");
    }

    #[test]
    fn icmp_and_casts_fold() {
        let (types, mut a) = arena();
        let i64t = types.i64();
        let i1t = types.i1();
        let i32t = types.i32();
        let three = a.int(&types, i64t, 3);
        let five = a.int(&types, i64t, 5);
        let lt = a.op(
            &types,
            Opcode::Icmp,
            i1t,
            ExtraKey::Icmp(IntPredicate::Ult),
            vec![three, five],
        );
        match a.get(lt) {
            Expr::Int { value, .. } => assert_ne!(*value, 0),
            e => panic!("icmp did not fold: {e:?}"),
        }
        let t = a.op(&types, Opcode::Trunc, i32t, ExtraKey::None, vec![five]);
        assert_eq!(a.get(t), &Expr::Int { ty: i32t, value: 5 });
    }
}
