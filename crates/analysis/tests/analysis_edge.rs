//! Additional analysis-crate tests: dominators on irregular CFGs, loop
//! detection corners, alias analysis through chains, and dependence-graph
//! behaviour with mixed effects.

use rolag_analysis::alias::{resolve_pointer, BaseObject};
use rolag_analysis::cost::{function_size_estimate, TargetKind, Thumb2SizeModel, X86SizeModel};
use rolag_analysis::depgraph::BlockDeps;
use rolag_analysis::dom::DomTree;
use rolag_analysis::loops::{find_loops, trip_count};
use rolag_ir::parser::parse_module;
use rolag_ir::{Module, Opcode};

fn module(text: &str) -> Module {
    parse_module(text).unwrap()
}

#[test]
fn dominators_handle_unreachable_blocks() {
    let m = module(
        r#"
module "t"
func @f() -> void {
entry:
  br reach
orphan:
  br reach
reach:
  ret
}
"#,
    );
    let f = m.func(m.func_by_name("f").unwrap());
    let dom = DomTree::compute(f);
    let entry = f.block_by_name("entry").unwrap();
    let orphan = f.block_by_name("orphan").unwrap();
    let reach = f.block_by_name("reach").unwrap();
    assert!(dom.is_reachable(reach));
    assert!(!dom.is_reachable(orphan));
    assert!(dom.dominates(entry, reach));
    assert!(
        !dom.dominates(orphan, reach),
        "unreachable preds are ignored"
    );
}

#[test]
fn irreducible_like_diamond_with_loop() {
    // A loop whose header has two entering edges through a diamond.
    let m = module(
        r#"
module "t"
func @f(i1 %p0) -> void {
entry:
  condbr %p0, left, right
left:
  br header
right:
  br header
header:
  %1 = phi i64 [ i64 0, left ], [ i64 4, right ], [ %2, header ]
  %2 = add i64 %1, i64 1
  %3 = icmp slt %2, i64 16
  condbr %3, header, exit
exit:
  ret
}
"#,
    );
    let f = m.func(m.func_by_name("f").unwrap());
    let dom = DomTree::compute(f);
    let loops = find_loops(f, &dom);
    assert_eq!(loops.len(), 1);
    assert!(loops[0].is_single_block());
    // Trip count requires a constant init: with two distinct entries it
    // must refuse.
    assert!(trip_count(&m, f, &loops[0])
        .and_then(|tc| tc.known_trips)
        .is_none());
}

#[test]
fn trip_count_handles_non_canonical_predicates() {
    // Continue-on-false loops (condbr exit-first) are not canonical; the
    // analysis refuses rather than guessing.
    let m = module(
        r#"
module "t"
func @f() -> void {
entry:
  br loop
loop:
  %1 = phi i64 [ i64 0, entry ], [ %2, loop ]
  %2 = add i64 %1, i64 1
  %3 = icmp sge %2, i64 8
  condbr %3, exit, loop
exit:
  ret
}
"#,
    );
    let f = m.func(m.func_by_name("f").unwrap());
    let dom = DomTree::compute(f);
    let loops = find_loops(f, &dom);
    assert_eq!(loops.len(), 1);
    assert!(trip_count(&m, f, &loops[0]).is_none());
}

#[test]
fn alias_through_gep_chains_and_bitcasts() {
    let m = module(
        r#"
module "t"
global @g : [16 x i64] = zero
func @f() -> void {
entry:
  %a = gep i64, @g, i64 2
  %b = gep i64, %a, i64 3
  %c = bitcast ptr %b
  store i64 1, %c
  ret
}
"#,
    );
    let f = m.func(m.func_by_name("f").unwrap());
    let store = f
        .live_insts()
        .find(|&i| f.inst(i).opcode == Opcode::Store)
        .unwrap();
    let info = resolve_pointer(&m, f, f.inst(store).operands[1]);
    assert!(matches!(info.base, BaseObject::Global(_)));
    assert_eq!(info.offset, Some(40), "2*8 + 3*8 through the chain");
}

#[test]
fn readonly_calls_conflict_with_stores_not_loads() {
    let m = module(
        r#"
module "t"
declare @peek() -> i32 readonly
global @g : [4 x i32] = zero
func @f() -> i32 {
entry:
  %v1 = load i32, @g
  %c1 = call i32 @peek()
  store i32 5, @g
  %c2 = call i32 @peek()
  %s1 = add i32 %v1, %c1
  %s2 = add i32 %s1, %c2
  ret %s2
}
"#,
    );
    let f = m.func(m.func_by_name("f").unwrap());
    let deps = BlockDeps::compute(&m, f, f.entry_block());
    let pairs = deps.mem_conflicts().to_vec();
    // positions: 0 load, 1 call, 2 store, 3 call. Conflicts: store with
    // everything (0,2) (1,2) (2,3); readonly calls never conflict with the
    // load or each other.
    let mut sorted = pairs.clone();
    sorted.sort();
    assert_eq!(sorted, vec![(0, 2), (1, 2), (2, 3)]);
}

#[test]
fn size_models_rank_programs_consistently() {
    // The two targets disagree on absolute bytes but agree that more code
    // is more bytes.
    let small = module("module \"s\"\nfunc @f() -> void {\nentry:\n  ret\n}\n");
    let mut big_text = String::from(
        "module \"b\"\nglobal @g : [64 x i32] = zero\nfunc @f(i32 %p0) -> void {\nentry:\n",
    );
    for i in 0..24 {
        big_text.push_str(&format!("  %q{i} = gep i32, @g, i64 {i}\n"));
        big_text.push_str(&format!("  store %p0, %q{i}\n"));
    }
    big_text.push_str("  ret\n}\n");
    let big = module(&big_text);
    for target in [TargetKind::X86_64, TargetKind::Thumb2] {
        let fs = small.func(small.func_by_name("f").unwrap());
        let fb = big.func(big.func_by_name("f").unwrap());
        assert!(target.function_estimate(&big, fb) > target.function_estimate(&small, fs));
    }
    // Thumb is denser on the same big function.
    let fb = big.func(big.func_by_name("f").unwrap());
    assert!(
        function_size_estimate(&Thumb2SizeModel, &big, fb)
            < function_size_estimate(&X86SizeModel, &big, fb)
    );
}

#[test]
fn depgraph_positions_and_transitivity_across_long_chains() {
    let mut text = String::from("module \"t\"\nfunc @f(i32 %p0) -> i32 {\nentry:\n");
    text.push_str("  %v0 = add i32 %p0, i32 1\n");
    for i in 1..64 {
        text.push_str(&format!("  %v{i} = add i32 %v{}, i32 1\n", i - 1));
    }
    text.push_str("  ret %v63\n}\n");
    let m = module(&text);
    let f = m.func(m.func_by_name("f").unwrap());
    let deps = BlockDeps::compute(&m, f, f.entry_block());
    // ret (position 64) transitively depends on position 0.
    assert!(deps.depends_on(64, 0));
    assert!(deps.depends_on(63, 31));
    assert!(!deps.depends_on(31, 63));
}
