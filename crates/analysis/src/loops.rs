//! Natural-loop detection and basic induction variables.

use std::collections::HashSet;

use rolag_ir::{
    BlockId, Function, InstExtra, InstId, IntPredicate, Module, Opcode, ValueDef, ValueId,
};

use crate::dom::DomTree;

/// A natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// Loop header (target of the back edge).
    pub header: BlockId,
    /// Source of the back edge.
    pub latch: BlockId,
    /// All blocks in the loop body (header included).
    pub blocks: Vec<BlockId>,
}

impl Loop {
    /// True for single-block loops (`header == latch`, body of one block) —
    /// the only shape LLVM's rerolling pass considers (§II).
    pub fn is_single_block(&self) -> bool {
        self.header == self.latch && self.blocks.len() == 1
    }
}

/// Finds all natural loops of `func`.
pub fn find_loops(func: &Function, dom: &DomTree) -> Vec<Loop> {
    let mut loops = Vec::new();
    for b in func.block_ids() {
        if !dom.is_reachable(b) {
            continue;
        }
        for s in func.successors(b) {
            if dom.dominates(s, b) {
                // Back edge b -> s.
                let mut blocks: HashSet<BlockId> = HashSet::new();
                blocks.insert(s);
                let mut work = vec![b];
                while let Some(x) = work.pop() {
                    if !blocks.insert(x) {
                        continue;
                    }
                    for &p in &func.predecessors()[x.index()] {
                        if dom.is_reachable(p) {
                            work.push(p);
                        }
                    }
                }
                let mut blocks: Vec<BlockId> = blocks.into_iter().collect();
                blocks.sort();
                loops.push(Loop {
                    header: s,
                    latch: b,
                    blocks,
                });
            }
        }
    }
    loops
}

/// A basic induction variable of a single-block loop: a phi incremented by a
/// loop-invariant constant each iteration (§II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndVar {
    /// The phi instruction.
    pub phi: InstId,
    /// Value of the phi (for operand rewriting).
    pub phi_value: ValueId,
    /// Initial value (from outside the loop).
    pub init: ValueId,
    /// The increment instruction (`add phi, step`).
    pub step_inst: InstId,
    /// Constant step per iteration.
    pub step: i64,
}

/// Finds basic induction variables of a single-block loop.
pub fn find_induction_vars(module: &Module, func: &Function, lp: &Loop) -> Vec<IndVar> {
    let mut ivs = Vec::new();
    if !lp.is_single_block() {
        return ivs;
    }
    let header = lp.header;
    for &i in &func.block(header).insts {
        let data = func.inst(i);
        if data.opcode != Opcode::Phi {
            break; // phis lead the block
        }
        let InstExtra::Phi { incoming } = &data.extra else {
            continue;
        };
        if data.operands.len() != 2 {
            continue;
        }
        // One incoming from the latch (the loop itself), one from outside.
        let (loop_arm, init_arm) = if incoming[0] == lp.latch {
            (0, 1)
        } else if incoming[1] == lp.latch {
            (1, 0)
        } else {
            continue;
        };
        let recur = data.operands[loop_arm];
        let init = data.operands[init_arm];
        let Some(step_inst) = func.value(recur).as_inst() else {
            continue;
        };
        let step_data = func.inst(step_inst);
        if step_data.block != header {
            continue;
        }
        let phi_value = func.inst_result(i);
        let step = match step_data.opcode {
            Opcode::Add => {
                if step_data.operands[0] == phi_value {
                    const_int(module, func, step_data.operands[1])
                } else if step_data.operands[1] == phi_value {
                    const_int(module, func, step_data.operands[0])
                } else {
                    None
                }
            }
            Opcode::Sub if step_data.operands[0] == phi_value => {
                const_int(module, func, step_data.operands[1]).map(|c| -c)
            }
            _ => None,
        };
        let Some(step) = step else { continue };
        if step == 0 {
            continue;
        }
        ivs.push(IndVar {
            phi: i,
            phi_value,
            init,
            step_inst,
            step,
        });
    }
    ivs
}

fn const_int(_module: &Module, func: &Function, v: ValueId) -> Option<i64> {
    match func.value(v) {
        ValueDef::ConstInt { value, .. } => Some(*value),
        _ => None,
    }
}

/// Trip-count information for a single-block counted loop:
/// `for (iv = init; iv <cond> bound; iv += step)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TripCount {
    /// The controlling induction variable.
    pub iv: IndVar,
    /// Loop bound operand of the exit compare.
    pub bound: ValueId,
    /// The compare instruction.
    pub cmp: InstId,
    /// Compare predicate.
    pub pred: IntPredicate,
    /// `true` when the compare tests the *next* value (`iv + step`), as in
    /// the canonical rotated loop; `false` when it tests the phi itself.
    pub tests_next: bool,
    /// Statically known trip count, when `init` and `bound` are constants.
    pub known_trips: Option<u64>,
}

/// Analyzes a single-block loop's exit condition.
pub fn trip_count(module: &Module, func: &Function, lp: &Loop) -> Option<TripCount> {
    if !lp.is_single_block() {
        return None;
    }
    let header = lp.header;
    let term = func.terminator(header)?;
    let tdata = func.inst(term);
    if tdata.opcode != Opcode::CondBr {
        return None;
    }
    let cmp = func.value(tdata.operands[0]).as_inst()?;
    let cdata = func.inst(cmp);
    if cdata.opcode != Opcode::Icmp {
        return None;
    }
    let InstExtra::Icmp(pred) = cdata.extra else {
        return None;
    };
    // The "continue" edge must go back to the header.
    let InstExtra::CondBr { then_dest, .. } = tdata.extra else {
        return None;
    };
    let continue_on_true = then_dest == header;
    if !continue_on_true {
        // Normalize: we only handle loops that continue on true.
        return None;
    }
    for iv in find_induction_vars(module, func, lp) {
        let next = func.inst_result(iv.step_inst);
        let (lhs, rhs) = (cdata.operands[0], cdata.operands[1]);
        let (tests_next, bound) = if lhs == next {
            (true, rhs)
        } else if lhs == iv.phi_value {
            (false, rhs)
        } else {
            continue;
        };
        let known_trips = match (
            const_int(module, func, iv.init),
            const_int(module, func, bound),
        ) {
            (Some(init), Some(b)) => compute_trips(init, b, iv.step, pred, tests_next),
            _ => None,
        };
        return Some(TripCount {
            iv,
            bound,
            cmp,
            pred,
            tests_next,
            known_trips,
        });
    }
    None
}

fn compute_trips(
    init: i64,
    bound: i64,
    step: i64,
    pred: IntPredicate,
    tests_next: bool,
) -> Option<u64> {
    // Simulate; loops here are small and bounded in the suites.
    let mut iv = init;
    let mut trips: u64 = 0;
    loop {
        trips += 1;
        if trips > 1 << 24 {
            return None;
        }
        let next = iv.checked_add(step)?;
        let probe = if tests_next { next } else { iv };
        let cont = match pred {
            IntPredicate::Slt => probe < bound,
            IntPredicate::Sle => probe <= bound,
            IntPredicate::Sgt => probe > bound,
            IntPredicate::Sge => probe >= bound,
            IntPredicate::Ne => probe != bound,
            IntPredicate::Ult => (probe as u64) < bound as u64,
            IntPredicate::Ule => (probe as u64) <= bound as u64,
            IntPredicate::Ugt => (probe as u64) > bound as u64,
            IntPredicate::Uge => (probe as u64) >= bound as u64,
            IntPredicate::Eq => probe == bound,
        };
        if !cont {
            return Some(trips);
        }
        iv = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    const LOOP: &str = r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  br header
header:
  %1 = phi i32 [ i32 0, entry ], [ %2, header ]
  %2 = add i32 %1, i32 3
  %3 = icmp slt %2, i32 30
  condbr %3, header, exit
exit:
  ret %2
}
"#;

    #[test]
    fn finds_single_block_loop() {
        let m = parse_module(LOOP).unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        let dom = DomTree::compute(f);
        let loops = find_loops(f, &dom);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].is_single_block());
        assert_eq!(loops[0].header, f.block_by_name("header").unwrap());
    }

    #[test]
    fn finds_induction_variable() {
        let m = parse_module(LOOP).unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        let dom = DomTree::compute(f);
        let loops = find_loops(f, &dom);
        let ivs = find_induction_vars(&m, f, &loops[0]);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].step, 3);
    }

    #[test]
    fn trip_count_of_canonical_loop() {
        let m = parse_module(LOOP).unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        let dom = DomTree::compute(f);
        let loops = find_loops(f, &dom);
        let tc = trip_count(&m, f, &loops[0]).unwrap();
        assert!(tc.tests_next);
        // iv: 0,3,6,...,27 -> 10 iterations (next hits 30 at iv=27).
        assert_eq!(tc.known_trips, Some(10));
    }

    #[test]
    fn multi_block_loop_detected_but_not_single() {
        let text = r#"
module "t"
func @f(i32 %p0) -> void {
entry:
  br header
header:
  %1 = phi i32 [ i32 0, entry ], [ %2, latch ]
  %c = icmp slt %1, i32 5
  condbr %c, body, exit
body:
  br latch
latch:
  %2 = add i32 %1, i32 1
  br header
exit:
  ret
}
"#;
        let m = parse_module(text).unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        let dom = DomTree::compute(f);
        let loops = find_loops(f, &dom);
        assert_eq!(loops.len(), 1);
        assert!(!loops[0].is_single_block());
        assert_eq!(loops[0].blocks.len(), 3);
    }

    #[test]
    fn nested_loops_are_both_found() {
        let text = r#"
module "t"
func @f() -> void {
entry:
  br outer
outer:
  %1 = phi i32 [ i32 0, entry ], [ %4, outer_latch ]
  br inner
inner:
  %2 = phi i32 [ i32 0, outer ], [ %3, inner ]
  %3 = add i32 %2, i32 1
  %c1 = icmp slt %3, i32 4
  condbr %c1, inner, outer_latch
outer_latch:
  %4 = add i32 %1, i32 1
  %c2 = icmp slt %4, i32 4
  condbr %c2, outer, exit
exit:
  ret
}
"#;
        let m = parse_module(text).unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        let dom = DomTree::compute(f);
        let loops = find_loops(f, &dom);
        assert_eq!(loops.len(), 2);
        let single: Vec<_> = loops.iter().filter(|l| l.is_single_block()).collect();
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].header, f.block_by_name("inner").unwrap());
    }
}
