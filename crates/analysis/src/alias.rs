//! Base-object + constant-offset alias analysis.
//!
//! Good enough for the loop-rolling scheduler: it distinguishes accesses to
//! different globals/allocas and to provably disjoint constant offsets from
//! the same base, and says "may alias" for everything else.

use rolag_ir::{Function, InstExtra, Module, Opcode, TypeKind, ValueDef, ValueId};

/// The root object a pointer was derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseObject {
    /// A module global.
    Global(rolag_ir::GlobalId),
    /// A stack allocation (identified by its `alloca` instruction).
    Alloca(rolag_ir::InstId),
    /// A pointer-typed parameter.
    Param(u32),
    /// Any other root (call result, loaded pointer, phi, ...).
    Opaque(ValueId),
}

impl BaseObject {
    /// True if the object is a distinct named allocation (global or alloca),
    /// which cannot alias a *different* named allocation.
    pub fn is_identified(&self) -> bool {
        matches!(self, BaseObject::Global(_) | BaseObject::Alloca(_))
    }
}

/// Result of tracing a pointer value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtrInfo {
    /// The root object.
    pub base: BaseObject,
    /// Byte offset from the root, when statically known.
    pub offset: Option<i64>,
}

/// Traces `v` through `gep` chains to its base object and constant offset.
pub fn resolve_pointer(module: &Module, func: &Function, v: ValueId) -> PtrInfo {
    let mut cur = v;
    let mut offset: Option<i64> = Some(0);
    loop {
        match func.value(cur) {
            ValueDef::GlobalAddr(g) => {
                return PtrInfo {
                    base: BaseObject::Global(*g),
                    offset,
                }
            }
            ValueDef::Param { index, .. } => {
                return PtrInfo {
                    base: BaseObject::Param(*index),
                    offset,
                }
            }
            ValueDef::Inst(i) => {
                let data = func.inst(*i);
                match data.opcode {
                    Opcode::Alloca => {
                        return PtrInfo {
                            base: BaseObject::Alloca(*i),
                            offset,
                        }
                    }
                    Opcode::Gep => {
                        let InstExtra::Gep { elem_ty } = data.extra else {
                            unreachable!()
                        };
                        offset = match (offset, gep_const_offset(module, func, *i, elem_ty)) {
                            (Some(acc), Some(d)) => Some(acc + d),
                            _ => None,
                        };
                        cur = data.operands[0];
                    }
                    Opcode::Bitcast => {
                        cur = data.operands[0];
                    }
                    _ => {
                        return PtrInfo {
                            base: BaseObject::Opaque(cur),
                            offset,
                        }
                    }
                }
            }
            _ => {
                return PtrInfo {
                    base: BaseObject::Opaque(cur),
                    offset,
                }
            }
        }
    }
}

/// Byte offset contributed by one `gep`, if all indices are constants.
fn gep_const_offset(
    module: &Module,
    func: &Function,
    gep: rolag_ir::InstId,
    elem_ty: rolag_ir::TypeId,
) -> Option<i64> {
    let data = func.inst(gep);
    let types = &module.types;
    let mut total: i64 = 0;
    let first = func.value(data.operands[1]).as_const_int()?;
    total += first * types.size_of(elem_ty) as i64;
    let mut cur = elem_ty;
    for &idx_v in &data.operands[2..] {
        let idx = func.value(idx_v).as_const_int()?;
        match types.kind(cur).clone() {
            TypeKind::Array { elem, .. } => {
                total += idx * types.size_of(elem) as i64;
                cur = elem;
            }
            TypeKind::Struct { fields } => {
                let i = usize::try_from(idx).ok()?;
                if i >= fields.len() {
                    return None;
                }
                total += types.field_offset(cur, i) as i64;
                cur = fields[i];
            }
            _ => return None,
        }
    }
    Some(total)
}

/// May the byte ranges `[a, a+size_a)` and `[b, b+size_b)` overlap?
pub fn may_alias(
    module: &Module,
    func: &Function,
    a: ValueId,
    size_a: u64,
    b: ValueId,
    size_b: u64,
) -> bool {
    let pa = resolve_pointer(module, func, a);
    let pb = resolve_pointer(module, func, b);
    if pa.base != pb.base {
        // Two *different identified* objects never alias; an identified
        // object also cannot alias an unrelated alloca. Anything involving
        // params or opaque roots may.
        if pa.base.is_identified() && pb.base.is_identified() {
            return false;
        }
        // A local alloca's address has not escaped through a parameter.
        if matches!(pa.base, BaseObject::Alloca(_)) && matches!(pb.base, BaseObject::Param(_)) {
            return false;
        }
        if matches!(pb.base, BaseObject::Alloca(_)) && matches!(pa.base, BaseObject::Param(_)) {
            return false;
        }
        return true;
    }
    match (pa.offset, pb.offset) {
        (Some(oa), Some(ob)) => {
            let (start_a, end_a) = (oa, oa + size_a as i64);
            let (start_b, end_b) = (ob, ob + size_b as i64);
            start_a < end_b && start_b < end_a
        }
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    fn setup() -> (Module, rolag_ir::FuncId) {
        let text = r#"
module "t"
global @a : [8 x i32] = zero
global @b : [8 x i32] = zero
func @f(ptr %p0, ptr %p1, i32 %p2) -> void {
entry:
  %g0 = gep i32, @a, i32 0
  %g1 = gep i32, @a, i32 1
  %g4 = gep i32, @b, i32 1
  %gv = gep i32, @a, %p2
  %al = alloca [4 x i32]
  %ga = gep i32, %al, i32 2
  %gp = gep i32, %p0, i32 1
  store i32 1, %g0
  store i32 1, %g1
  store i32 1, %g4
  store i32 1, %gv
  store i32 1, %ga
  store i32 1, %gp
  ret
}
"#;
        let m = parse_module(text).unwrap();
        let f = m.func_by_name("f").unwrap();
        (m, f)
    }

    fn nth_store_ptr(func: &Function, n: usize) -> ValueId {
        let b = func.entry_block();
        func.block(b)
            .insts
            .iter()
            .filter(|&&i| func.inst(i).opcode == Opcode::Store)
            .nth(n)
            .map(|&i| func.inst(i).operands[1])
            .unwrap()
    }

    #[test]
    fn disjoint_offsets_of_same_global_do_not_alias() {
        let (m, fid) = setup();
        let f = m.func(fid);
        let g0 = nth_store_ptr(f, 0);
        let g1 = nth_store_ptr(f, 1);
        assert!(!may_alias(&m, f, g0, 4, g1, 4));
        // Overlapping ranges do alias.
        assert!(may_alias(&m, f, g0, 8, g1, 4));
    }

    #[test]
    fn different_globals_never_alias() {
        let (m, fid) = setup();
        let f = m.func(fid);
        let g1 = nth_store_ptr(f, 1);
        let g4 = nth_store_ptr(f, 2);
        assert!(!may_alias(&m, f, g1, 4, g4, 4));
    }

    #[test]
    fn variable_index_aliases_conservatively() {
        let (m, fid) = setup();
        let f = m.func(fid);
        let g0 = nth_store_ptr(f, 0);
        let gv = nth_store_ptr(f, 3);
        assert!(may_alias(&m, f, g0, 4, gv, 4));
        // ... but still not across distinct globals.
        let g4 = nth_store_ptr(f, 2);
        assert!(!may_alias(&m, f, gv, 4, g4, 4));
    }

    #[test]
    fn alloca_does_not_alias_globals_or_params() {
        let (m, fid) = setup();
        let f = m.func(fid);
        let ga = nth_store_ptr(f, 4);
        let g0 = nth_store_ptr(f, 0);
        let gp = nth_store_ptr(f, 5);
        assert!(!may_alias(&m, f, ga, 4, g0, 4));
        assert!(!may_alias(&m, f, ga, 4, gp, 4));
    }

    #[test]
    fn params_alias_globals_and_each_other() {
        let (m, fid) = setup();
        let f = m.func(fid);
        let gp = nth_store_ptr(f, 5);
        let g0 = nth_store_ptr(f, 0);
        assert!(may_alias(&m, f, gp, 4, g0, 4));
        let p0 = f.param(0);
        let p1 = f.param(1);
        assert!(may_alias(&m, f, p0, 4, p1, 4));
    }

    #[test]
    fn resolve_tracks_struct_offsets() {
        let text = r#"
module "t"
global @s : { i32, i32, i32 } = zero
func @f() -> void {
entry:
  %p = gep { i32, i32, i32 }, @s, i64 0, i32 2
  store i32 1, %p
  ret
}
"#;
        let m = parse_module(text).unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        let p = nth_store_ptr(f, 0);
        let info = resolve_pointer(&m, f, p);
        assert_eq!(info.offset, Some(8));
    }
}
