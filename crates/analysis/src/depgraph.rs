//! Block-level dependence information.
//!
//! For a single basic block this computes, per instruction, its memory
//! access summary and its intra-block SSA dependences, plus the pairwise
//! "must keep order" conflicts between memory operations. This is the
//! foundation of the loop-rolling scheduling analysis (§IV-D).

use std::collections::HashMap;

use rolag_ir::{BlockId, Effects, Function, InstExtra, InstId, Module, Opcode, ValueDef, ValueId};

use crate::alias::may_alias;

/// Memory behaviour of one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemAccess {
    /// Reads memory.
    pub reads: bool,
    /// Writes memory.
    pub writes: bool,
    /// Accessed location `(pointer, size)`; `None` means "unknown /
    /// the whole world" (e.g. an external call).
    pub loc: Option<(ValueId, u64)>,
}

/// Summarizes how `inst` touches memory (`None` = does not touch memory).
pub fn mem_access(module: &Module, func: &Function, inst: InstId) -> Option<MemAccess> {
    let data = func.inst(inst);
    match data.opcode {
        Opcode::Load => Some(MemAccess {
            reads: true,
            writes: false,
            loc: Some((data.operands[0], module.types.size_of(data.ty))),
        }),
        Opcode::Store => {
            let vty = func.value_ty(data.operands[0], &module.types);
            Some(MemAccess {
                reads: false,
                writes: true,
                loc: Some((data.operands[1], module.types.size_of(vty))),
            })
        }
        Opcode::Call => {
            let InstExtra::Call { callee } = &data.extra else {
                return None;
            };
            match module.func(*callee).effects {
                Effects::ReadNone => None,
                Effects::ReadOnly => Some(MemAccess {
                    reads: true,
                    writes: false,
                    loc: None,
                }),
                Effects::ReadWrite => Some(MemAccess {
                    reads: true,
                    writes: true,
                    loc: None,
                }),
            }
        }
        _ => None,
    }
}

/// Do `a` and `b` conflict (at least one writes, and their footprints may
/// overlap)? Conflicting pairs must retain their program order.
pub fn conflicts(module: &Module, func: &Function, a: InstId, b: InstId) -> bool {
    let (Some(ma), Some(mb)) = (mem_access(module, func, a), mem_access(module, func, b)) else {
        return false;
    };
    if !(ma.writes || mb.writes) {
        return false;
    }
    match (ma.loc, mb.loc) {
        (Some((pa, sa)), Some((pb, sb))) => may_alias(module, func, pa, sa, pb, sb),
        _ => true, // unknown footprint conflicts with everything
    }
}

/// Compact bit set over instruction positions.
#[derive(Debug, Clone, PartialEq)]
pub struct PosSet {
    words: Vec<u64>,
}

impl PosSet {
    /// Empty set sized for `n` positions.
    pub fn new(n: usize) -> Self {
        PosSet {
            words: vec![0; n.div_ceil(64)],
        }
    }
    /// Inserts position `i`.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }
    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }
    /// In-place union; returns true if `self` changed.
    pub fn union_with(&mut self, other: &PosSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            if next != *a {
                *a = next;
                changed = true;
            }
        }
        changed
    }
    /// Iterates set positions in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64).filter_map(move |b| {
                if bits >> b & 1 == 1 {
                    Some(w * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

/// Dependence information for one basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDeps {
    /// Instructions in block order.
    pub insts: Vec<InstId>,
    pos: HashMap<InstId, usize>,
    /// `deps[i]` = positions that instruction `i` transitively depends on
    /// (SSA operands within the block, closed transitively).
    deps: Vec<PosSet>,
    /// Conflicting memory-op position pairs `(earlier, later)`.
    mem_conflicts: Vec<(usize, usize)>,
}

impl BlockDeps {
    /// Computes dependences for `block` of `func`.
    pub fn compute(module: &Module, func: &Function, block: BlockId) -> Self {
        let insts: Vec<InstId> = func.block(block).insts.clone();
        let n = insts.len();
        let mut pos = HashMap::with_capacity(n);
        for (i, &inst) in insts.iter().enumerate() {
            pos.insert(inst, i);
        }
        // Map result value -> position for intra-block defs.
        let mut def_pos: HashMap<ValueId, usize> = HashMap::with_capacity(n);
        for (i, &inst) in insts.iter().enumerate() {
            def_pos.insert(func.inst_result(inst), i);
        }
        let mut deps: Vec<PosSet> = Vec::with_capacity(n);
        for (i, &inst) in insts.iter().enumerate() {
            let mut set = PosSet::new(n);
            for &op in &func.inst(inst).operands {
                if let ValueDef::Inst(_) = func.value(op) {
                    if let Some(&p) = def_pos.get(&op) {
                        if p < i {
                            set.insert(p);
                            // Transitive closure: defs are processed in
                            // order, so deps[p] is already complete.
                            let prior = deps[p].clone();
                            set.union_with(&prior);
                        }
                    }
                }
            }
            deps.push(set);
        }
        let mut mem_conflicts = Vec::new();
        let mem_positions: Vec<usize> = (0..n)
            .filter(|&i| mem_access(module, func, insts[i]).is_some())
            .collect();
        for (k, &i) in mem_positions.iter().enumerate() {
            for &j in &mem_positions[k + 1..] {
                if conflicts(module, func, insts[i], insts[j]) {
                    mem_conflicts.push((i, j));
                }
            }
        }
        BlockDeps {
            insts,
            pos,
            deps,
            mem_conflicts,
        }
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the block is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Position of `inst` within the block.
    pub fn position(&self, inst: InstId) -> Option<usize> {
        self.pos.get(&inst).copied()
    }

    /// Does the instruction at `later` transitively depend (via SSA) on the
    /// instruction at `earlier`?
    pub fn depends_on(&self, later: usize, earlier: usize) -> bool {
        self.deps[later].contains(earlier)
    }

    /// All `(earlier, later)` conflicting memory-op position pairs.
    pub fn mem_conflicts(&self) -> &[(usize, usize)] {
        &self.mem_conflicts
    }

    /// The transitive SSA dependence set of position `i`.
    pub fn dep_set(&self, i: usize) -> &PosSet {
        &self.deps[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    fn deps_of(text: &str) -> (Module, rolag_ir::FuncId, BlockDeps) {
        let m = parse_module(text).unwrap();
        let fid = m.func_by_name("f").unwrap();
        let func = m.func(fid);
        let d = BlockDeps::compute(&m, func, func.entry_block());
        (m, fid, d)
    }

    #[test]
    fn transitive_ssa_deps() {
        let (_m, _f, d) = deps_of(
            r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  %1 = add i32 %p0, i32 1
  %2 = mul i32 %1, i32 2
  %3 = sub i32 %2, i32 3
  %4 = add i32 %p0, i32 9
  ret %3
}
"#,
        );
        assert!(d.depends_on(2, 0), "sub depends on add transitively");
        assert!(d.depends_on(2, 1));
        assert!(!d.depends_on(3, 0), "independent add has no deps");
        assert!(d.depends_on(4, 2), "ret depends on sub");
    }

    #[test]
    fn conflicting_stores_to_same_location() {
        let (_m, _f, d) = deps_of(
            r#"
module "t"
global @g : [4 x i32] = zero
func @f() -> void {
entry:
  %p = gep i32, @g, i32 0
  store i32 1, %p
  store i32 2, %p
  ret
}
"#,
        );
        assert_eq!(d.mem_conflicts(), &[(1, 2)]);
    }

    #[test]
    fn disjoint_stores_do_not_conflict() {
        let (_m, _f, d) = deps_of(
            r#"
module "t"
global @g : [4 x i32] = zero
func @f() -> void {
entry:
  %p0 = gep i32, @g, i32 0
  %p1 = gep i32, @g, i32 1
  store i32 1, %p0
  store i32 2, %p1
  ret
}
"#,
        );
        assert!(d.mem_conflicts().is_empty());
    }

    #[test]
    fn loads_conflict_with_overlapping_stores_only() {
        let (_m, _f, d) = deps_of(
            r#"
module "t"
global @g : [4 x i32] = zero
global @h : [4 x i32] = zero
func @f() -> i32 {
entry:
  %p0 = gep i32, @g, i32 2
  %q = gep i32, @h, i32 2
  store i32 1, %p0
  %v = load i32, %p0
  %w = load i32, %q
  %s = add i32 %v, %w
  ret %s
}
"#,
        );
        // store@2 conflicts with load@3 (same loc) but not load@4 (other
        // global); the two loads never conflict.
        assert_eq!(d.mem_conflicts(), &[(2, 3)]);
    }

    #[test]
    fn external_calls_conflict_with_everything() {
        let (_m, _f, d) = deps_of(
            r#"
module "t"
declare @ext() -> void readwrite
declare @pure(i32 %p0) -> i32 readnone
global @g : [4 x i32] = zero
func @f() -> void {
entry:
  %p = gep i32, @g, i32 0
  store i32 1, %p
  call void @ext()
  %v = call i32 @pure(i32 5)
  store %v, %p
  ret
}
"#,
        );
        // store@1 x call@2, call@2 x store@4, store@1 x store@4.
        let mut pairs = d.mem_conflicts().to_vec();
        pairs.sort();
        assert_eq!(pairs, vec![(1, 2), (1, 4), (2, 4)]);
    }

    #[test]
    fn pos_set_basics() {
        let mut s = PosSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        let collected: Vec<usize> = s.iter().collect();
        assert_eq!(collected, vec![0, 64, 129]);
        let mut t = PosSet::new(130);
        t.insert(5);
        assert!(t.union_with(&s));
        assert!(!t.union_with(&s));
        assert!(t.contains(0) && t.contains(5));
    }
}
