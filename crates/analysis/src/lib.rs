//! # rolag-analysis
//!
//! Program analyses for the RoLAG loop-rolling reproduction: CFG dominators,
//! natural-loop and induction-variable detection, base+offset alias
//! analysis, block-level dependence graphs, and the TTI-style code-size
//! cost model used by the profitability analysis (§IV-F of the paper).
//!
//! ```
//! use rolag_analysis::cost::{function_size_estimate, X86SizeModel};
//! use rolag_ir::parser::parse_module;
//!
//! let m = parse_module(
//!     "module \"t\"\nfunc @f() -> void {\nentry:\n  ret\n}\n",
//! ).unwrap();
//! let f = m.func(m.func_by_name("f").unwrap());
//! assert!(function_size_estimate(&X86SizeModel, &m, f) > 0);
//! ```

#![warn(missing_docs)]

pub mod alias;
pub mod cost;
pub mod depgraph;
pub mod dom;
pub mod loops;

pub use alias::{may_alias, resolve_pointer, BaseObject, PtrInfo};
pub use cost::{
    function_size_estimate, module_text_estimate, SizeModel, TargetKind, Thumb2SizeModel,
    X86SizeModel,
};
pub use depgraph::{conflicts, mem_access, BlockDeps, MemAccess, PosSet};
pub use dom::DomTree;
pub use loops::{find_induction_vars, find_loops, trip_count, IndVar, Loop, TripCount};
