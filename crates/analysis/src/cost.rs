//! TTI-style code-size cost model (§IV-F).
//!
//! Estimates the byte size of an IR instruction when lowered to the target,
//! like LLVM's `TargetTransformInfo` code-size cost used by RoLAG's
//! profitability analysis. The estimate is intentionally cheap and *not*
//! identical to the measured size produced by the `rolag-lower` backend —
//! the gap between the two is what produces profitability false positives,
//! as discussed in §V-A of the paper.

use rolag_ir::{BlockId, Function, InstExtra, InstId, Module, Opcode, TypeKind, UseMap, ValueDef};

/// A target-specific code-size model.
///
/// `uses` is the function's use map, computed once by the caller and shared
/// across every instruction of an estimate — sizing a gep needs its users
/// (to decide addressing-mode folding), and recomputing the map per
/// instruction would make every block estimate linear in the whole function.
pub trait SizeModel {
    /// Estimated byte size of `inst` after lowering.
    fn inst_size(&self, module: &Module, func: &Function, uses: &UseMap, inst: InstId) -> u32;

    /// Fixed per-function overhead (prologue/epilogue).
    fn function_overhead(&self) -> u32 {
        4
    }
}

/// x86-64 `-Os`-flavoured size model. The default everywhere.
#[derive(Debug, Clone, Copy, Default)]
pub struct X86SizeModel;

impl X86SizeModel {
    fn has_const_operand(func: &Function, inst: InstId) -> bool {
        func.inst(inst)
            .operands
            .iter()
            .any(|&v| func.value(v).is_constant())
    }

    /// A `gep` folds into the addressing mode of its users when every use is
    /// the address operand of a load/store and the shape fits
    /// `base + index*scale + disp`.
    fn gep_folds(module: &Module, func: &Function, uses: &UseMap, inst: InstId) -> bool {
        let data = func.inst(inst);
        let InstExtra::Gep { elem_ty } = data.extra else {
            return false;
        };
        if data.operands.len() > 2 {
            return false; // struct navigation lowered separately
        }
        let scale = module.types.size_of(elem_ty);
        if !matches!(scale, 1 | 2 | 4 | 8) {
            return false;
        }
        let result = func.inst_result(inst);
        let users = uses.of(result);
        !users.is_empty()
            && users.iter().all(|&(user, op_idx)| {
                let udata = func.inst(user);
                match udata.opcode {
                    Opcode::Load => op_idx == 0,
                    Opcode::Store => op_idx == 1,
                    _ => false,
                }
            })
    }
}

impl SizeModel for X86SizeModel {
    fn inst_size(&self, module: &Module, func: &Function, uses: &UseMap, inst: InstId) -> u32 {
        let data = func.inst(inst);
        match data.opcode {
            Opcode::Add | Opcode::Sub | Opcode::And | Opcode::Or | Opcode::Xor => {
                if Self::has_const_operand(func, inst) {
                    4
                } else {
                    3
                }
            }
            Opcode::Mul => 4,
            Opcode::SDiv | Opcode::UDiv | Opcode::SRem | Opcode::URem => 6,
            Opcode::Shl | Opcode::LShr | Opcode::AShr => {
                if Self::has_const_operand(func, inst) {
                    4
                } else {
                    5 // shifts by register go through %cl
                }
            }
            Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => 4,
            Opcode::Icmp => 3,
            Opcode::Fcmp => 4,
            Opcode::Select => 7,
            Opcode::ZExt | Opcode::SExt => 3,
            Opcode::Trunc | Opcode::Bitcast | Opcode::PtrToInt | Opcode::IntToPtr => 0,
            Opcode::FpToSi | Opcode::SiToFp | Opcode::FpExt | Opcode::FpTrunc => 4,
            Opcode::Alloca => {
                if data.operands.is_empty() {
                    0 // static frame slot
                } else {
                    7 // dynamic stack adjustment
                }
            }
            Opcode::Load => 4,
            Opcode::Store => {
                if func.value(data.operands[0]).is_constant() {
                    6 // mov [mem], imm
                } else {
                    4
                }
            }
            Opcode::Gep => {
                if Self::gep_folds(module, func, uses, inst) {
                    0
                } else {
                    4 // lea
                }
            }
            Opcode::Call => 5,
            Opcode::Phi => 0,
            Opcode::Br => 2,
            Opcode::CondBr => 2, // jcc (cmp accounted separately)
            Opcode::Ret => 1,
            Opcode::Unreachable => 1,
        }
    }
}

/// ARM Thumb-2 `-Os` size model: the embedded setting the paper's
/// introduction motivates (code size translating directly to device cost).
/// Most instructions encode in 2 bytes, with 4-byte wide encodings for
/// larger immediates, loads/stores with big offsets, and calls.
#[derive(Debug, Clone, Copy, Default)]
pub struct Thumb2SizeModel;

impl SizeModel for Thumb2SizeModel {
    fn inst_size(&self, module: &Module, func: &Function, uses: &UseMap, inst: InstId) -> u32 {
        let data = func.inst(inst);
        let has_big_imm = data.operands.iter().any(|&v| {
            matches!(func.value(v), ValueDef::ConstInt { value, .. } if *value < -128 || *value > 255)
        });
        match data.opcode {
            Opcode::Add | Opcode::Sub | Opcode::And | Opcode::Or | Opcode::Xor => {
                if has_big_imm {
                    4
                } else {
                    2
                }
            }
            Opcode::Mul => 4,
            Opcode::SDiv | Opcode::UDiv | Opcode::SRem | Opcode::URem => 4,
            Opcode::Shl | Opcode::LShr | Opcode::AShr => 2,
            Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => 4, // VFP
            Opcode::Icmp => 2,
            Opcode::Fcmp => 4,
            Opcode::Select => 6, // IT block + moves
            Opcode::ZExt | Opcode::SExt => 2,
            Opcode::Trunc | Opcode::Bitcast | Opcode::PtrToInt | Opcode::IntToPtr => 0,
            Opcode::FpToSi | Opcode::SiToFp | Opcode::FpExt | Opcode::FpTrunc => 4,
            Opcode::Alloca => 0,
            Opcode::Load | Opcode::Store => {
                // Global addresses need a literal-pool load of the base.
                let ptr = *data.operands.last().expect("memory operand");
                if matches!(func.value(ptr), ValueDef::GlobalAddr(_)) {
                    6
                } else {
                    2
                }
            }
            Opcode::Gep => {
                if X86SizeModel::gep_folds(module, func, uses, inst) {
                    0
                } else {
                    4 // add with shifted register
                }
            }
            Opcode::Call => 4, // bl
            Opcode::Phi => 0,
            Opcode::Br | Opcode::CondBr => 2,
            Opcode::Ret => 2, // bx lr
            Opcode::Unreachable => 2,
        }
    }

    fn function_overhead(&self) -> u32 {
        4 // push {lr} ... pop {pc}
    }
}

/// Lowering target selectable in the pass options. The same rolling
/// decision can flip between targets: Thumb-2's tiny loop overhead makes
/// more rolls profitable, x86-64's cheap immediates fewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TargetKind {
    /// x86-64 `-Os` (the paper's evaluation target).
    #[default]
    X86_64,
    /// ARM Thumb-2 `-Os` (the embedded motivation).
    Thumb2,
}

impl TargetKind {
    /// Estimated `.text` size of `func` under this target's model.
    pub fn function_estimate(self, module: &Module, func: &Function) -> u32 {
        match self {
            TargetKind::X86_64 => function_size_estimate(&X86SizeModel, module, func),
            TargetKind::Thumb2 => function_size_estimate(&Thumb2SizeModel, module, func),
        }
    }

    /// Estimated size of one block under this target's model. Computes the
    /// function's use map internally — for repeated per-block queries over
    /// the same function revision, use [`TargetKind::block_estimate_with`]
    /// (or a [`BlockSizeCache`]) so the map is built only once.
    pub fn block_estimate(self, module: &Module, func: &Function, block: BlockId) -> u32 {
        self.block_estimate_with(module, func, &func.compute_uses(), block)
    }

    /// Estimated size of one block, with a caller-provided use map for
    /// `func`'s current revision.
    pub fn block_estimate_with(
        self,
        module: &Module,
        func: &Function,
        uses: &UseMap,
        block: BlockId,
    ) -> u32 {
        match self {
            TargetKind::X86_64 => {
                block_size_estimate_with(&X86SizeModel, module, func, uses, block)
            }
            TargetKind::Thumb2 => {
                block_size_estimate_with(&Thumb2SizeModel, module, func, uses, block)
            }
        }
    }

    /// Fixed per-function overhead under this target's model.
    pub fn function_overhead(self) -> u32 {
        match self {
            TargetKind::X86_64 => X86SizeModel.function_overhead(),
            TargetKind::Thumb2 => Thumb2SizeModel.function_overhead(),
        }
    }
}

/// Per-block memo over [`block_size_estimate`], keyed by the function's
/// stable [`BlockId`]s.
///
/// [`function_size_estimate`] is a plain sum of block estimates plus the
/// fixed overhead, so as long as stale entries are [invalidated] whenever a
/// block's estimate could change, summing cached entries reproduces the
/// whole-function walk exactly. Note that a block's estimate depends on
/// slightly more than the block's own content: `gep`s are free when every
/// *user* folds them into an addressing mode, so editing a block can change
/// the estimate of the blocks defining the `gep`s it uses — callers must
/// invalidate those too (see `rolag::incremental`).
///
/// The cache records the [`Function::revision`] it was filled against.
/// Serving a lookup for a function whose revision differs from the recorded
/// one drops every entry first: a mutation that bypassed
/// [`invalidate`](BlockSizeCache::invalidate) can therefore never yield a
/// stale estimate, only a recomputation. Callers that *have* performed the
/// per-block invalidation for a mutation (the incremental rolling engine)
/// call [`carry_to`](BlockSizeCache::carry_to) to re-key the surviving
/// entries to the new revision instead of losing them.
///
/// The cache also snapshots the function's use map per revision, so gep
/// foldability checks cost one whole-function `compute_uses` per revision
/// instead of one per gep.
///
/// [invalidated]: BlockSizeCache::invalidate
#[derive(Debug, Clone, Default)]
pub struct BlockSizeCache {
    /// Revision of the function the entries (and use map) describe.
    revision: Option<u64>,
    sizes: Vec<Option<u32>>,
    uses: Option<UseMap>,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that computed (and cached) a fresh estimate.
    pub misses: u64,
}

impl BlockSizeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every entry if `func`'s revision does not match the one the
    /// cache was filled against, then binds the cache to `func`'s revision.
    fn sync(&mut self, func: &Function) {
        if self.revision != Some(func.revision()) {
            self.sizes.clear();
            self.uses = None;
            self.revision = Some(func.revision());
        }
    }

    /// Cached estimate of `block`, computing and caching it on miss.
    pub fn get(
        &mut self,
        target: TargetKind,
        module: &Module,
        func: &Function,
        block: BlockId,
    ) -> u32 {
        self.sync(func);
        let i = block.index();
        if i >= self.sizes.len() {
            self.sizes.resize(i + 1, None);
        }
        if let Some(size) = self.sizes[i] {
            self.hits += 1;
            return size;
        }
        self.misses += 1;
        if self.uses.is_none() {
            self.uses = Some(func.compute_uses());
        }
        let uses = self.uses.as_ref().expect("use map just populated");
        let size = target.block_estimate_with(module, func, uses, block);
        self.sizes[i] = Some(size);
        size
    }

    /// Peeks at the cached estimate of `block` without computing on miss.
    /// Returns `None` when the entry is absent or the cache is bound to a
    /// different function revision.
    pub fn peek(&self, func: &Function, block: BlockId) -> Option<u32> {
        if self.revision != Some(func.revision()) {
            return None;
        }
        self.sizes.get(block.index()).copied().flatten()
    }

    /// Drops the cached estimate of `block`.
    pub fn invalidate(&mut self, block: BlockId) {
        let i = block.index();
        if i < self.sizes.len() {
            self.sizes[i] = None;
        }
    }

    /// Re-keys the surviving entries to `revision`, asserting that every
    /// entry whose block changed since the previously recorded revision has
    /// already been [`invalidate`](BlockSizeCache::invalidate)d. The use-map
    /// snapshot is always dropped — it describes the whole function and is
    /// rebuilt on the next miss.
    pub fn carry_to(&mut self, revision: u64) {
        self.uses = None;
        self.revision = Some(revision);
    }

    /// Cached whole-function estimate: the sum of per-block estimates plus
    /// the fixed overhead — identical to [`TargetKind::function_estimate`].
    pub fn function_estimate(
        &mut self,
        target: TargetKind,
        module: &Module,
        func: &Function,
    ) -> u32 {
        if func.is_declaration {
            return 0;
        }
        let body: u32 = func
            .block_ids()
            .map(|b| self.get(target, module, func, b))
            .sum();
        body + target.function_overhead()
    }
}

/// Estimated size of one block under `model`. Builds `func`'s use map
/// internally; for repeated queries prefer [`block_size_estimate_with`].
pub fn block_size_estimate<M: SizeModel>(
    model: &M,
    module: &Module,
    func: &Function,
    block: BlockId,
) -> u32 {
    block_size_estimate_with(model, module, func, &func.compute_uses(), block)
}

/// Estimated size of one block under `model`, with a caller-provided use
/// map for `func`'s current revision.
pub fn block_size_estimate_with<M: SizeModel>(
    model: &M,
    module: &Module,
    func: &Function,
    uses: &UseMap,
    block: BlockId,
) -> u32 {
    func.block(block)
        .insts
        .iter()
        .map(|&i| model.inst_size(module, func, uses, i))
        .sum()
}

/// Estimated `.text` size of one function under `model`. The use map is
/// computed once and shared across every block.
pub fn function_size_estimate<M: SizeModel>(model: &M, module: &Module, func: &Function) -> u32 {
    if func.is_declaration {
        return 0;
    }
    let uses = func.compute_uses();
    let body: u32 = func
        .block_ids()
        .map(|b| block_size_estimate_with(model, module, func, &uses, b))
        .sum();
    body + model.function_overhead()
}

/// Estimated `.text` size of the whole module.
pub fn module_text_estimate<M: SizeModel>(model: &M, module: &Module) -> u64 {
    module
        .func_ids()
        .map(|f| function_size_estimate(model, module, module.func(f)) as u64)
        .sum()
}

/// Total bytes of initialized constant data (`.rodata`): the cost of global
/// constant arrays emitted for mismatching nodes.
pub fn module_rodata_size(module: &Module) -> u64 {
    module
        .global_ids()
        .filter(|&g| module.global(g).is_const)
        .map(|g| module.global_size(g))
        .sum()
}

/// Estimated size of a *set* of values if they had to be materialized: used
/// by profitability to price mismatching nodes. Constants that fit an
/// immediate are free; anything else costs a register move.
pub fn operand_materialization_cost(
    _module: &Module,
    func: &Function,
    v: rolag_ir::ValueId,
) -> u32 {
    match func.value(v) {
        ValueDef::ConstInt { value, .. } => {
            if *value >= i32::MIN as i64 && *value <= i32::MAX as i64 {
                0
            } else {
                10 // movabs
            }
        }
        ValueDef::ConstFloat { .. } => 8, // constant-pool load
        ValueDef::GlobalAddr(_) | ValueDef::FuncAddr(_) => 0,
        _ => 0,
    }
}

/// Helper used in several passes: true when `ty` is lowered to zero bytes of
/// data (void / function types).
pub fn is_zero_sized(module: &Module, ty: rolag_ir::TypeId) -> bool {
    matches!(
        module.types.kind(ty),
        TypeKind::Void | TypeKind::Func { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    fn f_size(text: &str) -> u32 {
        let m = parse_module(text).unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        function_size_estimate(&X86SizeModel, &m, f)
    }

    #[test]
    fn straight_line_bigger_than_empty() {
        let small = f_size("module \"t\"\nfunc @f() -> void {\nentry:\n  ret\n}\n");
        let big = f_size(
            r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  %1 = add i32 %p0, i32 1
  %2 = mul i32 %1, %1
  %3 = sub i32 %2, %p0
  ret %3
}
"#,
        );
        assert!(big > small);
        assert_eq!(small, 4 + 1);
    }

    #[test]
    fn folded_gep_is_free() {
        let folded = f_size(
            r#"
module "t"
global @g : [8 x i32] = zero
func @f(i64 %p0) -> i32 {
entry:
  %p = gep i32, @g, %p0
  %v = load i32, %p
  ret %v
}
"#,
        );
        let unfolded = f_size(
            r#"
module "t"
global @g : [8 x i32] = zero
func @f(i64 %p0) -> ptr {
entry:
  %p = gep i32, @g, %p0
  ret %p
}
"#,
        );
        // In the folded case the gep contributes nothing beyond the load.
        assert_eq!(folded, 4 + 4 + 1);
        assert_eq!(unfolded, 4 + 4 + 1);
    }

    #[test]
    fn phis_and_control_are_cheap() {
        let loop_fn = f_size(
            r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  br loop
loop:
  %1 = phi i32 [ i32 0, entry ], [ %2, loop ]
  %2 = add i32 %1, i32 1
  %3 = icmp slt %2, %p0
  condbr %3, loop, exit
exit:
  ret %2
}
"#,
        );
        // br 2 + phi 0 + add 4 + icmp 3 + condbr 2 + ret 1 + overhead 4.
        assert_eq!(loop_fn, 16);
    }

    #[test]
    fn block_size_cache_matches_full_walk() {
        let m = parse_module(
            r#"
module "t"
global @g : [8 x i32] = zero
func @f(i64 %p0) -> i32 {
entry:
  %p = gep i32, @g, %p0
  %v = load i32, %p
  br exit
exit:
  ret %v
}
"#,
        )
        .unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        let mut cache = BlockSizeCache::new();
        let full = TargetKind::X86_64.function_estimate(&m, f);
        assert_eq!(cache.function_estimate(TargetKind::X86_64, &m, f), full);
        assert_eq!(cache.hits, 0);
        // Second walk is served entirely from the cache.
        assert_eq!(cache.function_estimate(TargetKind::X86_64, &m, f), full);
        assert_eq!(cache.hits, 2);
        // Invalidation forces exactly one recomputation.
        cache.invalidate(rolag_ir::BlockId::from_index(0));
        assert_eq!(cache.function_estimate(TargetKind::X86_64, &m, f), full);
        assert_eq!(cache.misses, 3);
    }

    #[test]
    fn mutation_without_invalidate_cannot_serve_stale_sizes() {
        let mut m = parse_module(
            r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  %1 = add i32 %p0, %p0
  %2 = mul i32 %1, %1
  ret %2
}
"#,
        )
        .unwrap();
        let id = m.func_by_name("f").unwrap();
        let mut cache = BlockSizeCache::new();
        let entry = rolag_ir::BlockId::from_index(0);
        let before = cache.get(TargetKind::X86_64, &m, m.func(id), entry);
        // Mutate the block but "forget" to call `invalidate`: the revision
        // check must force a recomputation instead of serving `before`.
        let mul = m.func(id).block(entry).insts[1];
        m.func_mut(id).remove_inst(mul);
        let after = cache.get(TargetKind::X86_64, &m, m.func(id), entry);
        assert_eq!(
            after,
            TargetKind::X86_64.block_estimate(&m, m.func(id), entry)
        );
        assert!(
            after < before,
            "removing an instruction must shrink the estimate"
        );
        // The mismatched revision also drops sibling entries and the use map.
        assert_eq!(cache.peek(m.func(id), entry), Some(after));
    }

    #[test]
    fn carry_to_rekeys_surviving_entries() {
        let mut m = parse_module(
            r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  %1 = add i32 %p0, %p0
  %2 = mul i32 %1, %1
  br exit
exit:
  ret %1
}
"#,
        )
        .unwrap();
        let id = m.func_by_name("f").unwrap();
        let mut cache = BlockSizeCache::new();
        let entry = rolag_ir::BlockId::from_index(0);
        let full = cache.function_estimate(TargetKind::X86_64, &m, m.func(id));
        // Drop the (unused) mul, invalidate its block, carry the exit entry.
        let mul = m.func(id).block(entry).insts[1];
        m.func_mut(id).remove_inst(mul);
        cache.invalidate(entry);
        cache.carry_to(m.func(id).revision());
        let misses_before = cache.misses;
        let fresh = TargetKind::X86_64.function_estimate(&m, m.func(id));
        assert_eq!(
            cache.function_estimate(TargetKind::X86_64, &m, m.func(id)),
            fresh
        );
        assert!(fresh < full);
        // Only the invalidated entry recomputed; the exit entry survived.
        assert_eq!(cache.misses, misses_before + 1);
    }

    #[test]
    fn rodata_counts_const_globals_only() {
        let m = parse_module(
            "module \"t\"\nconst @a : [4 x i32] = ints i32 [1,2,3,4]\nglobal @b : [4 x i32] = zero\n",
        )
        .unwrap();
        assert_eq!(module_rodata_size(&m), 16);
    }
}
