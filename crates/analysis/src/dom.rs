//! Dominator tree (Cooper–Harvey–Kennedy algorithm).

use rolag_ir::{BlockId, Function};

/// Immediate-dominator tree for a function's CFG.
///
/// `PartialEq` compares the full computed structure (idoms, RPO numbers,
/// entry), so equality with a freshly computed tree means a cached copy is
/// still exact — the pass manager's debug-mode invalidation checker relies
/// on this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomTree {
    /// `idom[b]` is the immediate dominator of block `b` (`None` for the
    /// entry and for unreachable blocks).
    idom: Vec<Option<BlockId>>,
    /// Reverse postorder number per block (`usize::MAX` when unreachable).
    rpo_number: Vec<usize>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree of `func`.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks.
    pub fn compute(func: &Function) -> Self {
        let n = func.num_blocks();
        let entry = func.entry_block();

        // Reverse postorder over reachable blocks.
        let mut rpo: Vec<BlockId> = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = in stack, 2 = done
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        state[entry.index()] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = func.successors(b);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                rpo.push(b);
                stack.pop();
            }
        }
        rpo.reverse();

        let mut rpo_number = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_number[b.index()] = i;
        }

        let preds = func.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_number, p, cur),
                    });
                }
                if let Some(nd) = new_idom {
                    if idom[b.index()] != Some(nd) {
                        idom[b.index()] = Some(nd);
                        changed = true;
                    }
                }
            }
        }
        idom[entry.index()] = None;
        DomTree {
            idom,
            rpo_number,
            entry,
        }
    }

    /// Immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_number[b.index()] == usize::MAX {
            return false; // unreachable blocks are dominated by nothing
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return cur == a,
            }
        }
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        b == self.entry || self.rpo_number[b.index()] != usize::MAX
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_number: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_number[a.index()] > rpo_number[b.index()] {
            a = idom[a.index()].expect("walk past entry");
        }
        while rpo_number[b.index()] > rpo_number[a.index()] {
            b = idom[b.index()].expect("walk past entry");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    fn blocks(text: &str) -> (rolag_ir::Module, rolag_ir::FuncId) {
        let m = parse_module(text).unwrap();
        let f = m.func_ids().next().unwrap();
        (m, f)
    }

    #[test]
    fn diamond_cfg() {
        let (m, fid) = blocks(
            r#"
module "t"
func @f(i1 %p0) -> i32 {
entry:
  condbr %p0, left, right
left:
  br join
right:
  br join
join:
  %1 = phi i32 [ i32 1, left ], [ i32 2, right ]
  ret %1
}
"#,
        );
        let f = m.func(fid);
        let dom = DomTree::compute(f);
        let entry = f.block_by_name("entry").unwrap();
        let left = f.block_by_name("left").unwrap();
        let right = f.block_by_name("right").unwrap();
        let join = f.block_by_name("join").unwrap();
        assert!(dom.dominates(entry, join));
        assert!(!dom.dominates(left, join));
        assert!(!dom.dominates(right, join));
        assert_eq!(dom.idom(join), Some(entry));
        assert_eq!(dom.idom(left), Some(entry));
        assert!(dom.dominates(join, join));
    }

    #[test]
    fn loop_cfg() {
        let (m, fid) = blocks(
            r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  br header
header:
  %1 = phi i32 [ i32 0, entry ], [ %2, header ]
  %2 = add i32 %1, i32 1
  %3 = icmp slt %2, %p0
  condbr %3, header, exit
exit:
  ret %2
}
"#,
        );
        let f = m.func(fid);
        let dom = DomTree::compute(f);
        let entry = f.block_by_name("entry").unwrap();
        let header = f.block_by_name("header").unwrap();
        let exit = f.block_by_name("exit").unwrap();
        assert!(dom.dominates(header, exit));
        assert!(dom.dominates(entry, header));
        assert_eq!(dom.idom(exit), Some(header));
    }
}
