//! # rolag-passes
//!
//! The unified pass manager for the RoLAG reproduction: every driver in
//! the workspace — `rolag-opt`, the differential oracle, and the bench
//! harnesses — runs transforms through this crate instead of hand-rolled
//! dispatch.
//!
//! Three pieces:
//!
//! * **Pass traits + manager** ([`manager`]) — [`ModulePass`] /
//!   [`FunctionPass`] with LLVM-style [`PreservedAnalyses`] contracts, a
//!   [`PassManager`] that can verify between passes and track per-pass
//!   wall time and IR changes.
//! * **Cached analyses** ([`analysis`]) — an [`AnalysisManager`] caching
//!   dominators, loop forests, dependence graphs, pointer resolutions,
//!   and the call-effects table, keyed by each function's structural
//!   revision counter so stale results can never be served.
//! * **Registry + textual pipelines** ([`registry`], [`spec`]) —
//!   `"unroll<4>,cleanup,rolag,flatten,cleanup"` parses into a pipeline
//!   with compiler-style diagnostics on bad specs; the registry also
//!   generates the `rolag-opt` help text so docs cannot drift.
//!
//! The ported passes ([`ports`]) wrap the legacy `*_module` entry points
//! (or replicate their iteration order exactly), so running a pipeline
//! here is byte-identical to the drivers it replaced.
//!
//! ```
//! use rolag_ir::parser::parse_module;
//! use rolag_passes::{AnalysisManager, PassContext, PassManager, PassRegistry, TargetKind};
//!
//! let mut module = parse_module(
//!     "module \"t\"\nfunc @f(i32 %p0) -> i32 {\nentry:\n  %1 = add i32 %p0, i32 0\n  ret %1\n}\n",
//! )
//! .unwrap();
//! let mut pm = PassManager::new();
//! pm.add_all(PassRegistry::builtin().parse_pipeline("cleanup,cse").unwrap());
//! let mut am = AnalysisManager::new();
//! let mut cx = PassContext::new(TargetKind::X86_64);
//! let report = pm.run(&mut module, &mut am, &mut cx).unwrap();
//! assert_eq!(report.outcomes.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod manager;
pub mod ports;
pub mod registry;
pub mod spec;

pub use analysis::{AnalysisCacheStats, AnalysisKind, AnalysisManager, PreservedAnalyses};
pub use manager::{
    structural_hash, ForEach, FuncResult, FunctionPass, ModulePass, PassContext, PassError,
    PassManager, PassManagerOptions, PassOutcome, RunReport,
};
pub use ports::{
    CleanupPass, CsePass, FlattenPass, RerollPass, RolagEngine, RolagPass, UnrollPass,
};
pub use registry::{PassInfo, PassRegistry};
pub use spec::{PipelineSpec, SpecElement, SpecError};

// Re-exported so driver binaries need not depend on rolag-analysis just to
// construct a PassContext.
pub use rolag_analysis::TargetKind;
