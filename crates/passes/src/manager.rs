//! Pass traits, the pass manager, and its run reports.
//!
//! Two granularities, mirroring LLVM's design:
//!
//! * [`ModulePass`] — runs over the whole module and reports what it
//!   preserved. Whole-module transforms (rolag, unroll) implement this
//!   directly.
//! * [`FunctionPass`] — runs over one definition at a time. The
//!   [`ForEach`] adapter lifts it to a [`ModulePass`] by iterating
//!   definitions in id order, applying each function's
//!   [`PreservedAnalyses`] contract to that function's cache entries
//!   alone, and aggregating a change count for the pass's summary line.
//!
//! The [`PassManager`] threads one [`AnalysisManager`] through the whole
//! pipeline, applies each pass's preservation contract after it runs, and
//! (optionally) verifies the module between passes. Passes never print:
//! human-readable output goes through [`PassContext::note`] and is handed
//! back in [`PassOutcome::lines`], so drivers decide what reaches stderr.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Instant;

use rolag::{DriverReport, RolagStats};
use rolag_analysis::TargetKind;
use rolag_ir::printer::print_module;
use rolag_ir::verify::verify_module;
use rolag_ir::{FuncId, Module};

use crate::analysis::{AnalysisCacheStats, AnalysisKind, AnalysisManager, PreservedAnalyses};

/// Shared state handed to every pass: target configuration plus the
/// note/stat sinks the manager drains into the pass's [`PassOutcome`].
pub struct PassContext {
    /// Cost-model target, forwarded to passes with profitability models.
    pub target: TargetKind,
    /// Worker count for passes with a parallel driver (`None` = serial).
    pub jobs: Option<usize>,
    /// Force per-rewrite translation validation in every rolag engine run
    /// (the `rolag-opt --validate-rewrites` flag); `tv`-flavoured passes
    /// validate regardless.
    pub validate_rewrites: bool,
    /// Override the search strategy of every rolag engine run (the
    /// `rolag-opt --search` flag); `None` keeps each pass's configured
    /// strategy.
    pub search: Option<rolag::SearchConfig>,
    lines: Vec<String>,
    rolag: Option<RolagStats>,
    driver: Option<DriverReport>,
}

impl PassContext {
    /// A context for `target`, serial execution.
    pub fn new(target: TargetKind) -> Self {
        PassContext {
            target,
            jobs: None,
            validate_rewrites: false,
            search: None,
            lines: Vec::new(),
            rolag: None,
            driver: None,
        }
    }

    /// Records one line of human-readable pass output (a stat line in the
    /// exact format the legacy drivers printed). The manager moves it
    /// into the current [`PassOutcome`].
    pub fn note(&mut self, line: String) {
        self.lines.push(line);
    }

    /// Records the rolling statistics of a rolag engine run.
    pub fn record_rolag(&mut self, stats: RolagStats) {
        self.rolag = Some(stats);
    }

    /// Records the report of the parallel memoizing driver.
    pub fn record_driver(&mut self, report: DriverReport) {
        self.driver = Some(report);
    }

    fn drain(&mut self) -> (Vec<String>, Option<RolagStats>, Option<DriverReport>) {
        (
            std::mem::take(&mut self.lines),
            self.rolag.take(),
            self.driver.take(),
        )
    }
}

/// A transform over a whole module.
pub trait ModulePass {
    /// Display name, e.g. `unroll<4>`.
    fn name(&self) -> String;
    /// Runs the pass and reports which cached analyses it kept valid.
    fn run(
        &self,
        module: &mut Module,
        am: &mut AnalysisManager,
        cx: &mut PassContext,
    ) -> PreservedAnalyses;
}

/// What one [`FunctionPass`] application reports back.
pub struct FuncResult {
    /// Analyses still valid for this function (and any other state the
    /// pass touched).
    pub preserved: PreservedAnalyses,
    /// Units of change (instructions removed, loops transformed, …) —
    /// summed across functions and handed to
    /// [`FunctionPass::summarize`].
    pub changed: u64,
}

/// A transform over one function definition at a time.
pub trait FunctionPass {
    /// Display name.
    fn name(&self) -> String;
    /// Transforms the definition `id`. Declarations are never passed in.
    fn run_on_function(
        &self,
        module: &mut Module,
        id: FuncId,
        am: &mut AnalysisManager,
        cx: &mut PassContext,
    ) -> FuncResult;
    /// Emits the pass's module-level summary line from the aggregated
    /// change count. Default: no output.
    fn summarize(&self, changed: u64, cx: &mut PassContext) {
        let _ = (changed, cx);
    }
}

/// Lifts a [`FunctionPass`] to a [`ModulePass`]: definitions in id order,
/// each function's preserved set applied to its own cache entries via
/// [`AnalysisManager::invalidate_function`] (so one changed function does
/// not drop its neighbours' cached analyses), change counts summed into
/// one summary.
pub struct ForEach<P>(pub P);

impl<P: FunctionPass> ModulePass for ForEach<P> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn run(
        &self,
        module: &mut Module,
        am: &mut AnalysisManager,
        cx: &mut PassContext,
    ) -> PreservedAnalyses {
        let ids: Vec<FuncId> = module.func_ids().collect();
        let mut effects_preserved = true;
        let mut changed = 0u64;
        for id in ids {
            if module.func(id).is_declaration {
                continue;
            }
            let result = self.0.run_on_function(module, id, am, cx);
            // A function pass only mutates the definition it was handed,
            // so its contract binds that function alone: apply it right
            // here, per function, instead of intersecting into one
            // module-wide set. One changed function must not flush its
            // neighbours' caches.
            am.invalidate_function(module, id, &result.preserved);
            effects_preserved &= result.preserved.preserves(AnalysisKind::EffectsTable);
            changed += result.changed;
        }
        self.0.summarize(changed, cx);
        // Per-function kinds are settled above, so report them preserved —
        // the manager's module-wide sweep must not drop the entries that
        // survived. The effects table is module-wide: it survives only if
        // every function's run preserved it.
        let mut preserved = PreservedAnalyses::none()
            .preserve(AnalysisKind::Dominators)
            .preserve(AnalysisKind::Loops)
            .preserve(AnalysisKind::DepGraph)
            .preserve(AnalysisKind::Alias);
        if effects_preserved {
            preserved = preserved.preserve(AnalysisKind::EffectsTable);
        }
        preserved
    }
}

/// Manager knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassManagerOptions {
    /// Verify the module after every pass; a failure aborts the pipeline
    /// with a [`PassError`] naming the offending pass.
    pub verify_each: bool,
    /// Track whether each pass changed the module (by structural hash of
    /// the printed IR) and capture the post-pass IR text when it did.
    pub print_changed: bool,
}

/// Everything recorded about one executed pass.
#[derive(Debug)]
pub struct PassOutcome {
    /// The pass's display name.
    pub name: String,
    /// Wall-clock nanoseconds spent inside the pass (always recorded;
    /// `--time-passes` is purely a presentation flag in the drivers).
    pub wall_ns: u128,
    /// Stat lines the pass emitted via [`PassContext::note`], in the
    /// legacy drivers' exact format.
    pub lines: Vec<String>,
    /// Rolling statistics, for rolag passes.
    pub rolag: Option<RolagStats>,
    /// Parallel-driver report, for rolag passes run with `jobs`.
    pub driver: Option<DriverReport>,
    /// Whether the printed module changed across the pass. Only tracked
    /// under [`PassManagerOptions::print_changed`].
    pub changed: Option<bool>,
    /// The post-pass IR text, captured when `print_changed` is on and the
    /// pass changed the module.
    pub ir_after: Option<String>,
}

/// The result of a full pipeline run.
#[derive(Debug)]
pub struct RunReport {
    /// One entry per executed pass, in order.
    pub outcomes: Vec<PassOutcome>,
    /// Snapshot of the analysis manager's cumulative hit/miss counters
    /// after the run.
    pub cache: AnalysisCacheStats,
}

/// A pipeline aborted by inter-pass verification.
#[derive(Debug)]
pub struct PassError {
    /// Name of the pass after which verification failed.
    pub pass: String,
    /// Zero-based position of that pass in the pipeline.
    pub index: usize,
    /// The verifier's diagnostics.
    pub errors: Vec<String>,
    /// Outcomes of the passes that completed before the failure,
    /// including the offending pass — so drivers can still print the stat
    /// lines that legacy pipelines would have emitted before dying.
    pub completed: Vec<PassOutcome>,
}

/// Hash of the printed module text — the same structural identity the
/// differential oracle uses for byte-equality checks.
pub fn structural_hash(module: &Module) -> u64 {
    let mut h = DefaultHasher::new();
    print_module(module).hash(&mut h);
    h.finish()
}

/// An ordered pipeline of module passes sharing one analysis manager.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn ModulePass>>,
    /// Verification / change-tracking knobs.
    pub options: PassManagerOptions,
}

impl PassManager {
    /// An empty manager with default options.
    pub fn new() -> Self {
        PassManager::default()
    }

    /// An empty manager with the given options.
    pub fn with_options(options: PassManagerOptions) -> Self {
        PassManager {
            passes: Vec::new(),
            options,
        }
    }

    /// Appends a pass to the pipeline.
    pub fn add(&mut self, pass: Box<dyn ModulePass>) {
        self.passes.push(pass);
    }

    /// Appends every pass in `passes` (the shape the registry builds).
    pub fn add_all(&mut self, passes: Vec<Box<dyn ModulePass>>) {
        self.passes.extend(passes);
    }

    /// Number of passes in the pipeline.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs the pipeline over `module`. After each pass the analysis
    /// manager applies the pass's preservation contract; under
    /// `verify_each` the module is verified and a failure aborts with
    /// [`PassError`].
    pub fn run(
        &self,
        module: &mut Module,
        am: &mut AnalysisManager,
        cx: &mut PassContext,
    ) -> Result<RunReport, PassError> {
        let mut outcomes = Vec::with_capacity(self.passes.len());
        for (index, pass) in self.passes.iter().enumerate() {
            let before_hash = self.options.print_changed.then(|| structural_hash(module));
            let start = Instant::now();
            let preserved = pass.run(module, am, cx);
            let wall_ns = start.elapsed().as_nanos();
            am.invalidate(module, &preserved);

            let (lines, rolag, driver) = cx.drain();
            let mut changed = None;
            let mut ir_after = None;
            if let Some(before) = before_hash {
                let text = print_module(module);
                let mut h = DefaultHasher::new();
                text.hash(&mut h);
                let is_changed = h.finish() != before;
                changed = Some(is_changed);
                if is_changed {
                    ir_after = Some(text);
                }
            }
            outcomes.push(PassOutcome {
                name: pass.name(),
                wall_ns,
                lines,
                rolag,
                driver,
                changed,
                ir_after,
            });

            if self.options.verify_each {
                if let Err(errors) = verify_module(module) {
                    return Err(PassError {
                        pass: pass.name(),
                        index,
                        errors: errors.iter().map(|e| e.to_string()).collect(),
                        completed: outcomes,
                    });
                }
            }
        }
        Ok(RunReport {
            outcomes,
            cache: am.stats,
        })
    }
}
