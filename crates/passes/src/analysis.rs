//! The cached analysis manager and the preserved-analysis contract.
//!
//! Analyses are cached keyed by the **structural revision** of the owning
//! [`Function`](rolag_ir::Function) (see `Function::revision`): any arena
//! mutation takes a globally fresh revision, so a stale entry can never be
//! served for a new state. On top of that automatic safety net sits the
//! explicit contract: after every pass the manager is told which analyses
//! the pass *preserved* ([`PreservedAnalyses`]). Preserved per-function
//! entries are re-keyed to the post-pass revisions (the pass asserts "I
//! mutated the function but this analysis still describes it" — e.g. CSE
//! removes non-terminator instructions, leaving the CFG and therefore the
//! dominator tree and loop forest untouched); everything else is dropped.

use std::collections::HashMap;
use std::fmt;
use std::ops::AddAssign;
use std::rc::Rc;

use rolag_analysis::{find_loops, resolve_pointer, BlockDeps, DomTree, Loop, PtrInfo};
use rolag_ir::{BlockId, Effects, FuncId, Module, ValueId};
use rolag_transforms::effects_table;

/// The analyses the manager caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisKind {
    /// CFG dominator tree ([`DomTree`]), per function.
    Dominators,
    /// Natural-loop forest ([`find_loops`]), per function.
    Loops,
    /// Block dependence graph ([`BlockDeps`]), per (function, block).
    DepGraph,
    /// Base+offset pointer resolution ([`resolve_pointer`]), per
    /// (function, value).
    Alias,
    /// Module-wide call-effects table ([`effects_table`]), indexed by
    /// [`FuncId`].
    EffectsTable,
}

impl AnalysisKind {
    /// Every cached analysis kind.
    pub const ALL: [AnalysisKind; 5] = [
        AnalysisKind::Dominators,
        AnalysisKind::Loops,
        AnalysisKind::DepGraph,
        AnalysisKind::Alias,
        AnalysisKind::EffectsTable,
    ];

    fn bit(self) -> u8 {
        1 << (self as u8)
    }

    /// Stable label, used in `--stats` output and CSV dumps.
    pub fn name(self) -> &'static str {
        match self {
            AnalysisKind::Dominators => "dom",
            AnalysisKind::Loops => "loops",
            AnalysisKind::DepGraph => "deps",
            AnalysisKind::Alias => "alias",
            AnalysisKind::EffectsTable => "effects",
        }
    }
}

/// What a pass kept valid. Returned by every pass run; the manager uses it
/// to decide between re-keying and dropping cache entries.
///
/// The contract is about *content*, not about whether the pass happened to
/// change anything: a pass may only include an analysis when, for every
/// function it might have touched, recomputing the analysis now would
/// yield the same result the cache holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreservedAnalyses {
    mask: u8,
}

impl PreservedAnalyses {
    /// Nothing survives (the conservative default for transforms that
    /// restructure the CFG).
    pub fn none() -> Self {
        PreservedAnalyses { mask: 0 }
    }

    /// Everything survives (for analyses-only passes and no-op runs).
    pub fn all() -> Self {
        let mut mask = 0;
        for kind in AnalysisKind::ALL {
            mask |= kind.bit();
        }
        PreservedAnalyses { mask }
    }

    /// Adds `kind` to the preserved set.
    pub fn preserve(mut self, kind: AnalysisKind) -> Self {
        self.mask |= kind.bit();
        self
    }

    /// Whether `kind` is preserved.
    pub fn preserves(&self, kind: AnalysisKind) -> bool {
        self.mask & kind.bit() != 0
    }

    /// Set intersection: what survives both passes.
    pub fn intersect(self, other: Self) -> Self {
        PreservedAnalyses {
            mask: self.mask & other.mask,
        }
    }
}

/// Cache-effectiveness counters of the [`AnalysisManager`]. Observability
/// data: surfaced through `rolag-opt --stats` and the bench CSV dumps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisCacheStats {
    /// Dominator trees served from cache.
    pub dom_hits: u64,
    /// Dominator trees computed fresh.
    pub dom_misses: u64,
    /// Loop forests served from cache.
    pub loops_hits: u64,
    /// Loop forests computed fresh.
    pub loops_misses: u64,
    /// Block dependence graphs served from cache.
    pub deps_hits: u64,
    /// Block dependence graphs computed fresh.
    pub deps_misses: u64,
    /// Pointer resolutions served from cache.
    pub alias_hits: u64,
    /// Pointer resolutions computed fresh.
    pub alias_misses: u64,
    /// Effects tables served from cache.
    pub effects_hits: u64,
    /// Effects tables computed fresh.
    pub effects_misses: u64,
}

impl AnalysisCacheStats {
    /// `(counter, value)` rows for CSV dumps, hits/misses interleaved per
    /// analysis kind.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("dom_hits", self.dom_hits),
            ("dom_misses", self.dom_misses),
            ("loops_hits", self.loops_hits),
            ("loops_misses", self.loops_misses),
            ("deps_hits", self.deps_hits),
            ("deps_misses", self.deps_misses),
            ("alias_hits", self.alias_hits),
            ("alias_misses", self.alias_misses),
            ("effects_hits", self.effects_hits),
            ("effects_misses", self.effects_misses),
        ]
    }

    /// `(kind, hits, misses)` triples in [`AnalysisKind::ALL`] order.
    pub fn per_kind(&self) -> Vec<(&'static str, u64, u64)> {
        vec![
            ("dom", self.dom_hits, self.dom_misses),
            ("loops", self.loops_hits, self.loops_misses),
            ("deps", self.deps_hits, self.deps_misses),
            ("alias", self.alias_hits, self.alias_misses),
            ("effects", self.effects_hits, self.effects_misses),
        ]
    }

    /// Total queries served from cache.
    pub fn total_hits(&self) -> u64 {
        self.dom_hits + self.loops_hits + self.deps_hits + self.alias_hits + self.effects_hits
    }

    /// Total queries computed fresh.
    pub fn total_misses(&self) -> u64 {
        self.dom_misses
            + self.loops_misses
            + self.deps_misses
            + self.alias_misses
            + self.effects_misses
    }

    /// Fraction of all analysis queries served from cache, `0.0..=1.0`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_hits() + self.total_misses();
        if total == 0 {
            return 0.0;
        }
        self.total_hits() as f64 / total as f64
    }
}

impl AddAssign for AnalysisCacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.dom_hits += rhs.dom_hits;
        self.dom_misses += rhs.dom_misses;
        self.loops_hits += rhs.loops_hits;
        self.loops_misses += rhs.loops_misses;
        self.deps_hits += rhs.deps_hits;
        self.deps_misses += rhs.deps_misses;
        self.alias_hits += rhs.alias_hits;
        self.alias_misses += rhs.alias_misses;
        self.effects_hits += rhs.effects_hits;
        self.effects_misses += rhs.effects_misses;
    }
}

impl fmt::Display for AnalysisCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}%)",
            self.total_hits(),
            self.total_misses(),
            100.0 * self.hit_rate()
        )
    }
}

/// Caches dominators, loops, dependence graphs, pointer resolutions, and
/// the call-effects table across the passes of one pipeline run.
///
/// Per-function entries carry the revision they were computed at and are
/// only served while the function still has that revision; the
/// module-level effects table is invalidated purely through the
/// [`PreservedAnalyses`] contract (no pass in the registry changes
/// declarations, so in practice it is computed once per run).
#[derive(Default)]
pub struct AnalysisManager {
    dom: HashMap<FuncId, (u64, Rc<DomTree>)>,
    loops: HashMap<FuncId, (u64, Rc<Vec<Loop>>)>,
    deps: HashMap<(FuncId, BlockId), (u64, Rc<BlockDeps>)>,
    alias: HashMap<(FuncId, ValueId), (u64, Rc<PtrInfo>)>,
    effects: Option<Rc<Vec<Effects>>>,
    /// Hit/miss counters, cumulative over the manager's lifetime.
    pub stats: AnalysisCacheStats,
}

impl AnalysisManager {
    /// An empty manager.
    pub fn new() -> Self {
        AnalysisManager::default()
    }

    /// The dominator tree of `id`, computed at most once per revision.
    pub fn dom(&mut self, module: &Module, id: FuncId) -> Rc<DomTree> {
        let rev = module.func(id).revision();
        if let Some((cached_rev, tree)) = self.dom.get(&id) {
            if *cached_rev == rev {
                self.stats.dom_hits += 1;
                debug_assert_eq!(
                    **tree,
                    DomTree::compute(module.func(id)),
                    "stale dominator tree served for `{}` — a pass over-claimed \
                     PreservedAnalyses::Dominators",
                    module.func(id).name
                );
                return Rc::clone(tree);
            }
        }
        self.stats.dom_misses += 1;
        let tree = Rc::new(DomTree::compute(module.func(id)));
        self.dom.insert(id, (rev, Rc::clone(&tree)));
        tree
    }

    /// The natural-loop forest of `id`. Computing it pulls the dominator
    /// tree through the cache as well.
    pub fn loops(&mut self, module: &Module, id: FuncId) -> Rc<Vec<Loop>> {
        let rev = module.func(id).revision();
        if let Some((cached_rev, loops)) = self.loops.get(&id) {
            if *cached_rev == rev {
                self.stats.loops_hits += 1;
                debug_assert_eq!(
                    **loops,
                    find_loops(module.func(id), &DomTree::compute(module.func(id))),
                    "stale loop forest served for `{}` — a pass over-claimed \
                     PreservedAnalyses::Loops",
                    module.func(id).name
                );
                return Rc::clone(loops);
            }
        }
        self.stats.loops_misses += 1;
        let dom = self.dom(module, id);
        let loops = Rc::new(find_loops(module.func(id), &dom));
        self.loops.insert(id, (rev, Rc::clone(&loops)));
        loops
    }

    /// The dependence graph of `block` in `id`.
    pub fn deps(&mut self, module: &Module, id: FuncId, block: BlockId) -> Rc<BlockDeps> {
        let rev = module.func(id).revision();
        if let Some((cached_rev, deps)) = self.deps.get(&(id, block)) {
            if *cached_rev == rev {
                self.stats.deps_hits += 1;
                debug_assert_eq!(
                    **deps,
                    BlockDeps::compute(module, module.func(id), block),
                    "stale dependence graph served for `{}` — a pass over-claimed \
                     PreservedAnalyses::DepGraph",
                    module.func(id).name
                );
                return Rc::clone(deps);
            }
        }
        self.stats.deps_misses += 1;
        let deps = Rc::new(BlockDeps::compute(module, module.func(id), block));
        self.deps.insert((id, block), (rev, Rc::clone(&deps)));
        deps
    }

    /// The base+offset resolution of pointer value `v` in `id`.
    pub fn pointer(&mut self, module: &Module, id: FuncId, v: ValueId) -> Rc<PtrInfo> {
        let rev = module.func(id).revision();
        if let Some((cached_rev, info)) = self.alias.get(&(id, v)) {
            if *cached_rev == rev {
                self.stats.alias_hits += 1;
                debug_assert_eq!(
                    **info,
                    resolve_pointer(module, module.func(id), v),
                    "stale pointer resolution served for `{}` — a pass over-claimed \
                     PreservedAnalyses::Alias",
                    module.func(id).name
                );
                return Rc::clone(info);
            }
        }
        self.stats.alias_misses += 1;
        let info = Rc::new(resolve_pointer(module, module.func(id), v));
        self.alias.insert((id, v), (rev, Rc::clone(&info)));
        info
    }

    /// The module-wide call-effects table, computed once and shared until
    /// a pass declines to preserve [`AnalysisKind::EffectsTable`].
    pub fn effects(&mut self, module: &Module) -> Rc<Vec<Effects>> {
        if let Some(table) = &self.effects {
            self.stats.effects_hits += 1;
            debug_assert_eq!(
                **table,
                effects_table(module),
                "stale effects table served — a pass over-claimed \
                 PreservedAnalyses::EffectsTable"
            );
            return Rc::clone(table);
        }
        self.stats.effects_misses += 1;
        let table = Rc::new(effects_table(module));
        self.effects = Some(Rc::clone(&table));
        table
    }

    /// Verifies every cached entry that would currently be *served* (its
    /// revision matches the function's) against a fresh recomputation,
    /// returning the first divergence as an error message.
    ///
    /// This is the release-mode twin of the hit-path `debug_assert_eq!`
    /// checks: the preserved-contract test primes the cache, runs a pass,
    /// lets [`AnalysisManager::invalidate`] apply its contract, and then
    /// calls this to prove every surviving entry is bit-equal to a
    /// recomputation. Entries whose revision no longer matches are skipped
    /// — the revision guard means they can never be served.
    pub fn verify_cached(&self, module: &Module) -> Result<(), String> {
        let nfuncs = module.num_funcs();
        for (&id, (rev, tree)) in &self.dom {
            if id.index() >= nfuncs || module.func(id).revision() != *rev {
                continue;
            }
            if **tree != DomTree::compute(module.func(id)) {
                return Err(format!(
                    "dominator tree cached for `{}` diverges from recomputation",
                    module.func(id).name
                ));
            }
        }
        for (&id, (rev, loops)) in &self.loops {
            if id.index() >= nfuncs || module.func(id).revision() != *rev {
                continue;
            }
            let fresh = find_loops(module.func(id), &DomTree::compute(module.func(id)));
            if **loops != fresh {
                return Err(format!(
                    "loop forest cached for `{}` diverges from recomputation",
                    module.func(id).name
                ));
            }
        }
        for (&(id, block), (rev, deps)) in &self.deps {
            if id.index() >= nfuncs
                || module.func(id).revision() != *rev
                || block.index() >= module.func(id).num_blocks()
            {
                continue;
            }
            if **deps != BlockDeps::compute(module, module.func(id), block) {
                return Err(format!(
                    "dependence graph cached for `{}` block {} diverges from recomputation",
                    module.func(id).name,
                    block.index()
                ));
            }
        }
        for (&(id, v), (rev, info)) in &self.alias {
            if id.index() >= nfuncs
                || module.func(id).revision() != *rev
                || v.index() >= module.func(id).num_values()
            {
                continue;
            }
            if **info != resolve_pointer(module, module.func(id), v) {
                return Err(format!(
                    "pointer resolution cached for `{}` value {} diverges from recomputation",
                    module.func(id).name,
                    v.index()
                ));
            }
        }
        if let Some(table) = &self.effects {
            if **table != effects_table(module) {
                return Err("effects table cache diverges from recomputation".into());
            }
        }
        Ok(())
    }

    /// How many per-function/per-key entries are currently cached, per
    /// analysis kind (`dom`, `loops`, `deps`, `alias`, `effects`). Test
    /// observability: the contract test uses it to prove a preserved
    /// analysis actually *survived* invalidation rather than being
    /// silently dropped.
    pub fn cached_counts(&self) -> [(&'static str, usize); 5] {
        [
            ("dom", self.dom.len()),
            ("loops", self.loops.len()),
            ("deps", self.deps.len()),
            ("alias", self.alias.len()),
            ("effects", usize::from(self.effects.is_some())),
        ]
    }

    /// Applies a pass's [`PreservedAnalyses`] contract: preserved
    /// per-function entries are re-keyed to the function's current
    /// revision (so the next query hits); everything else is dropped.
    /// Entries for function ids no longer in the module are dropped
    /// unconditionally.
    pub fn invalidate(&mut self, module: &Module, preserved: &PreservedAnalyses) {
        let nfuncs = module.num_funcs();
        let valid = |id: FuncId| id.index() < nfuncs;
        if preserved.preserves(AnalysisKind::Dominators) {
            self.dom.retain(|&id, entry| {
                let keep = valid(id);
                if keep {
                    entry.0 = module.func(id).revision();
                }
                keep
            });
        } else {
            self.dom.clear();
        }
        if preserved.preserves(AnalysisKind::Loops) {
            self.loops.retain(|&id, entry| {
                let keep = valid(id);
                if keep {
                    entry.0 = module.func(id).revision();
                }
                keep
            });
        } else {
            self.loops.clear();
        }
        if preserved.preserves(AnalysisKind::DepGraph) {
            self.deps.retain(|&(id, block), entry| {
                let keep = valid(id) && block.index() < module.func(id).num_blocks();
                if keep {
                    entry.0 = module.func(id).revision();
                }
                keep
            });
        } else {
            self.deps.clear();
        }
        if preserved.preserves(AnalysisKind::Alias) {
            self.alias.retain(|&(id, v), entry| {
                let keep = valid(id) && v.index() < module.func(id).num_values();
                if keep {
                    entry.0 = module.func(id).revision();
                }
                keep
            });
        } else {
            self.alias.clear();
        }
        if !preserved.preserves(AnalysisKind::EffectsTable) {
            self.effects = None;
        }
    }

    /// Applies one function's [`PreservedAnalyses`] contract without
    /// touching any other function's entries — the per-function
    /// counterpart of [`AnalysisManager::invalidate`]. A
    /// [`FunctionPass`](crate::FunctionPass) only mutates the definition
    /// it was handed, so dropping just that function's entries keeps the
    /// neighbours' cached dominator trees and dependence graphs serving
    /// hits instead of paying for one changed function with a module-wide
    /// flush.
    ///
    /// Preserved per-function entries keyed by `id` are re-keyed to its
    /// current revision; non-preserved ones are dropped for `id` only.
    /// The module-wide effects table has no per-function slice, so
    /// declining to preserve [`AnalysisKind::EffectsTable`] drops it
    /// outright.
    pub fn invalidate_function(
        &mut self,
        module: &Module,
        id: FuncId,
        preserved: &PreservedAnalyses,
    ) {
        let rev = module.func(id).revision();
        if preserved.preserves(AnalysisKind::Dominators) {
            if let Some(entry) = self.dom.get_mut(&id) {
                entry.0 = rev;
            }
        } else {
            self.dom.remove(&id);
        }
        if preserved.preserves(AnalysisKind::Loops) {
            if let Some(entry) = self.loops.get_mut(&id) {
                entry.0 = rev;
            }
        } else {
            self.loops.remove(&id);
        }
        if preserved.preserves(AnalysisKind::DepGraph) {
            let nblocks = module.func(id).num_blocks();
            self.deps.retain(|&(f, block), entry| {
                if f != id {
                    return true;
                }
                let keep = block.index() < nblocks;
                if keep {
                    entry.0 = rev;
                }
                keep
            });
        } else {
            self.deps.retain(|&(f, _), _| f != id);
        }
        if preserved.preserves(AnalysisKind::Alias) {
            let nvalues = module.func(id).num_values();
            self.alias.retain(|&(f, v), entry| {
                if f != id {
                    return true;
                }
                let keep = v.index() < nvalues;
                if keep {
                    entry.0 = rev;
                }
                keep
            });
        } else {
            self.alias.retain(|&(f, _), _| f != id);
        }
        if !preserved.preserves(AnalysisKind::EffectsTable) {
            self.effects = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    fn sample() -> Module {
        parse_module(
            "module \"t\"\nfunc @f(i32 %p0) -> i32 {\nentry:\n  %c = icmp slt %p0, i32 4\n  condbr %c, body, exit\nbody:\n  br exit\nexit:\n  %r = phi i32 [ i32 0, entry ], [ i32 1, body ]\n  ret %r\n}\n",
        )
        .unwrap()
    }

    #[test]
    fn preserved_set_algebra() {
        let none = PreservedAnalyses::none();
        let all = PreservedAnalyses::all();
        for kind in AnalysisKind::ALL {
            assert!(!none.preserves(kind));
            assert!(all.preserves(kind));
        }
        let cfg = PreservedAnalyses::none()
            .preserve(AnalysisKind::Dominators)
            .preserve(AnalysisKind::Loops);
        assert!(cfg.preserves(AnalysisKind::Loops));
        assert!(!cfg.preserves(AnalysisKind::Alias));
        let both = cfg.intersect(PreservedAnalyses::all().preserve(AnalysisKind::Dominators));
        assert!(both.preserves(AnalysisKind::Dominators));
        assert_eq!(all.intersect(none), none);
    }

    #[test]
    fn caches_hit_until_the_function_mutates() {
        let mut m = sample();
        let id = m.func_by_name("f").unwrap();
        let mut am = AnalysisManager::new();

        let d1 = am.dom(&m, id);
        let d2 = am.dom(&m, id);
        assert!(Rc::ptr_eq(&d1, &d2));
        assert_eq!((am.stats.dom_hits, am.stats.dom_misses), (1, 1));

        am.loops(&m, id);
        am.loops(&m, id);
        assert_eq!((am.stats.loops_hits, am.stats.loops_misses), (1, 1));

        // Any structural mutation invalidates automatically via revision.
        m.func_mut(id).add_block("late");
        am.dom(&m, id);
        assert_eq!(am.stats.dom_misses, 2);
    }

    #[test]
    fn invalidate_rekeys_preserved_and_drops_the_rest() {
        let mut m = sample();
        let id = m.func_by_name("f").unwrap();
        let mut am = AnalysisManager::new();
        am.dom(&m, id);
        am.effects(&m);

        // A pass mutates the function but claims the CFG survived.
        m.func_mut(id).replace_all_uses(
            rolag_ir::ValueId::from_index(0),
            rolag_ir::ValueId::from_index(0),
        );
        let preserved = PreservedAnalyses::none()
            .preserve(AnalysisKind::Dominators)
            .preserve(AnalysisKind::EffectsTable);
        am.invalidate(&m, &preserved);
        am.dom(&m, id);
        am.effects(&m);
        assert_eq!(am.stats.dom_hits, 1, "re-keyed entry must hit");
        assert_eq!(am.stats.effects_hits, 1);

        // Not preserved: dropped even without mutation.
        am.invalidate(&m, &PreservedAnalyses::none());
        am.dom(&m, id);
        assert_eq!(am.stats.dom_misses, 2);
    }

    #[test]
    fn deps_and_alias_queries_cache_per_key() {
        let m = sample();
        let id = m.func_by_name("f").unwrap();
        let f = m.func(id);
        let entry = f.entry_block();
        let mut am = AnalysisManager::new();
        am.deps(&m, id, entry);
        am.deps(&m, id, entry);
        assert_eq!((am.stats.deps_hits, am.stats.deps_misses), (1, 1));
        let v = f.param(0);
        am.pointer(&m, id, v);
        am.pointer(&m, id, v);
        assert_eq!((am.stats.alias_hits, am.stats.alias_misses), (1, 1));
    }

    #[test]
    fn cache_stats_rows_and_rates() {
        let s = AnalysisCacheStats {
            dom_hits: 3,
            dom_misses: 1,
            ..Default::default()
        };
        assert_eq!(s.rows().len(), 10);
        assert_eq!(s.per_kind().len(), 5);
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
        let mut t = s;
        t += s;
        assert_eq!(t.dom_hits, 6);
    }
}
