//! Textual pipeline specifications.
//!
//! A spec is a comma-separated list of pass names, each optionally carrying
//! a parameter in angle brackets — the grammar used by `rolag-opt --passes`:
//!
//! ```text
//! unroll<4>,cleanup,rolag,flatten,cleanup
//! ```
//!
//! Parsing tracks byte offsets so errors render as `file:line:col`-style
//! diagnostics with a caret pointing at the offending character; see
//! [`SpecError::render`].

use std::fmt;

/// One element of a pipeline spec: a pass name plus an optional `<param>`,
/// with the byte offsets where each appeared in the source string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecElement {
    /// The pass name, e.g. `unroll`.
    pub name: String,
    /// The text between the angle brackets, if any.
    pub param: Option<String>,
    /// Byte offset of the first character of `name` in the spec string.
    pub offset: usize,
    /// Byte offset of the first character of `param`, if present.
    pub param_offset: Option<usize>,
}

impl SpecElement {
    /// Convenience for tests and programmatic construction; offsets are
    /// zeroed.
    pub fn new(name: &str, param: Option<&str>) -> Self {
        SpecElement {
            name: name.to_string(),
            param: param.map(str::to_string),
            offset: 0,
            param_offset: None,
        }
    }
}

impl fmt::Display for SpecElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.param {
            Some(p) => write!(f, "{}<{}>", self.name, p),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A parsed pipeline specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineSpec {
    /// The elements in execution order.
    pub elements: Vec<SpecElement>,
}

impl PipelineSpec {
    /// Parses `text`. Whitespace around elements is ignored; the element
    /// grammar is `name` or `name<param>` where `name` is
    /// `[A-Za-z0-9_-]+` and `param` is any run of characters other than
    /// `>` or `,`.
    pub fn parse(text: &str) -> Result<PipelineSpec, SpecError> {
        let bytes = text.as_bytes();
        let mut elements = Vec::new();
        let mut pos = 0usize;
        loop {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            let start = pos;
            while pos < bytes.len() && is_name_byte(bytes[pos]) {
                pos += 1;
            }
            if pos == start {
                let what = if pos >= bytes.len() {
                    if elements.is_empty() {
                        "empty pipeline spec"
                    } else {
                        "trailing comma in pipeline spec"
                    }
                } else if bytes[pos] == b',' {
                    "empty pipeline element"
                } else {
                    "expected a pass name"
                };
                return Err(SpecError {
                    offset: pos.min(text.len()),
                    message: what.to_string(),
                });
            }
            let name = text[start..pos].to_string();
            let mut param = None;
            let mut param_offset = None;
            if pos < bytes.len() && bytes[pos] == b'<' {
                let open = pos;
                pos += 1;
                let pstart = pos;
                while pos < bytes.len() && bytes[pos] != b'>' && bytes[pos] != b',' {
                    pos += 1;
                }
                if pos >= bytes.len() || bytes[pos] != b'>' {
                    return Err(SpecError {
                        offset: open,
                        message: format!("unterminated parameter for pass `{name}`: missing `>`"),
                    });
                }
                param = Some(text[pstart..pos].to_string());
                param_offset = Some(pstart);
                pos += 1; // consume '>'
            }
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            elements.push(SpecElement {
                name,
                param,
                offset: start,
                param_offset,
            });
            if pos >= bytes.len() {
                break;
            }
            if bytes[pos] != b',' {
                return Err(SpecError {
                    offset: pos,
                    message: format!(
                        "unexpected character `{}` after pipeline element",
                        &text[pos..pos + utf8_len(bytes[pos])]
                    ),
                });
            }
            pos += 1; // consume ','
        }
        Ok(PipelineSpec { elements })
    }
}

impl fmt::Display for PipelineSpec {
    /// The canonical form: elements joined with `,`, no whitespace.
    /// Parsing the rendered string yields an equal spec (modulo offsets).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.elements.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-'
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        b if b < 0x80 => 1,
        b if b >= 0xf0 => 4,
        b if b >= 0xe0 => 3,
        _ => 2,
    }
}

/// A pipeline-spec error, anchored to a byte offset in the spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Byte offset into the spec string where the problem starts.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl SpecError {
    /// Renders a compiler-style diagnostic:
    ///
    /// ```text
    /// <passes>:1:9: error: unknown pass `unrol`
    ///   unroll<4>,unrol,cleanup
    ///             ^
    /// ```
    ///
    /// `origin` names the source of the spec (e.g. `<passes>` for the
    /// command line). Specs are single-line, so the line number is
    /// always 1 and the column is the character count up to `offset`.
    pub fn render(&self, origin: &str, spec: &str) -> String {
        let col = spec
            .char_indices()
            .take_while(|&(i, _)| i < self.offset)
            .count()
            + 1;
        let caret_pad: String = " ".repeat(col - 1);
        format!(
            "{origin}:1:{col}: error: {msg}\n  {spec}\n  {caret_pad}^",
            msg = self.message
        )
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at offset {})", self.message, self.offset)
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(spec: &PipelineSpec) -> Vec<(&str, Option<&str>)> {
        spec.elements
            .iter()
            .map(|e| (e.name.as_str(), e.param.as_deref()))
            .collect()
    }

    #[test]
    fn parses_plain_and_parameterised_elements() {
        let spec = PipelineSpec::parse("unroll<4>, cleanup ,rolag").unwrap();
        assert_eq!(
            names(&spec),
            vec![("unroll", Some("4")), ("cleanup", None), ("rolag", None)]
        );
        assert_eq!(spec.elements[0].offset, 0);
        assert_eq!(spec.elements[0].param_offset, Some(7));
        assert_eq!(spec.elements[1].offset, 11);
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "unroll<4>,cleanup,rolag,flatten,cleanup",
            "cse",
            "rolag-ext",
        ] {
            let spec = PipelineSpec::parse(text).unwrap();
            assert_eq!(spec.to_string(), text);
            let again = PipelineSpec::parse(&spec.to_string()).unwrap();
            assert_eq!(names(&again), names(&spec));
        }
        // Non-canonical input renders canonically and re-parses equal.
        let spec = PipelineSpec::parse("  unroll<4> ,  cse ").unwrap();
        assert_eq!(spec.to_string(), "unroll<4>,cse");
    }

    #[test]
    fn rejects_malformed_specs() {
        let err = PipelineSpec::parse("").unwrap_err();
        assert!(err.message.contains("empty pipeline spec"));

        let err = PipelineSpec::parse("cse,").unwrap_err();
        assert!(err.message.contains("trailing comma"), "{}", err.message);
        assert_eq!(err.offset, 4);

        let err = PipelineSpec::parse("cse,,dce").unwrap_err();
        assert!(err.message.contains("empty pipeline element"));

        let err = PipelineSpec::parse("unroll<4,cse").unwrap_err();
        assert!(err.message.contains("missing `>`"), "{}", err.message);
        assert_eq!(err.offset, 6);

        let err = PipelineSpec::parse("unroll<4>x,cse").unwrap_err();
        assert!(err.message.contains("unexpected character `x`"));
        assert_eq!(err.offset, 9);
    }

    #[test]
    fn render_points_at_the_column() {
        let spec = "unroll<4>,unrol,cleanup";
        let err = SpecError {
            offset: 10,
            message: "unknown pass `unrol`".into(),
        };
        let diag = err.render("<passes>", spec);
        assert_eq!(
            diag,
            "<passes>:1:11: error: unknown pass `unrol`\n  unroll<4>,unrol,cleanup\n            ^"
        );
    }
}
