//! The pass registry: names → pass constructors, plus pipeline building
//! from parsed specs with pointed diagnostics.
//!
//! The registry is the single source of truth for what passes exist —
//! `rolag-opt --help`, `--list-passes`, and the docs drift-guard test all
//! render from [`PassRegistry::builtin`], so the CLI surface cannot
//! silently diverge from the implementation.

use std::sync::OnceLock;

use rolag::RolagOptions;

use crate::manager::{ForEach, ModulePass};
use crate::ports::{
    CleanupPass, CsePass, FlattenPass, RerollPass, RolagEngine, RolagPass, UnrollPass,
};
use crate::spec::{PipelineSpec, SpecError};

/// Constructor signature stored in the registry: raw parameter text in,
/// pass instance (or a human-readable complaint) out.
pub type BuildFn = fn(Option<&str>) -> Result<Box<dyn ModulePass>, String>;

/// One registered pass.
pub struct PassInfo {
    /// The name used in pipeline specs and as the legacy `-name` flag.
    pub name: &'static str,
    /// Placeholder for the parameter, when the pass takes one (e.g. `N`
    /// for `unroll<N>`).
    pub param: Option<&'static str>,
    /// One-line description for `--help` and the docs.
    pub summary: &'static str,
    build: BuildFn,
}

impl PassInfo {
    /// The name as it appears in a spec, with the parameter placeholder:
    /// `unroll<N>` or `cse`.
    pub fn syntax(&self) -> String {
        match self.param {
            Some(p) => format!("{}<{}>", self.name, p),
            None => self.name.to_string(),
        }
    }

    /// Instantiates the pass with the given raw parameter text.
    pub fn build(&self, param: Option<&str>) -> Result<Box<dyn ModulePass>, String> {
        (self.build)(param)
    }
}

fn no_param(name: &'static str, param: Option<&str>) -> Result<(), String> {
    match param {
        Some(_) => Err(format!("pass `{name}` takes no parameter")),
        None => Ok(()),
    }
}

fn build_unroll(param: Option<&str>) -> Result<Box<dyn ModulePass>, String> {
    let text = param.ok_or("pass `unroll` needs a factor, e.g. `unroll<4>`")?;
    let factor: u32 = text
        .trim()
        .parse()
        .map_err(|_| format!("bad unroll factor `{text}`: expected an integer"))?;
    if factor < 2 {
        return Err(format!("unroll factor must be at least 2, got {factor}"));
    }
    Ok(Box::new(UnrollPass { factor }))
}

fn build_search(param: Option<&str>) -> Result<Box<dyn ModulePass>, String> {
    let width: usize = match param {
        Some(text) => text
            .trim()
            .parse()
            .map_err(|_| format!("bad beam width `{text}`: expected an integer"))?,
        None => 4,
    };
    if width == 0 {
        return Err("beam width must be at least 1".to_string());
    }
    Ok(Box::new(RolagPass::with(
        format!("rolag-search<{width}>"),
        RolagOptions::searched(width),
        RolagEngine::Incremental,
    )))
}

macro_rules! simple {
    ($name:literal, $make:expr) => {
        |param| {
            no_param($name, param)?;
            Ok(Box::new($make) as Box<dyn ModulePass>)
        }
    };
}

/// The registered passes, lookup, and pipeline construction.
pub struct PassRegistry {
    infos: Vec<PassInfo>,
}

impl PassRegistry {
    /// The built-in registry (shared, immutable).
    pub fn builtin() -> &'static PassRegistry {
        static REGISTRY: OnceLock<PassRegistry> = OnceLock::new();
        REGISTRY.get_or_init(PassRegistry::new_builtin)
    }

    fn new_builtin() -> PassRegistry {
        PassRegistry {
            infos: vec![
                PassInfo {
                    name: "rolag",
                    param: None,
                    summary: "loop rolling (the paper's technique)",
                    build: simple!("rolag", RolagPass::new()),
                },
                PassInfo {
                    name: "rolag-ext",
                    param: None,
                    summary: "loop rolling with the future-work extensions",
                    build: simple!(
                        "rolag-ext",
                        RolagPass::with(
                            "rolag-ext",
                            RolagOptions::with_extensions(),
                            RolagEngine::Incremental
                        )
                    ),
                },
                PassInfo {
                    name: "no-special",
                    param: None,
                    summary: "loop rolling with special nodes disabled",
                    build: simple!(
                        "no-special",
                        RolagPass::with(
                            "no-special",
                            RolagOptions::no_special_nodes(),
                            RolagEngine::Incremental
                        )
                    ),
                },
                PassInfo {
                    name: "rolag-rescan",
                    param: None,
                    summary: "loop rolling via the non-incremental full-rescan engine",
                    build: simple!(
                        "rolag-rescan",
                        RolagPass::with(
                            "rolag-rescan",
                            RolagOptions::default(),
                            RolagEngine::FullRescan
                        )
                    ),
                },
                PassInfo {
                    name: "tv",
                    param: None,
                    summary: "loop rolling with per-rewrite translation validation",
                    build: simple!(
                        "tv",
                        RolagPass::with("tv", RolagOptions::validated(), RolagEngine::Incremental)
                    ),
                },
                PassInfo {
                    name: "rolag-search",
                    param: Some("k"),
                    summary:
                        "validator-gated beam search over rolling alignments (width k, default 4)",
                    build: build_search,
                },
                PassInfo {
                    name: "reroll",
                    param: None,
                    summary: "LLVM-style loop rerolling (the baseline)",
                    build: simple!("reroll", RerollPass),
                },
                PassInfo {
                    name: "unroll",
                    param: Some("N"),
                    summary: "partially unroll counted loops by N (N >= 2)",
                    build: build_unroll,
                },
                PassInfo {
                    name: "cse",
                    param: None,
                    summary: "local common-subexpression elimination",
                    build: simple!("cse", ForEach(CsePass)),
                },
                PassInfo {
                    name: "cleanup",
                    param: None,
                    summary: "constant folding + DCE to a fixed point",
                    build: simple!("cleanup", ForEach(CleanupPass::new())),
                },
                PassInfo {
                    name: "simplify",
                    param: None,
                    summary: "alias of cleanup (legacy -simplify flag)",
                    build: simple!("simplify", ForEach(CleanupPass::aliased("simplify"))),
                },
                PassInfo {
                    name: "dce",
                    param: None,
                    summary: "alias of cleanup (legacy -dce flag)",
                    build: simple!("dce", ForEach(CleanupPass::aliased("dce"))),
                },
                PassInfo {
                    name: "flatten",
                    param: None,
                    summary: "flatten RoLAG's nested loops",
                    build: simple!("flatten", FlattenPass),
                },
            ],
        }
    }

    /// Looks up a pass by name.
    pub fn find(&self, name: &str) -> Option<&PassInfo> {
        self.infos.iter().find(|i| i.name == name)
    }

    /// Every registered pass, in registration order.
    pub fn infos(&self) -> &[PassInfo] {
        &self.infos
    }

    /// Every registered pass name, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.infos.iter().map(|i| i.name).collect()
    }

    /// Instantiates the passes of a parsed spec. Unknown names and bad
    /// parameters come back as [`SpecError`]s anchored to the offending
    /// element (or its parameter), ready for
    /// [`SpecError::render`]-style diagnostics.
    pub fn build_pipeline(
        &self,
        spec: &PipelineSpec,
    ) -> Result<Vec<Box<dyn ModulePass>>, SpecError> {
        let mut passes = Vec::with_capacity(spec.elements.len());
        for elem in &spec.elements {
            let info = self.find(&elem.name).ok_or_else(|| SpecError {
                offset: elem.offset,
                message: format!("unknown pass `{}`{}", elem.name, suggest(self, &elem.name)),
            })?;
            let pass = info
                .build(elem.param.as_deref())
                .map_err(|message| SpecError {
                    offset: elem.param_offset.unwrap_or(elem.offset),
                    message,
                })?;
            passes.push(pass);
        }
        Ok(passes)
    }

    /// Parses `text` and instantiates the pipeline in one step.
    pub fn parse_pipeline(&self, text: &str) -> Result<Vec<Box<dyn ModulePass>>, SpecError> {
        let spec = PipelineSpec::parse(text)?;
        self.build_pipeline(&spec)
    }

    /// The pass table for `--help`: one `  name<param>  summary` line per
    /// pass, aligned.
    pub fn help_passes(&self) -> String {
        let width = self
            .infos
            .iter()
            .map(|i| i.syntax().len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for info in &self.infos {
            out.push_str(&format!(
                "  {syntax:<width$}  {summary}\n",
                syntax = info.syntax(),
                summary = info.summary
            ));
        }
        out
    }
}

/// A "did you mean" hint for near-miss pass names (edit distance ≤ 2).
fn suggest(registry: &PassRegistry, name: &str) -> String {
    let mut best: Option<(usize, &str)> = None;
    for info in registry.infos() {
        let d = edit_distance(name, info.name);
        if d <= 2 && best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, info.name));
        }
    }
    match best {
        Some((_, candidate)) => format!("; did you mean `{candidate}`?"),
        None => String::new(),
    }
}

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_err(text: &str) -> SpecError {
        match PassRegistry::builtin().parse_pipeline(text) {
            Err(e) => e,
            Ok(_) => panic!("`{text}` should not parse"),
        }
    }

    #[test]
    fn builtin_registry_builds_every_pass() {
        let reg = PassRegistry::builtin();
        for info in reg.infos() {
            let param = info.param.map(|_| "4");
            let pass = info.build(param).expect("builds");
            let name = pass.name();
            assert!(
                name.starts_with(info.name),
                "pass name {name} should start with registry name {}",
                info.name
            );
        }
    }

    #[test]
    fn pipeline_construction_and_diagnostics() {
        let reg = PassRegistry::builtin();
        let passes = reg
            .parse_pipeline("unroll<4>,cleanup,rolag,flatten,cleanup")
            .unwrap();
        assert_eq!(passes.len(), 5);
        assert_eq!(passes[0].name(), "unroll<4>");

        let err = parse_err("unroll<4>,unrol");
        assert_eq!(err.offset, 10);
        assert!(err.message.contains("unknown pass `unrol`"));
        assert!(err.message.contains("did you mean `unroll`?"));

        let err = parse_err("unroll<0>");
        assert!(err.message.contains("must be at least 2"));
        assert_eq!(err.offset, 7, "points at the parameter");

        let err = parse_err("unroll<x>");
        assert!(err.message.contains("bad unroll factor `x`"));

        let err = parse_err("unroll");
        assert!(err.message.contains("needs a factor"));

        let err = parse_err("cse<3>");
        assert!(err.message.contains("takes no parameter"));
    }

    #[test]
    fn search_pass_defaults_and_diagnostics() {
        let reg = PassRegistry::builtin();
        let passes = reg.parse_pipeline("rolag-search").unwrap();
        assert_eq!(passes[0].name(), "rolag-search<4>");
        let passes = reg.parse_pipeline("rolag-search<2>").unwrap();
        assert_eq!(passes[0].name(), "rolag-search<2>");

        let err = parse_err("rolag-search<0>");
        assert!(err.message.contains("at least 1"));
        let err = parse_err("rolag-search<wide>");
        assert!(err.message.contains("bad beam width `wide`"));
    }

    #[test]
    fn help_table_lists_every_pass() {
        let help = PassRegistry::builtin().help_passes();
        for info in PassRegistry::builtin().infos() {
            assert!(help.contains(&info.syntax()), "missing {}", info.name);
            assert!(help.contains(info.summary));
        }
        assert!(help.contains("unroll<N>"));
    }
}
