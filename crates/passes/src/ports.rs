//! The built-in passes, ported onto the pass-manager traits.
//!
//! Every port wraps (or replicates instruction-for-instruction) the legacy
//! `*_module` entry point it replaces, so a pipeline run through the
//! manager produces byte-identical IR and stat lines to the old
//! hand-rolled drivers. Where a legacy entry point recomputed an analysis
//! the manager caches (unroll's loop forests, cleanup's effects table),
//! the port takes the cached copy instead — the differential tests in
//! `tests/pipeline_spec.rs` pin the equivalence.
//!
//! Preservation contracts (derived from the transform sources):
//!
//! | pass                    | preserves                          |
//! |-------------------------|------------------------------------|
//! | `cse`                   | dominators, loops, effects table   |
//! | `cleanup`/`simplify`/`dce` | effects table                   |
//! | `unroll`, `flatten`, `reroll`, `rolag*` | effects table      |
//!
//! CSE only removes non-terminator instructions, so the CFG — and with it
//! the dominator tree and loop forest — survives. Cleanup's DCE seals
//! unreachable blocks (a CFG edit), so it keeps only the effects table.
//! No registered pass adds, removes, or re-annotates function
//! declarations, so the effects table survives everything.

use rolag::{roll_module, roll_module_full_rescan, roll_module_par, DriverOptions, RolagOptions};
use rolag_ir::{FuncId, Module};
use rolag_reroll::reroll_module;
use rolag_transforms::{
    cleanup_in_place, cse_block, flatten_module, unroll_loops_with, UnrollOutcome,
};

use crate::analysis::{AnalysisKind, AnalysisManager, PreservedAnalyses};
use crate::manager::{FuncResult, FunctionPass, ModulePass, PassContext};

/// Block-local common-subexpression elimination
/// ([`rolag_transforms::cse_module`] per function).
pub struct CsePass;

impl FunctionPass for CsePass {
    fn name(&self) -> String {
        "cse".into()
    }

    fn run_on_function(
        &self,
        module: &mut Module,
        id: FuncId,
        _am: &mut AnalysisManager,
        _cx: &mut PassContext,
    ) -> FuncResult {
        // Same shape as cse_module: detach a clone, CSE block by block
        // against the unmodified module, swap it back in.
        let mut func = module.func(id).clone();
        let mut removed = 0u64;
        for block in func.block_ids().collect::<Vec<_>>() {
            removed += cse_block(module, &mut func, block) as u64;
        }
        module.replace_func(id, func);
        FuncResult {
            preserved: PreservedAnalyses::none()
                .preserve(AnalysisKind::Dominators)
                .preserve(AnalysisKind::Loops)
                .preserve(AnalysisKind::EffectsTable),
            changed: removed,
        }
    }

    fn summarize(&self, changed: u64, cx: &mut PassContext) {
        cx.note(format!("cse: {changed} instructions removed"));
    }
}

/// Constant folding + DCE to a fixed point
/// ([`rolag_transforms::cleanup_module`] per function), with the call
/// effects table served from the analysis cache instead of recomputed per
/// invocation. Registered as `cleanup`, with `simplify` and `dce` as the
/// legacy-flag aliases.
pub struct CleanupPass {
    name: &'static str,
}

impl CleanupPass {
    /// The canonical `cleanup` pass.
    pub fn new() -> Self {
        CleanupPass { name: "cleanup" }
    }

    /// The same pass under a legacy alias (`simplify` or `dce`).
    pub fn aliased(name: &'static str) -> Self {
        CleanupPass { name }
    }
}

impl Default for CleanupPass {
    fn default() -> Self {
        CleanupPass::new()
    }
}

impl FunctionPass for CleanupPass {
    fn name(&self) -> String {
        self.name.into()
    }

    fn run_on_function(
        &self,
        module: &mut Module,
        id: FuncId,
        am: &mut AnalysisManager,
        _cx: &mut PassContext,
    ) -> FuncResult {
        let effects = am.effects(module);
        let (func, types) = module.func_and_types_mut(id);
        let changed = cleanup_in_place(func, types, &effects) as u64;
        FuncResult {
            preserved: PreservedAnalyses::none().preserve(AnalysisKind::EffectsTable),
            changed,
        }
    }

    fn summarize(&self, changed: u64, cx: &mut PassContext) {
        cx.note(format!(
            "cleanup: {changed} instructions simplified/removed"
        ));
    }
}

/// Partial unrolling of counted loops
/// ([`rolag_transforms::unroll_module`]), with the loop forests served
/// from the analysis cache. A module pass rather than a function pass
/// because every function unrolls against one pre-pass module snapshot.
pub struct UnrollPass {
    /// The unroll factor (≥ 2).
    pub factor: u32,
}

impl ModulePass for UnrollPass {
    fn name(&self) -> String {
        format!("unroll<{}>", self.factor)
    }

    fn run(
        &self,
        module: &mut Module,
        am: &mut AnalysisManager,
        cx: &mut PassContext,
    ) -> PreservedAnalyses {
        let snapshot = module.clone();
        let ids: Vec<FuncId> = module.func_ids().collect();
        let mut outcomes = Vec::new();
        for id in ids {
            if module.func(id).is_declaration {
                continue;
            }
            let loops = am.loops(module, id);
            let (func, types) = module.func_and_types_mut(id);
            outcomes.extend(unroll_loops_with(
                types,
                &snapshot,
                func,
                self.factor,
                &loops,
            ));
        }
        let done = outcomes
            .iter()
            .filter(|o| matches!(o, UnrollOutcome::Unrolled { .. }))
            .count();
        cx.note(format!(
            "unroll: {done} of {} loops unrolled by {}",
            outcomes.len(),
            self.factor
        ));
        PreservedAnalyses::none().preserve(AnalysisKind::EffectsTable)
    }
}

/// Loop-nest flattening ([`rolag_transforms::flatten_module`]).
pub struct FlattenPass;

impl ModulePass for FlattenPass {
    fn name(&self) -> String {
        "flatten".into()
    }

    fn run(
        &self,
        module: &mut Module,
        _am: &mut AnalysisManager,
        cx: &mut PassContext,
    ) -> PreservedAnalyses {
        let n = flatten_module(module);
        cx.note(format!("flatten: {n} nests flattened"));
        PreservedAnalyses::none().preserve(AnalysisKind::EffectsTable)
    }
}

/// LLVM-style loop rerolling, the paper's baseline
/// ([`rolag_reroll::reroll_module`]).
pub struct RerollPass;

impl ModulePass for RerollPass {
    fn name(&self) -> String {
        "reroll".into()
    }

    fn run(
        &self,
        module: &mut Module,
        _am: &mut AnalysisManager,
        cx: &mut PassContext,
    ) -> PreservedAnalyses {
        let s = reroll_module(module);
        cx.note(format!(
            "reroll: {} of {} single-block loops rerolled",
            s.rerolled, s.examined
        ));
        PreservedAnalyses::none().preserve(AnalysisKind::EffectsTable)
    }
}

/// Which rolag fixpoint engine a [`RolagPass`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolagEngine {
    /// The incremental dirty-block worklist ([`roll_module`]); honours
    /// [`PassContext::jobs`] by switching to the parallel memoizing
    /// driver ([`roll_module_par`]).
    Incremental,
    /// The non-incremental reference engine
    /// ([`roll_module_full_rescan`]); always serial.
    FullRescan,
}

/// RoLAG loop rolling — the paper's technique.
pub struct RolagPass {
    name: &'static str,
    options: RolagOptions,
    engine: RolagEngine,
}

impl RolagPass {
    /// The default configuration (`rolag`).
    pub fn new() -> Self {
        RolagPass::with("rolag", RolagOptions::default(), RolagEngine::Incremental)
    }

    /// A named configuration. The stored options' target is overridden by
    /// the [`PassContext`] target at run time, exactly as the legacy
    /// driver did.
    pub fn with(name: &'static str, options: RolagOptions, engine: RolagEngine) -> Self {
        RolagPass {
            name,
            options,
            engine,
        }
    }
}

impl Default for RolagPass {
    fn default() -> Self {
        RolagPass::new()
    }
}

impl ModulePass for RolagPass {
    fn name(&self) -> String {
        self.name.into()
    }

    fn run(
        &self,
        module: &mut Module,
        _am: &mut AnalysisManager,
        cx: &mut PassContext,
    ) -> PreservedAnalyses {
        let opts = RolagOptions {
            target: cx.target,
            validate: self.options.validate || cx.validate_rewrites,
            ..self.options.clone()
        };
        let stats = match (self.engine, cx.jobs) {
            (RolagEngine::Incremental, Some(n)) => {
                let report = roll_module_par(
                    module,
                    &opts,
                    &DriverOptions {
                        jobs: n,
                        memoize: true,
                    },
                );
                cx.note(format!(
                    "driver: {} functions, {} unique, {} cache hits ({:.1}%), {} workers, {:.2} ms wall",
                    report.functions,
                    report.unique,
                    report.cache_hits,
                    100.0 * report.cache_hit_rate(),
                    report.jobs,
                    report.wall_ns as f64 / 1e6
                ));
                let stats = report.stats;
                cx.record_driver(report);
                stats
            }
            (RolagEngine::Incremental, None) => roll_module(module, &opts),
            (RolagEngine::FullRescan, _) => roll_module_full_rescan(module, &opts),
        };
        cx.note(format!("rolag: {stats}"));
        for (stage, ns) in stats.timings.rows() {
            cx.note(format!("  stage {stage:<9} {ns:>12} ns"));
        }
        for (counter, n) in stats.cache.rows() {
            cx.note(format!("  cache {counter:<20} {n:>10}"));
        }
        cx.record_rolag(stats);
        PreservedAnalyses::none().preserve(AnalysisKind::EffectsTable)
    }
}
