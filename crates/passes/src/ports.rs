//! The built-in passes, ported onto the pass-manager traits.
//!
//! Every port wraps (or replicates instruction-for-instruction) the legacy
//! `*_module` entry point it replaces, so a pipeline run through the
//! manager produces byte-identical IR and stat lines to the old
//! hand-rolled drivers. Where a legacy entry point recomputed an analysis
//! the manager caches (unroll's loop forests, cleanup's effects table),
//! the port takes the cached copy instead — the differential tests in
//! `tests/pipeline_spec.rs` pin the equivalence.
//!
//! Preservation contracts (derived from the transform sources; every
//! claim is checked against recomputation by the analysis manager's
//! debug-mode hit checker and by `tests/preserved_contracts.rs`):
//!
//! | pass                    | preserves when it changed something     |
//! |-------------------------|-----------------------------------------|
//! | `cse`                   | dominators, loops, effects table        |
//! | `cleanup`/`simplify`/`dce` | dominators, loops, effects table     |
//! | `unroll`                | dominators, loops, effects table        |
//! | `reroll`                | dominators, loops, effects table        |
//! | `flatten`, `rolag*`     | effects table                           |
//!
//! A pass that changed **nothing** reports [`PreservedAnalyses::all`]:
//! the module is byte-identical, so every cached analysis still describes
//! it.
//!
//! Why the CFG claims hold:
//!
//! * CSE only removes non-terminator instructions — blocks and edges are
//!   untouched.
//! * Cleanup folds non-terminator computations (`fold.rs` never rewrites
//!   branches) and DCE never deletes a terminator. Its unreachable-block
//!   sealing swaps a dead block's terminator for `unreachable`, but the
//!   dominator tree and loop forest are computed from a reachable-only
//!   traversal rooted at the entry: unreachable blocks map to "no idom /
//!   skipped" both before and after sealing, and `find_loops` filters
//!   unreachable predecessors, so both results are bit-identical.
//! * Unroll replicates the loop body *inside* the single loop block and
//!   re-appends the original terminator — same blocks, same edges.
//! * Reroll deletes replica instructions and rewrites operands in place —
//!   again no terminator or block changes.
//! * Flatten rewrites the outer latch's `condbr` into a `br` (a real CFG
//!   edit) and RoLAG splits blocks and introduces back edges, so both
//!   invalidate the CFG analyses whenever they fire.
//!
//! No registered pass adds, removes, or re-annotates function
//! declarations, so the effects table survives everything.

use rolag::{
    roll_module_full_rescan_with, roll_module_par, roll_module_with, DriverOptions, RolagOptions,
};
use rolag_analysis::{find_loops, DomTree};
use rolag_ir::{FuncId, Module};
use rolag_reroll::reroll_module;
use rolag_transforms::{
    cleanup_in_place, cse_block, flatten_step, unroll_loops_with, UnrollOutcome,
};

use crate::analysis::{AnalysisKind, AnalysisManager, PreservedAnalyses};
use crate::manager::{FuncResult, FunctionPass, ModulePass, PassContext};

/// The contract of a pass that mutates instructions but never blocks or
/// edges: the CFG-derived analyses and the effects table survive.
fn cfg_preserving() -> PreservedAnalyses {
    PreservedAnalyses::none()
        .preserve(AnalysisKind::Dominators)
        .preserve(AnalysisKind::Loops)
        .preserve(AnalysisKind::EffectsTable)
}

/// `cfg_preserving` when the pass changed something, `all` when the
/// module is untouched (every cached analysis trivially still exact).
fn preserved_for(changed: bool) -> PreservedAnalyses {
    if changed {
        cfg_preserving()
    } else {
        PreservedAnalyses::all()
    }
}

/// Block-local common-subexpression elimination
/// ([`rolag_transforms::cse_module`] per function).
pub struct CsePass;

impl FunctionPass for CsePass {
    fn name(&self) -> String {
        "cse".into()
    }

    fn run_on_function(
        &self,
        module: &mut Module,
        id: FuncId,
        _am: &mut AnalysisManager,
        _cx: &mut PassContext,
    ) -> FuncResult {
        // Same shape as cse_module: detach a clone, CSE block by block
        // against the unmodified module, swap it back in.
        let mut func = module.func(id).clone();
        let mut removed = 0u64;
        for block in func.block_ids().collect::<Vec<_>>() {
            removed += cse_block(module, &mut func, block) as u64;
        }
        module.replace_func(id, func);
        FuncResult {
            preserved: preserved_for(removed > 0),
            changed: removed,
        }
    }

    fn summarize(&self, changed: u64, cx: &mut PassContext) {
        cx.note(format!("cse: {changed} instructions removed"));
    }
}

/// Constant folding + DCE to a fixed point
/// ([`rolag_transforms::cleanup_module`] per function), with the call
/// effects table served from the analysis cache instead of recomputed per
/// invocation. Registered as `cleanup`, with `simplify` and `dce` as the
/// legacy-flag aliases.
pub struct CleanupPass {
    name: &'static str,
}

impl CleanupPass {
    /// The canonical `cleanup` pass.
    pub fn new() -> Self {
        CleanupPass { name: "cleanup" }
    }

    /// The same pass under a legacy alias (`simplify` or `dce`).
    pub fn aliased(name: &'static str) -> Self {
        CleanupPass { name }
    }
}

impl Default for CleanupPass {
    fn default() -> Self {
        CleanupPass::new()
    }
}

impl FunctionPass for CleanupPass {
    fn name(&self) -> String {
        self.name.into()
    }

    fn run_on_function(
        &self,
        module: &mut Module,
        id: FuncId,
        am: &mut AnalysisManager,
        _cx: &mut PassContext,
    ) -> FuncResult {
        let effects = am.effects(module);
        let (func, types) = module.func_and_types_mut(id);
        let changed = cleanup_in_place(func, types, &effects) as u64;
        FuncResult {
            preserved: preserved_for(changed > 0),
            changed,
        }
    }

    fn summarize(&self, changed: u64, cx: &mut PassContext) {
        cx.note(format!(
            "cleanup: {changed} instructions simplified/removed"
        ));
    }
}

/// Partial unrolling of counted loops
/// ([`rolag_transforms::unroll_module`]), with the loop forests served
/// from the analysis cache. A module pass rather than a function pass
/// because every function unrolls against one pre-pass module snapshot.
pub struct UnrollPass {
    /// The unroll factor (≥ 2).
    pub factor: u32,
}

impl ModulePass for UnrollPass {
    fn name(&self) -> String {
        format!("unroll<{}>", self.factor)
    }

    fn run(
        &self,
        module: &mut Module,
        am: &mut AnalysisManager,
        cx: &mut PassContext,
    ) -> PreservedAnalyses {
        let snapshot = module.clone();
        let ids: Vec<FuncId> = module.func_ids().collect();
        let mut outcomes = Vec::new();
        for id in ids {
            if module.func(id).is_declaration {
                continue;
            }
            let loops = am.loops(module, id);
            let (func, types) = module.func_and_types_mut(id);
            outcomes.extend(unroll_loops_with(
                types,
                &snapshot,
                func,
                self.factor,
                &loops,
            ));
        }
        let done = outcomes
            .iter()
            .filter(|o| matches!(o, UnrollOutcome::Unrolled { .. }))
            .count();
        cx.note(format!(
            "unroll: {done} of {} loops unrolled by {}",
            outcomes.len(),
            self.factor
        ));
        // Unrolling replicates the body inside the loop block and re-uses
        // the original terminator, so blocks and edges never change.
        preserved_for(done > 0)
    }
}

/// Loop-nest flattening ([`rolag_transforms::flatten_module`]), with the
/// first dominator tree / loop forest of every function served from the
/// analysis cache. Later fixpoint iterations recompute locally: the
/// function is detached from the module while it mutates, so the shared
/// cache cannot describe the intermediate states.
pub struct FlattenPass;

impl ModulePass for FlattenPass {
    fn name(&self) -> String {
        "flatten".into()
    }

    fn run(
        &self,
        module: &mut Module,
        am: &mut AnalysisManager,
        cx: &mut PassContext,
    ) -> PreservedAnalyses {
        let ids: Vec<FuncId> = module.func_ids().collect();
        let mut n = 0usize;
        for id in ids {
            if module.func(id).is_declaration {
                continue;
            }
            // Same analysis shape as flatten_function's first iteration,
            // through the cache: the dominator tree feeds the loop-forest
            // computation (or both hit outright when a preserving pass
            // kept them alive).
            let _dom = am.dom(module, id);
            let loops = am.loops(module, id);
            let mut func = module.func(id).clone();
            if flatten_step(module, &mut func, &loops) {
                n += 1;
                loop {
                    let dom = DomTree::compute(&func);
                    let fresh = find_loops(&func, &dom);
                    if !flatten_step(module, &mut func, &fresh) {
                        break;
                    }
                    n += 1;
                }
            }
            module.replace_func(id, func);
        }
        cx.note(format!("flatten: {n} nests flattened"));
        if n == 0 {
            PreservedAnalyses::all()
        } else {
            // Flattening rewrites the outer latch's condbr into a br: a
            // real CFG edit.
            PreservedAnalyses::none().preserve(AnalysisKind::EffectsTable)
        }
    }
}

/// LLVM-style loop rerolling, the paper's baseline
/// ([`rolag_reroll::reroll_module`]).
pub struct RerollPass;

impl ModulePass for RerollPass {
    fn name(&self) -> String {
        "reroll".into()
    }

    fn run(
        &self,
        module: &mut Module,
        _am: &mut AnalysisManager,
        cx: &mut PassContext,
    ) -> PreservedAnalyses {
        let s = reroll_module(module);
        cx.note(format!(
            "reroll: {} of {} single-block loops rerolled",
            s.rerolled, s.examined
        ));
        // Rerolling deletes replica instructions and rewrites operands in
        // place; terminators and blocks never change.
        preserved_for(s.rerolled > 0)
    }
}

/// Which rolag fixpoint engine a [`RolagPass`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolagEngine {
    /// The incremental dirty-block worklist ([`roll_module`]); honours
    /// [`PassContext::jobs`] by switching to the parallel memoizing
    /// driver ([`roll_module_par`]).
    Incremental,
    /// The non-incremental reference engine
    /// ([`roll_module_full_rescan`]); always serial.
    FullRescan,
}

/// RoLAG loop rolling — the paper's technique.
pub struct RolagPass {
    name: String,
    options: RolagOptions,
    engine: RolagEngine,
}

impl RolagPass {
    /// The default configuration (`rolag`).
    pub fn new() -> Self {
        RolagPass::with("rolag", RolagOptions::default(), RolagEngine::Incremental)
    }

    /// A named configuration. The stored options' target is overridden by
    /// the [`PassContext`] target at run time, exactly as the legacy
    /// driver did.
    pub fn with(name: impl Into<String>, options: RolagOptions, engine: RolagEngine) -> Self {
        RolagPass {
            name: name.into(),
            options,
            engine,
        }
    }
}

impl Default for RolagPass {
    fn default() -> Self {
        RolagPass::new()
    }
}

impl ModulePass for RolagPass {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(
        &self,
        module: &mut Module,
        am: &mut AnalysisManager,
        cx: &mut PassContext,
    ) -> PreservedAnalyses {
        let opts = RolagOptions {
            target: cx.target,
            validate: self.options.validate || cx.validate_rewrites,
            search: cx.search.unwrap_or(self.options.search),
            ..self.options.clone()
        };
        let stats = match (self.engine, cx.jobs) {
            (RolagEngine::Incremental, Some(n)) => {
                let report = roll_module_par(
                    module,
                    &opts,
                    &DriverOptions {
                        jobs: n,
                        memoize: true,
                    },
                );
                cx.note(format!(
                    "driver: {} functions, {} unique, {} cache hits ({:.1}%), {} workers, {:.2} ms wall",
                    report.functions,
                    report.unique,
                    report.cache_hits,
                    100.0 * report.cache_hit_rate(),
                    report.jobs,
                    report.wall_ns as f64 / 1e6
                ));
                let stats = report.stats;
                cx.record_driver(report);
                stats
            }
            (RolagEngine::Incremental, None) => {
                let effects = am.effects(module);
                roll_module_with(module, &opts, &effects)
            }
            (RolagEngine::FullRescan, _) => {
                let effects = am.effects(module);
                roll_module_full_rescan_with(module, &opts, &effects)
            }
        };
        cx.note(format!("rolag: {stats}"));
        for (stage, ns) in stats.timings.rows() {
            cx.note(format!("  stage {stage:<9} {ns:>12} ns"));
        }
        for (counter, n) in stats.cache.rows() {
            cx.note(format!("  cache {counter:<20} {n:>10}"));
        }
        if stats.search.explored > 0 {
            for (counter, n) in stats.search.rows() {
                cx.note(format!("  search {counter:<19} {n:>10}"));
            }
        }
        let rolled = stats.rolled;
        cx.record_rolag(stats);
        if rolled == 0 {
            // No commit anywhere: uncommitted speculation happens on
            // detached clones and rolled-back globals, so the module is
            // byte-identical to its pre-pass state.
            PreservedAnalyses::all()
        } else {
            // Commits split blocks and introduce back edges.
            PreservedAnalyses::none().preserve(AnalysisKind::EffectsTable)
        }
    }
}
