//! Serial fixpoint-engine benchmark: the incremental engine
//! (`roll_module`) against the retained full-rescan reference
//! (`roll_module_full_rescan`) on the unrolled TSVC kernels and on a
//! many-commit synthetic function built to stress sweep count.
//!
//! Besides the usual min/median/mean table this bench writes
//! `BENCH_fixpoint.json` at the repository root: per-benchmark mean
//! nanoseconds, heap allocation counts per engine run (via a counting
//! global allocator — the number the snapshot/rollback engine is meant
//! to crush), per-stage timings, cache hit-rates, and the
//! incremental-over-full speedups.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation so the JSON can report how many the
/// speculative-rewrite path performs (clone-per-candidate showed up here;
/// the journal engine must not).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by `job()` (single-threaded benches, so the
/// global counter attributes cleanly).
fn count_allocs(job: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    job();
    ALLOCS.load(Ordering::Relaxed) - before
}

use rolag::{roll_module, roll_module_full_rescan, RolagOptions, RolagStats};
use rolag_bench::harness::{BenchGroup, Measurement};
use rolag_ir::parser::parse_module;
use rolag_ir::Module;
use rolag_suites::tsvc::{all_kernels, build_kernel_module};
use rolag_transforms::{cleanup_module, cse_module, unroll_module};

fn tsvc_inputs(n: usize) -> Vec<Module> {
    all_kernels()
        .iter()
        .take(n)
        .map(|spec| {
            let mut m = build_kernel_module(spec);
            unroll_module(&mut m, 8);
            cse_module(&mut m);
            cleanup_module(&mut m);
            m
        })
        .collect()
}

/// One function with a short unprofitable leading block and `blocks`
/// value-disconnected rollable blocks (8 stores each into a distinct
/// global). Every store block rolls, so the fixpoint commits `blocks`
/// times — the worst case for full re-scanning and the best case for the
/// dirty-block worklist (commits dirty only a tiny neighbourhood). The
/// short block's candidate is visited and rejected in every sweep: the
/// reference engine rebuilds the attempt each time, the incremental engine
/// replays the memoized verdict.
fn many_commit_module(blocks: usize) -> Module {
    let mut text = String::from("module \"many\"\nglobal @t : [2 x i32] = zero\n");
    for b in 0..blocks {
        let _ = writeln!(text, "global @g{b} : [8 x i32] = zero");
    }
    text.push_str(
        "func @f() -> void {\nentry:\n  br short\nshort:\n\
         \x20 %t0 = gep i32, @t, i64 0\n  store i32 1, %t0\n\
         \x20 %t1 = gep i32, @t, i64 1\n  store i32 8, %t1\n  br b0\n",
    );
    for b in 0..blocks {
        let _ = writeln!(text, "b{b}:");
        for i in 0..8 {
            let _ = writeln!(text, "  %p{b}_{i} = gep i32, @g{b}, i64 {i}");
            let _ = writeln!(text, "  store i32 {}, %p{b}_{i}", b * 100 + i * 7);
        }
        if b + 1 < blocks {
            let _ = writeln!(text, "  br b{}", b + 1);
        } else {
            text.push_str("  ret\n");
        }
    }
    text.push_str("}\n");
    parse_module(&text).expect("synthetic module parses")
}

fn mean_ns(m: &Measurement) -> u128 {
    m.mean().as_nanos()
}

/// `"label": {...}` JSON object for one measurement.
fn bench_json(m: &Measurement) -> String {
    format!(
        "{{\"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}",
        m.min().as_nanos(),
        m.median().as_nanos(),
        mean_ns(m)
    )
}

/// `"label": {...}` JSON object for one stats run (stage ns + cache).
fn stats_json(s: &RolagStats) -> String {
    let mut out = String::from("{\"stage_ns\": {");
    let rows = s.timings.rows();
    for (i, (stage, ns)) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { ", " } else { "" };
        let _ = write!(out, "\"{stage}\": {ns}{sep}");
    }
    let _ = write!(
        out,
        "}}, \"cache\": {{\"candidate_hit_rate\": {:.4}, \"size_hit_rate\": {:.4}, \
         \"memo_hit_rate\": {:.4}",
        s.cache.candidate_hit_rate(),
        s.cache.size_hit_rate(),
        s.cache.memo_hit_rate()
    );
    for (counter, n) in s.cache.rows() {
        let _ = write!(out, ", \"{counter}\": {n}");
    }
    out.push_str("}}");
    out
}

fn main() {
    let opts = RolagOptions::default();
    let tsvc = tsvc_inputs(24);
    let synth = many_commit_module(16);

    let mut group = BenchGroup::new("fixpoint", 10);
    group.bench_batched(
        "full_rescan_tsvc24",
        || tsvc.clone(),
        |mut modules| {
            for m in &mut modules {
                roll_module_full_rescan(m, &opts);
            }
        },
    );
    group.bench_batched(
        "incremental_tsvc24",
        || tsvc.clone(),
        |mut modules| {
            for m in &mut modules {
                roll_module(m, &opts);
            }
        },
    );
    group.bench_batched(
        "full_rescan_many_commit",
        || synth.clone(),
        |mut m| roll_module_full_rescan(&mut m, &opts),
    );
    group.bench_batched(
        "incremental_many_commit",
        || synth.clone(),
        |mut m| roll_module(&mut m, &opts),
    );
    let results = group.finish();

    // One instrumented incremental run per input for stage/cache detail.
    let tsvc_stats = {
        let mut total = RolagStats::default();
        for m in &tsvc {
            let mut m = m.clone();
            total += roll_module(&mut m, &opts);
        }
        total
    };
    let synth_stats = {
        let mut m = synth.clone();
        roll_module(&mut m, &opts)
    };

    let by_label = |label: &str| -> &Measurement {
        results
            .iter()
            .find(|m| m.label == label)
            .expect("measurement exists")
    };
    let speedup = |full: &str, incr: &str| -> f64 {
        mean_ns(by_label(full)) as f64 / mean_ns(by_label(incr)).max(1) as f64
    };
    let tsvc_speedup = speedup("full_rescan_tsvc24", "incremental_tsvc24");
    let synth_speedup = speedup("full_rescan_many_commit", "incremental_many_commit");
    println!("speedup tsvc24:      {tsvc_speedup:.2}x");
    println!("speedup many_commit: {synth_speedup:.2}x");

    // Allocation counts for one engine run per input (clone excluded: the
    // input copy is setup, not engine work).
    let allocs = [
        ("full_rescan_tsvc24", {
            let mut modules = tsvc.clone();
            count_allocs(|| {
                for m in &mut modules {
                    roll_module_full_rescan(m, &opts);
                }
            })
        }),
        ("incremental_tsvc24", {
            let mut modules = tsvc.clone();
            count_allocs(|| {
                for m in &mut modules {
                    roll_module(m, &opts);
                }
            })
        }),
        ("full_rescan_many_commit", {
            let mut m = synth.clone();
            count_allocs(|| {
                roll_module_full_rescan(&mut m, &opts);
            })
        }),
        ("incremental_many_commit", {
            let mut m = synth.clone();
            count_allocs(|| {
                roll_module(&mut m, &opts);
            })
        }),
    ];
    for (label, n) in &allocs {
        println!("allocations {label}: {n}");
    }

    let mut json = String::from("{\n  \"bench\": \"fixpoint\",\n  \"samples\": 10,\n");
    json.push_str("  \"benchmarks\": {\n");
    for (i, m) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{}\": {}{sep}", m.label, bench_json(m));
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"speedup\": {{\"tsvc24\": {tsvc_speedup:.3}, \"many_commit\": {synth_speedup:.3}}},"
    );
    json.push_str("  \"allocations\": {");
    for (i, (label, n)) in allocs.iter().enumerate() {
        let sep = if i + 1 < allocs.len() { ", " } else { "" };
        let _ = write!(json, "\"{label}\": {n}{sep}");
    }
    json.push_str("},\n");
    json.push_str("  \"incremental_stats\": {\n");
    let _ = writeln!(json, "    \"tsvc24\": {},", stats_json(&tsvc_stats));
    let _ = writeln!(json, "    \"many_commit\": {}", stats_json(&synth_stats));
    json.push_str("  }\n}\n");

    // CARGO_MANIFEST_DIR is crates/bench; the JSON belongs at the repo root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let path = root.join("BENCH_fixpoint.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
