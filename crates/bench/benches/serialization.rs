//! Module load-time benchmark: the compact binary format
//! (`rolag_ir::serialization`) against the textual parser on the TSVC
//! suite and a large synthetic program.
//!
//! Besides the min/median/mean table this bench writes
//! `BENCH_serialization.json` at the repository root: per-format mean
//! load nanoseconds, the decode speedup over text parsing, and size
//! metrics (total bytes and bytes per function for each format).

use std::fmt::Write as _;
use std::path::Path;

use rolag_bench::harness::{BenchGroup, Measurement};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::serialization::{decode_module, encode_module};
use rolag_ir::Module;
use rolag_suites::programs::{build_program, ProgramSpec};
use rolag_suites::tsvc::build_suite_module;

struct Corpus {
    label: &'static str,
    module: Module,
}

fn corpus() -> Vec<Corpus> {
    let spec = ProgramSpec {
        suite: "bench",
        name: "serialization-input",
        size_kb: 64.0,
        rolled_loops: 16,
        marginal: 0.3,
    };
    vec![
        Corpus {
            label: "tsvc",
            module: build_suite_module(),
        },
        Corpus {
            label: "program64kb",
            module: build_program(&spec, 7, 1.0),
        },
    ]
}

fn mean_ns(m: &Measurement) -> u128 {
    m.mean().as_nanos()
}

fn bench_json(m: &Measurement) -> String {
    format!(
        "{{\"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}",
        m.min().as_nanos(),
        m.median().as_nanos(),
        mean_ns(m)
    )
}

fn main() {
    let inputs = corpus();
    let mut group = BenchGroup::new("serialization", 20);
    let mut sizes = Vec::new();

    for c in &inputs {
        let text = print_module(&c.module);
        let bytes = encode_module(&c.module);
        let funcs = c.module.num_funcs().max(1);
        sizes.push((
            c.label,
            text.len(),
            bytes.len(),
            text.len() / funcs,
            bytes.len() / funcs,
        ));

        // Round-trip sanity: a bench over a broken codec is worthless.
        let decoded = decode_module(&bytes).expect("bench corpus decodes");
        assert_eq!(
            print_module(&decoded),
            text,
            "binary round-trip diverged on {}",
            c.label
        );

        group.bench(&format!("parse_text_{}", c.label), || {
            parse_module(&text).expect("parses")
        });
        group.bench(&format!("decode_binary_{}", c.label), || {
            decode_module(&bytes).expect("decodes")
        });
        group.bench(&format!("encode_binary_{}", c.label), || {
            encode_module(&c.module)
        });
    }
    let results = group.finish();

    println!(
        "\n{:<16} {:>10} {:>10} {:>12} {:>12}",
        "corpus", "text B", "binary B", "text B/fn", "binary B/fn"
    );
    for (label, text_b, bin_b, text_pf, bin_pf) in &sizes {
        println!("{label:<16} {text_b:>10} {bin_b:>10} {text_pf:>12} {bin_pf:>12}");
    }

    let by_label = |label: &str| -> &Measurement {
        results
            .iter()
            .find(|m| m.label == label)
            .expect("measurement exists")
    };

    let mut json = String::from("{\n  \"bench\": \"serialization\",\n  \"samples\": 20,\n");
    json.push_str("  \"benchmarks\": {\n");
    for (i, m) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{}\": {}{sep}", m.label, bench_json(m));
    }
    json.push_str("  },\n  \"load_speedup\": {");
    for (i, c) in inputs.iter().enumerate() {
        let parse = mean_ns(by_label(&format!("parse_text_{}", c.label)));
        let decode = mean_ns(by_label(&format!("decode_binary_{}", c.label))).max(1);
        let sep = if i + 1 < inputs.len() { ", " } else { "" };
        let _ = write!(
            json,
            "\"{}\": {:.3}{sep}",
            c.label,
            parse as f64 / decode as f64
        );
    }
    json.push_str("},\n  \"sizes\": {\n");
    for (i, (label, text_b, bin_b, text_pf, bin_pf)) in sizes.iter().enumerate() {
        let sep = if i + 1 < sizes.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{label}\": {{\"text_bytes\": {text_b}, \"binary_bytes\": {bin_b}, \
             \"text_bytes_per_func\": {text_pf}, \"binary_bytes_per_func\": {bin_pf}}}{sep}"
        );
    }
    json.push_str("  }\n}\n");

    // CARGO_MANIFEST_DIR is crates/bench; the JSON belongs at the repo root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let path = root.join("BENCH_serialization.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
