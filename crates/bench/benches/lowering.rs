//! Throughput of the lowering simulator (instruction selection + register
//! allocation + sizing) and the reference interpreter — the two substrates
//! every experiment leans on.

use rolag_bench::harness::BenchGroup;
use rolag_ir::interp::Interpreter;
use rolag_lower::measure_module;
use rolag_suites::programs::{build_program, ProgramSpec};
use rolag_suites::tsvc::build_suite_module;

fn main() {
    let spec = ProgramSpec {
        suite: "bench",
        name: "lower-input",
        size_kb: 64.0,
        rolled_loops: 16,
        marginal: 0.3,
    };
    let program = build_program(&spec, 7, 1.0);
    let tsvc = build_suite_module();

    let mut group = BenchGroup::new("lowering", 10);

    group.bench("measure_64kb_program", || measure_module(&program));

    group.bench("measure_tsvc_suite", || measure_module(&tsvc));

    group.bench("interpret_vpv", || {
        let mut i = Interpreter::new(&tsvc);
        i.run("vpv", &[]).expect("runs")
    });

    group.finish();
}
