//! Throughput of the lowering simulator (instruction selection + register
//! allocation + sizing) and the reference interpreter — the two substrates
//! every experiment leans on.

use criterion::{criterion_group, criterion_main, Criterion};

use rolag_ir::interp::Interpreter;
use rolag_lower::measure_module;
use rolag_suites::programs::{build_program, ProgramSpec};
use rolag_suites::tsvc::build_suite_module;

fn bench_lowering(c: &mut Criterion) {
    let spec = ProgramSpec {
        suite: "bench",
        name: "lower-input",
        size_kb: 64.0,
        rolled_loops: 16,
        marginal: 0.3,
    };
    let program = build_program(&spec, 7, 1.0);
    let tsvc = build_suite_module();

    let mut group = c.benchmark_group("lowering");
    group.sample_size(10);

    group.bench_function("measure_64kb_program", |b| {
        b.iter(|| std::hint::black_box(measure_module(&program)))
    });

    group.bench_function("measure_tsvc_suite", |b| {
        b.iter(|| std::hint::black_box(measure_module(&tsvc)))
    });

    group.bench_function("interpret_vpv", |b| {
        b.iter(|| {
            let mut i = Interpreter::new(&tsvc);
            std::hint::black_box(i.run("vpv", &[]).expect("runs"))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_lowering);
criterion_main!(benches);
