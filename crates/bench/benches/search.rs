//! Greedy-vs-beam search benchmark: the default greedy engine against the
//! validator-gated beam (`beam:4`) on the unrolled TSVC kernels and an
//! AnghaBench-style slice.
//!
//! Besides the usual min/median/mean table this bench writes
//! `BENCH_search.json` at the repository root: per-strategy wall time,
//! total measured text bytes per corpus and strategy, and the beam's
//! search counters (explored/pruned/tv-rejected/adopted). CI re-reads the
//! checked-in JSON with `--check-bench <path>` and fails when the beam's
//! recorded tsvc24 total exceeds greedy's — the monotonicity the search
//! engine promises by construction.

use std::fmt::Write as _;
use std::path::Path;

use rolag::{roll_module, RolagOptions, RolagStats, SearchConfig};
use rolag_bench::harness::{BenchGroup, Measurement};
use rolag_ir::Module;
use rolag_lower::measure_module;
use rolag_suites::angha::{generate, AnghaConfig};
use rolag_suites::tsvc::{all_kernels, build_kernel_module};
use rolag_transforms::{cleanup_module, cse_module, unroll_module};

fn tsvc_inputs(n: usize) -> Vec<Module> {
    all_kernels()
        .iter()
        .take(n)
        .map(|spec| {
            let mut m = build_kernel_module(spec);
            unroll_module(&mut m, 8);
            cse_module(&mut m);
            cleanup_module(&mut m);
            m
        })
        .collect()
}

fn angha_inputs(functions: usize) -> Vec<Module> {
    generate(&AnghaConfig {
        functions,
        ..AnghaConfig::default()
    })
    .entries
    .into_iter()
    .map(|(_, _, m)| m)
    .collect()
}

fn beam4() -> RolagOptions {
    RolagOptions {
        search: SearchConfig::Beam {
            width: 4,
            depth: SearchConfig::DEFAULT_DEPTH,
        },
        ..RolagOptions::default()
    }
}

/// Rolls every module with `opts`; returns the summed post-roll text
/// bytes and the accumulated statistics.
fn roll_corpus(inputs: &[Module], opts: &RolagOptions) -> (u64, RolagStats) {
    let mut text = 0u64;
    let mut stats = RolagStats::default();
    for m in inputs {
        let mut m = m.clone();
        stats += roll_module(&mut m, opts);
        text += measure_module(&m).text;
    }
    (text, stats)
}

/// `"label": {...}` JSON object for one measurement.
fn bench_json(m: &Measurement) -> String {
    format!(
        "{{\"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}",
        m.min().as_nanos(),
        m.median().as_nanos(),
        m.mean().as_nanos()
    )
}

/// Extracts the integer value of `"key": N` from hand-rolled JSON. The
/// schema keeps every checked key globally unique, so plain text search
/// is exact.
fn json_u64(text: &str, key: &str) -> Result<u64, String> {
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("key \"{key}\" not found"))?;
    let rest = text[at + needle.len()..].trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits
        .parse()
        .map_err(|_| format!("key \"{key}\" has no integer value"))
}

/// The workspace root, where `BENCH_search.json` lives.
/// `CARGO_MANIFEST_DIR` is `crates/bench`.
fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
}

/// `--check-bench <path>`: re-reads a previously written
/// `BENCH_search.json` and enforces the size gate — the beam:4 total on
/// tsvc24 must not exceed greedy's. Exits non-zero on violation.
/// Relative paths resolve against the workspace root (where the bench
/// writes the JSON), since `cargo bench` runs with the package as cwd.
fn check_bench(path: &Path) -> Result<(), String> {
    let path = if path.is_relative() {
        repo_root().join(path)
    } else {
        path.to_path_buf()
    };
    let path = path.as_path();
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let greedy = json_u64(&text, "greedy_text_tsvc24")?;
    let beam = json_u64(&text, "beam4_text_tsvc24")?;
    if beam > greedy {
        return Err(format!(
            "beam:4 rolled tsvc24 to {beam} text bytes, more than greedy's {greedy}"
        ));
    }
    println!("check-bench ok: tsvc24 beam:4 {beam} B <= greedy {greedy} B");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check-bench") {
        let path = args.get(i + 1).map(Path::new).unwrap_or_else(|| {
            eprintln!("--check-bench needs a path");
            std::process::exit(1);
        });
        if let Err(e) = check_bench(path) {
            eprintln!("check-bench FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }

    let greedy_opts = RolagOptions::default();
    let beam_opts = beam4();
    let tsvc = tsvc_inputs(24);
    let angha = angha_inputs(64);

    let mut group = BenchGroup::new("search", 5);
    group.bench_batched(
        "greedy_tsvc24",
        || tsvc.clone(),
        |mut modules| {
            for m in &mut modules {
                roll_module(m, &greedy_opts);
            }
        },
    );
    group.bench_batched(
        "beam4_tsvc24",
        || tsvc.clone(),
        |mut modules| {
            for m in &mut modules {
                roll_module(m, &beam_opts);
            }
        },
    );
    group.bench_batched(
        "greedy_angha64",
        || angha.clone(),
        |mut modules| {
            for m in &mut modules {
                roll_module(m, &greedy_opts);
            }
        },
    );
    group.bench_batched(
        "beam4_angha64",
        || angha.clone(),
        |mut modules| {
            for m in &mut modules {
                roll_module(m, &beam_opts);
            }
        },
    );
    let results = group.finish();

    // One instrumented run per corpus and strategy for the size totals
    // and the beam's search counters.
    let (greedy_text_tsvc, _) = roll_corpus(&tsvc, &greedy_opts);
    let (beam_text_tsvc, beam_stats_tsvc) = roll_corpus(&tsvc, &beam_opts);
    let (greedy_text_angha, _) = roll_corpus(&angha, &greedy_opts);
    let (beam_text_angha, beam_stats_angha) = roll_corpus(&angha, &beam_opts);

    println!("tsvc24  text: greedy {greedy_text_tsvc} B, beam:4 {beam_text_tsvc} B");
    println!("angha64 text: greedy {greedy_text_angha} B, beam:4 {beam_text_angha} B");
    for (corpus, s) in [("tsvc24", &beam_stats_tsvc), ("angha64", &beam_stats_angha)] {
        for (counter, n) in s.search.rows() {
            println!("search {corpus} {counter:<14} {n:>8}");
        }
    }

    let mut json = String::from("{\n  \"bench\": \"search\",\n  \"samples\": 5,\n");
    json.push_str("  \"benchmarks\": {\n");
    for (i, m) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{}\": {}{sep}", m.label, bench_json(m));
    }
    json.push_str("  },\n");
    json.push_str("  \"sizes\": {\n");
    let _ = writeln!(
        json,
        "    \"greedy_text_tsvc24\": {greedy_text_tsvc},\n    \
         \"beam4_text_tsvc24\": {beam_text_tsvc},\n    \
         \"greedy_text_angha64\": {greedy_text_angha},\n    \
         \"beam4_text_angha64\": {beam_text_angha}"
    );
    json.push_str("  },\n");
    json.push_str("  \"search_stats\": {\n");
    for (i, (corpus, s)) in [("tsvc24", &beam_stats_tsvc), ("angha64", &beam_stats_angha)]
        .iter()
        .enumerate()
    {
        let rows = s.search.rows();
        let _ = write!(json, "    \"{corpus}\": {{");
        for (j, (counter, n)) in rows.iter().enumerate() {
            let sep = if j + 1 < rows.len() { ", " } else { "" };
            let _ = write!(json, "\"{counter}\": {n}{sep}");
        }
        let sep = if i == 0 { "," } else { "" };
        let _ = writeln!(json, "}}{sep}");
    }
    json.push_str("  }\n}\n");

    let path = repo_root().join("BENCH_search.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
