//! Pass-manager benchmark: the full evaluation pipeline
//! (`unroll<8>,cse,cleanup,rolag,flatten,cleanup`) over the TSVC kernels,
//! run once through the legacy direct `*_module` calls and once through
//! the `rolag-passes` manager, to pin the manager's overhead at (near)
//! zero and to measure what the cached analysis manager saves.
//!
//! Besides the usual min/median/mean table this bench writes
//! `BENCH_passes.json` at the repository root (per-benchmark nanoseconds,
//! manager-vs-direct ratio, analysis-cache hit rates) and
//! `results/passes-analysis.csv` with the per-kind cache counters.

use std::fmt::Write as _;
use std::path::Path;

use rolag::{roll_module, RolagOptions};
use rolag_bench::harness::{BenchGroup, Measurement};
use rolag_bench::pipelines::{
    analysis_csv_header, analysis_csv_row, run_pipeline, run_pipeline_timed,
};
use rolag_ir::printer::print_module;
use rolag_ir::Module;
use rolag_passes::AnalysisCacheStats;
use rolag_suites::tsvc::{all_kernels, build_kernel_module};
use rolag_transforms::{cleanup_module, cse_module, flatten_module, unroll_module};

const SPEC: &str = "unroll<8>,cse,cleanup,rolag,flatten,cleanup";

fn tsvc_inputs(n: usize) -> Vec<Module> {
    all_kernels()
        .iter()
        .take(n)
        .map(build_kernel_module)
        .collect()
}

/// The legacy spelling of [`SPEC`]: direct entry-point calls, every
/// analysis recomputed where the transform wants it.
fn direct_pipeline(m: &mut Module) {
    unroll_module(m, 8);
    cse_module(m);
    cleanup_module(m);
    roll_module(m, &RolagOptions::default());
    flatten_module(m);
    cleanup_module(m);
}

fn bench_json(m: &Measurement) -> String {
    format!(
        "{{\"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}",
        m.min().as_nanos(),
        m.median().as_nanos(),
        m.mean().as_nanos()
    )
}

fn cache_json(c: &AnalysisCacheStats) -> String {
    let mut out = String::from("{");
    for (counter, n) in c.rows() {
        let _ = write!(out, "\"{counter}\": {n}, ");
    }
    let _ = write!(out, "\"hit_rate\": {:.4}}}", c.hit_rate());
    out
}

fn main() {
    let inputs = tsvc_inputs(24);

    // The two spellings must agree byte-for-byte before timing them.
    let mut cache_rows = Vec::new();
    let mut total_cache = AnalysisCacheStats::default();
    for (i, input) in inputs.iter().enumerate() {
        let mut direct = input.clone();
        direct_pipeline(&mut direct);
        let mut managed = input.clone();
        let report = run_pipeline(&mut managed, SPEC);
        assert_eq!(
            print_module(&direct),
            print_module(&managed),
            "manager output diverged from direct calls on kernel {i}"
        );
        cache_rows.push(analysis_csv_row(all_kernels()[i].name, &report.cache));
        total_cache += report.cache;
    }
    cache_rows.push(analysis_csv_row("TOTAL", &total_cache));

    let mut group = BenchGroup::new("passes", 10);
    group.bench_batched(
        "direct_tsvc24",
        || inputs.clone(),
        |mut modules| {
            for m in &mut modules {
                direct_pipeline(m);
            }
        },
    );
    // The timed managed run skips inter-pass verification, exactly as the
    // direct pipeline does; the correctness phase above already verified
    // and byte-compared every kernel through the checking path.
    group.bench_batched(
        "managed_tsvc24",
        || inputs.clone(),
        |mut modules| {
            for m in &mut modules {
                run_pipeline_timed(m, SPEC);
            }
        },
    );
    let results = group.finish();

    let by_label = |label: &str| -> &Measurement {
        results
            .iter()
            .find(|m| m.label == label)
            .expect("measurement exists")
    };
    let ratio = by_label("managed_tsvc24").mean().as_nanos() as f64
        / by_label("direct_tsvc24").mean().as_nanos().max(1) as f64;
    println!("manager/direct wall ratio: {ratio:.3}x");
    println!(
        "analysis cache over tsvc24: {} ({} hits, {} misses)",
        total_cache,
        total_cache.total_hits(),
        total_cache.total_misses()
    );
    for (kind, hits, misses) in total_cache.per_kind() {
        println!("  {kind:<8} {hits:>5} hits / {misses:>5} misses");
    }

    // CARGO_MANIFEST_DIR is crates/bench; reports belong at the repo root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let csv_dir = root.join("results");
    let _ = std::fs::create_dir_all(&csv_dir);
    let csv_path = csv_dir.join("passes-analysis.csv");
    let mut csv = String::from(analysis_csv_header());
    csv.push('\n');
    for row in &cache_rows {
        csv.push_str(row);
        csv.push('\n');
    }
    match std::fs::write(&csv_path, &csv) {
        Ok(()) => println!("wrote {}", csv_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", csv_path.display()),
    }

    let mut json = String::from("{\n  \"bench\": \"passes\",\n  \"samples\": 10,\n");
    let _ = writeln!(json, "  \"pipeline\": \"{SPEC}\",");
    json.push_str("  \"benchmarks\": {\n");
    for (i, m) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{}\": {}{sep}", m.label, bench_json(m));
    }
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"manager_over_direct\": {ratio:.4},");
    let _ = writeln!(json, "  \"analysis_cache\": {}", cache_json(&total_cache));
    json.push_str("}\n");

    let path = root.join("BENCH_passes.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
