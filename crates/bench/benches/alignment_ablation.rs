//! Ablation of RoLAG's design choices (the special nodes of §IV-C): pass
//! runtime and applicability with each feature class toggled off. This is
//! the compile-time companion to Fig. 19's quality ablation.

use rolag::{roll_module, RolagOptions};
use rolag_bench::harness::BenchGroup;
use rolag_suites::tsvc::{all_kernels, build_kernel_module};
use rolag_transforms::{cleanup_module, cse_module, unroll_module};

fn inputs(n: usize) -> Vec<rolag_ir::Module> {
    all_kernels()
        .iter()
        .take(n)
        .map(|spec| {
            let mut m = build_kernel_module(spec);
            unroll_module(&mut m, 8);
            cse_module(&mut m);
            cleanup_module(&mut m);
            m
        })
        .collect()
}

fn variants() -> Vec<(&'static str, RolagOptions)> {
    let base = RolagOptions::default();
    vec![
        ("full", base.clone()),
        ("no-special", RolagOptions::no_special_nodes()),
        (
            "no-sequences",
            RolagOptions {
                enable_sequences: false,
                ..base.clone()
            },
        ),
        (
            "no-gep-neutral",
            RolagOptions {
                enable_gep_neutral: false,
                ..base.clone()
            },
        ),
        (
            "no-reductions",
            RolagOptions {
                enable_reductions: false,
                ..base.clone()
            },
        ),
        (
            "no-joint",
            RolagOptions {
                enable_joint: false,
                ..base
            },
        ),
    ]
}

fn main() {
    let modules = inputs(16);
    let mut group = BenchGroup::new("alignment_ablation", 10);
    for (label, opts) in variants() {
        group.bench_batched(
            label,
            || modules.clone(),
            |mut ms| {
                for m in &mut ms {
                    roll_module(m, &opts);
                }
            },
        );
    }
    group.finish();
}
