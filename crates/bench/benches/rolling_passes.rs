//! Compile-time cost of the two rolling passes over representative inputs:
//! how long RoLAG and the LLVM-style baseline take per function.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use rolag::{roll_module, RolagOptions};
use rolag_reroll::reroll_module;
use rolag_suites::angha::{generate, AnghaConfig};
use rolag_suites::tsvc::{all_kernels, build_kernel_module};
use rolag_transforms::{cleanup_module, cse_module, unroll_module};

fn tsvc_inputs(n: usize) -> Vec<rolag_ir::Module> {
    all_kernels()
        .iter()
        .take(n)
        .map(|spec| {
            let mut m = build_kernel_module(spec);
            unroll_module(&mut m, 8);
            cse_module(&mut m);
            cleanup_module(&mut m);
            m
        })
        .collect()
}

fn bench_rolling(c: &mut Criterion) {
    let tsvc = tsvc_inputs(24);
    let mut group = c.benchmark_group("rolling_passes");
    group.sample_size(10);

    group.bench_function("rolag_tsvc24", |b| {
        b.iter_batched(
            || tsvc.clone(),
            |mut modules| {
                let opts = RolagOptions::default();
                for m in &mut modules {
                    roll_module(m, &opts);
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("llvm_reroll_tsvc24", |b| {
        b.iter_batched(
            || tsvc.clone(),
            |mut modules| {
                for m in &mut modules {
                    reroll_module(m);
                }
            },
            BatchSize::SmallInput,
        )
    });

    let corpus: Vec<rolag_ir::Module> = generate(&AnghaConfig {
        seed: 3,
        functions: 48,
    })
    .entries
    .into_iter()
    .map(|(_, _, m)| m)
    .collect();

    group.bench_function("rolag_angha48", |b| {
        b.iter_batched(
            || corpus.clone(),
            |mut modules| {
                let opts = RolagOptions::default();
                for m in &mut modules {
                    roll_module(m, &opts);
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_rolling);
criterion_main!(benches);
