//! Compile-time cost of the two rolling passes over representative inputs:
//! how long RoLAG and the LLVM-style baseline take per function, plus the
//! parallel memoizing driver against the serial baseline on a whole module.

use rolag::{roll_module, roll_module_par, DriverOptions, RolagOptions};
use rolag_bench::harness::BenchGroup;
use rolag_reroll::reroll_module;
use rolag_suites::angha::{generate, AnghaConfig};
use rolag_suites::tsvc::{all_kernels, build_kernel_module, build_suite_module};
use rolag_transforms::{cleanup_module, cse_module, unroll_module};

fn tsvc_inputs(n: usize) -> Vec<rolag_ir::Module> {
    all_kernels()
        .iter()
        .take(n)
        .map(|spec| {
            let mut m = build_kernel_module(spec);
            unroll_module(&mut m, 8);
            cse_module(&mut m);
            cleanup_module(&mut m);
            m
        })
        .collect()
}

fn main() {
    let tsvc = tsvc_inputs(24);
    let mut group = BenchGroup::new("rolling_passes", 10);

    group.bench_batched(
        "rolag_tsvc24",
        || tsvc.clone(),
        |mut modules| {
            let opts = RolagOptions::default();
            for m in &mut modules {
                roll_module(m, &opts);
            }
        },
    );

    // The same inputs with per-rewrite translation validation on: the gap
    // against `rolag_tsvc24` is the static proof overhead.
    group.bench_batched(
        "rolag_tv_tsvc24",
        || tsvc.clone(),
        |mut modules| {
            let opts = RolagOptions::validated();
            for m in &mut modules {
                roll_module(m, &opts);
            }
        },
    );

    group.bench_batched(
        "llvm_reroll_tsvc24",
        || tsvc.clone(),
        |mut modules| {
            for m in &mut modules {
                reroll_module(m);
            }
        },
    );

    let corpus: Vec<rolag_ir::Module> = generate(&AnghaConfig {
        seed: 3,
        functions: 48,
    })
    .entries
    .into_iter()
    .map(|(_, _, m)| m)
    .collect();

    group.bench_batched(
        "rolag_angha48",
        || corpus.clone(),
        |mut modules| {
            let opts = RolagOptions::default();
            for m in &mut modules {
                roll_module(m, &opts);
            }
        },
    );

    // Whole-suite module, unrolled x8 so the pass has real work: serial
    // pass vs. the parallel memoizing driver.
    let mut suite = build_suite_module();
    unroll_module(&mut suite, 8);
    cse_module(&mut suite);
    cleanup_module(&mut suite);
    group.bench_batched(
        "driver_serial_suite",
        || suite.clone(),
        |mut m| roll_module(&mut m, &RolagOptions::default()),
    );
    for jobs in [2usize, 4] {
        group.bench_batched(
            &format!("driver_par{jobs}_suite"),
            || suite.clone(),
            |mut m| {
                roll_module_par(
                    &mut m,
                    &RolagOptions::default(),
                    &DriverOptions {
                        jobs,
                        memoize: true,
                    },
                )
            },
        );
    }

    // Memoization benefit: the unrolled suite with every kernel duplicated
    // 3x under fresh names — the structural-duplicate population the cache
    // targets (75% hit rate).
    let mut dup_suite = suite.clone();
    let ids: Vec<_> = dup_suite.func_ids().collect();
    for k in 1..4 {
        for &id in &ids {
            if dup_suite.func(id).is_declaration {
                continue;
            }
            let mut f = dup_suite.func(id).clone();
            f.name = format!("{}.d{k}", f.name);
            dup_suite.add_func(f);
        }
    }
    for (label, memoize) in [("driver_nomemo_dup4", false), ("driver_memo_dup4", true)] {
        group.bench_batched(
            label,
            || dup_suite.clone(),
            |mut m| {
                roll_module_par(
                    &mut m,
                    &RolagOptions::default(),
                    &DriverOptions { jobs: 1, memoize },
                )
            },
        );
    }

    group.finish();
}
