//! Fidelity checks against specific observations in the paper's §V-C:
//! which kernel families each technique can and cannot handle.

use rolag::RolagOptions;
use rolag_bench::tsvc_eval::{evaluate_kernel, summarize, TsvcRow};
use rolag_suites::tsvc::all_kernels;

fn eval(name: &str) -> TsvcRow {
    let spec = all_kernels()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("kernel {name} missing"));
    evaluate_kernel(&spec, &RolagOptions::default(), false)
}

/// "LLVM's loop rerolling is only able to handle loops performing simple
/// array operations, such as array initialization and element-wise
/// addition, loops with reduction trees, and some loops with indirect
/// memory access."
#[test]
fn baseline_handles_the_simple_families() {
    for name in ["va", "vpv", "vtv", "s000", "vsumr", "vag", "vas"] {
        let row = eval(name);
        assert!(
            row.llvm_rerolled > 0,
            "{name}: the baseline should reroll this simple kernel"
        );
        assert!(row.rolag_rolled > 0, "{name}: RoLAG should roll it as well");
        // "LLVM tends to have a slightly better result as it reuses the
        // same loop for rerolling while RoLAG currently creates a new
        // inner loop."
        assert!(
            row.llvm <= row.rolag,
            "{name}: baseline {} should be <= RoLAG {}",
            row.llvm,
            row.rolag
        );
    }
}

/// Multi-statement bodies defeat the baseline but not RoLAG.
#[test]
fn multi_statement_bodies_are_rolag_only() {
    let mut rolag_only = 0;
    for name in ["s1244", "s451", "s2233", "s3251", "s1213"] {
        let row = eval(name);
        assert_eq!(
            row.llvm_rerolled, 0,
            "{name}: the baseline cannot handle multi-store bodies"
        );
        if row.rolag_rolled > 0 {
            rolag_only += 1;
        }
    }
    assert!(
        rolag_only >= 3,
        "RoLAG should profitably roll most multi-statement kernels"
    );
}

/// "The most prominent of them are the 26 loops with multiple basic
/// blocks" — conditional kernels defeat both techniques (Fig. 20a).
#[test]
fn conditional_kernels_defeat_both() {
    for name in ["s271", "s3113", "s161", "vif", "s441"] {
        let row = eval(name);
        assert!(row.multi_block, "{name} is a multi-block kernel");
        assert_eq!(row.llvm_rerolled, 0, "{name}: baseline cannot apply");
        assert_eq!(row.rolag_rolled, 0, "{name}: RoLAG cannot apply either");
        assert_eq!(
            row.base, row.oracle,
            "{name}: the unroller skipped it, so input == oracle"
        );
    }
}

/// Min/max reductions (Fig. 20b) are unsupported by the *paper's* RoLAG
/// configuration but roll with the future-work extension.
#[test]
fn minmax_requires_the_extension() {
    let spec = all_kernels()
        .into_iter()
        .find(|k| k.name == "s314")
        .unwrap();
    let default_row = evaluate_kernel(&spec, &RolagOptions::default(), false);
    assert_eq!(default_row.rolag_rolled, 0, "paper config cannot roll s314");
    let ext_row = evaluate_kernel(&spec, &RolagOptions::with_extensions(), false);
    assert!(
        ext_row.rolag_rolled > 0,
        "the select-chain extension rolls s314"
    );
}

/// Headline shape of Fig. 17 in one assertion set.
#[test]
fn fig17_headline_shape_holds() {
    let rows: Vec<TsvcRow> = all_kernels()
        .iter()
        .map(|s| evaluate_kernel(s, &RolagOptions::default(), false))
        .collect();
    let summary = summarize(&rows);
    assert_eq!(summary.kernels, 151);
    assert!(
        summary.rolag_applied > summary.llvm_applied,
        "RoLAG applies to more kernels ({} vs {})",
        summary.rolag_applied,
        summary.llvm_applied
    );
    assert!(
        summary.rolag_mean > summary.llvm_mean,
        "RoLAG's mean reduction is higher"
    );
    assert!(
        summary.oracle_mean > summary.rolag_mean,
        "the oracle keeps headroom over RoLAG"
    );
    // Within the paper's ballpark: RoLAG applies to 70..95 of 151.
    assert!((70..=95).contains(&summary.rolag_applied));
}
