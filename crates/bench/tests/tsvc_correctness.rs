//! The project's strongest end-to-end guarantee: for every TSVC kernel,
//! every stage of the evaluation pipeline (unroll ×8, CSE, cleanup, LLVM
//! rerolling, RoLAG) preserves observable behaviour — same return value,
//! same external-call trace, same final global memory — and every
//! intermediate module passes the verifier.

use rolag::{roll_module, RolagOptions};
use rolag_ir::interp::check_equivalence;
use rolag_ir::verify::verify_module;
use rolag_reroll::reroll_module;
use rolag_suites::tsvc::{all_kernels, build_kernel_module};
use rolag_transforms::{cleanup_module, cse_module, unroll_module};

#[test]
fn every_kernel_pipeline_stage_is_behaviour_preserving() {
    let mut failures: Vec<String> = Vec::new();
    for spec in all_kernels() {
        let rolled = build_kernel_module(&spec);

        let mut base = rolled.clone();
        unroll_module(&mut base, 8);
        cse_module(&mut base);
        cleanup_module(&mut base);
        if let Err(e) = verify_module(&base) {
            failures.push(format!("{}: unrolled does not verify: {e:?}", spec.name));
            continue;
        }
        if let Err(msg) = check_equivalence(&rolled, &base, spec.name, &[]) {
            failures.push(format!(
                "{}: unroll+cse changed behaviour: {msg}",
                spec.name
            ));
            continue;
        }

        let mut llvm = base.clone();
        reroll_module(&mut llvm);
        cleanup_module(&mut llvm);
        if let Err(e) = verify_module(&llvm) {
            failures.push(format!("{}: rerolled does not verify: {e:?}", spec.name));
            continue;
        }
        if let Err(msg) = check_equivalence(&base, &llvm, spec.name, &[]) {
            failures.push(format!("{}: rerolling changed behaviour: {msg}", spec.name));
            continue;
        }

        let mut rolag_m = base.clone();
        roll_module(&mut rolag_m, &RolagOptions::default());
        cleanup_module(&mut rolag_m);
        if let Err(e) = verify_module(&rolag_m) {
            failures.push(format!("{}: rolled does not verify: {e:?}", spec.name));
            continue;
        }
        if let Err(msg) = check_equivalence(&base, &rolag_m, spec.name, &[]) {
            failures.push(format!("{}: RoLAG changed behaviour: {msg}", spec.name));
        }
    }
    assert!(
        failures.is_empty(),
        "{} kernels failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn ablation_options_also_preserve_behaviour() {
    // The no-special-nodes configuration must be just as sound.
    let opts = RolagOptions::no_special_nodes();
    let mut failures: Vec<String> = Vec::new();
    for spec in all_kernels().into_iter().take(40) {
        let rolled = build_kernel_module(&spec);
        let mut base = rolled.clone();
        unroll_module(&mut base, 8);
        cse_module(&mut base);
        cleanup_module(&mut base);
        let mut m = base.clone();
        roll_module(&mut m, &opts);
        if let Err(msg) = check_equivalence(&base, &m, spec.name, &[]) {
            failures.push(format!("{}: {msg}", spec.name));
        }
    }
    assert!(failures.is_empty(), "{failures:?}");
}
