//! §V-D — performance overhead of loop rolling on TSVC, measured as the
//! ratio of dynamic instruction counts before/after RoLAG.
//!
//! Paper reference: an average slowdown of ×0.8 (rolled code re-executes
//! loop control per iteration, and TSVC was designed to reward unrolling).
//!
//! Usage: `cargo run --release -p rolag-bench --bin perf_overhead`

use rolag::RolagOptions;
use rolag_bench::report::write_csv;
use rolag_bench::tsvc_eval::evaluate_tsvc;

fn main() {
    let rows = evaluate_tsvc(&RolagOptions::default(), true);

    println!("§V-D — dynamic-instruction overhead of RoLAG on TSVC");
    println!("{:-<64}", "");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "kernel", "steps before", "steps after", "rel perf"
    );
    let mut ratios = Vec::new();
    let mut csv_rows = Vec::new();
    for r in rows
        .iter()
        .filter(|r| r.rolag_rolled > 0 && r.steps_base > 0)
    {
        let rel = r.relative_performance();
        ratios.push(rel);
        println!(
            "{:<10} {:>12} {:>12} {:>10.3}",
            r.name, r.steps_base, r.steps_rolag, rel
        );
        csv_rows.push(format!(
            "{},{},{},{:.4}",
            r.name, r.steps_base, r.steps_rolag, rel
        ));
    }
    println!("{:-<64}", "");
    let mean = if ratios.is_empty() {
        1.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    };
    println!("average relative performance of rolled kernels: x{mean:.3}  (paper: x0.8)");

    match write_csv(
        "perf-overhead",
        "kernel,steps_before,steps_after,relative_performance",
        &csv_rows,
    ) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
