//! Fig. 19 — node-kind breakdown of profitable alignment graphs across
//! TSVC, plus the special-node ablation the section discusses.
//!
//! Paper reference: the breakdown follows Fig. 16's pattern; disabling the
//! special nodes drops profitable rolls from 84 to 19.
//!
//! Usage: `cargo run --release -p rolag-bench --bin fig19`

use rolag::{NodeKindCounts, RolagOptions};
use rolag_bench::report::{bar, write_csv};
use rolag_bench::tsvc_eval::{evaluate_tsvc, summarize};

fn main() {
    let rows = evaluate_tsvc(&RolagOptions::default(), false);
    let mut total = NodeKindCounts::default();
    for r in &rows {
        total += r.nodes;
    }
    let full = summarize(&rows);

    println!("Fig. 19 — node kinds in profitable alignment graphs (TSVC)");
    println!("{:-<70}", "");
    let max = total.rows().iter().map(|&(_, c)| c).max().unwrap_or(1) as f64;
    for (label, count) in total.rows() {
        println!("{label:<14} {count:>8}  |{}", bar(count as f64, max, 44));
    }
    println!("{:-<70}", "");

    // Ablation: disable the special nodes (§V-C: 84 -> 19 in the paper).
    let ablated_rows = evaluate_tsvc(&RolagOptions::no_special_nodes(), false);
    let ablated = summarize(&ablated_rows);
    println!(
        "profitable rolls: {} with special nodes, {} without (paper: 84 -> 19)",
        full.rolag_applied, ablated.rolag_applied
    );

    let mut csv_rows: Vec<String> = total
        .rows()
        .iter()
        .map(|(l, c)| format!("{l},{c}"))
        .collect();
    csv_rows.push(format!("rolls_with_special,{}", full.rolag_applied));
    csv_rows.push(format!("rolls_without_special,{}", ablated.rolag_applied));
    match write_csv("fig19-tsvc-nodes", "kind,count", &csv_rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
