//! Table I — code-size reductions on full programs (MiBench + SPEC 2017).
//!
//! Paper reference: reductions range from −0.7 KB to +87.9 KB; the best
//! percentage is povray at 2.7%; LLVM's rerolling never triggers.
//!
//! Usage: `cargo run --release -p rolag-bench --bin table1
//!         [--scale F] [--seed S]`
//!
//! `--scale 1.0` builds programs at the paper's full binary sizes (slow for
//! blender); the default 0.25 keeps the whole table under a minute while
//! preserving per-program proportions.

use rolag::RolagOptions;
use rolag_bench::report::{
    arg_value, cache_csv_header, cache_csv_row, stage_csv_header, stage_csv_row, write_csv,
};
use rolag_bench::table1_eval::evaluate_table1;

fn main() {
    let scale: f64 = arg_value("--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let seed: u64 = arg_value("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    println!("Table I — code reductions on full programs (scale {scale})");
    println!("{:-<86}", "");
    println!(
        "{:<9} {:<16} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "suite", "program", "size KB", "red. KB", "red. %", "rolled", "llvm", "cache%"
    );
    println!("{:-<95}", "");
    let rows = evaluate_table1(seed, scale, &RolagOptions::default());
    let mut csv_rows = Vec::new();
    for r in &rows {
        println!(
            "{:<9} {:<16} {:>12.1} {:>12.2} {:>8.2} {:>8} {:>8} {:>8.1}",
            r.suite,
            r.name,
            r.binary_kb,
            r.reduction_kb,
            r.reduction_pct,
            r.rolled_loops,
            r.llvm_rerolled,
            100.0 * r.cache_hit_rate()
        );
        csv_rows.push(format!(
            "{},{},{:.2},{:.3},{:.3},{},{},{},{},{},{:.4}",
            r.suite,
            r.name,
            r.binary_kb,
            r.reduction_kb,
            r.reduction_pct,
            r.rolled_loops,
            r.llvm_rerolled,
            r.functions,
            r.unique,
            r.cache_hits,
            r.cache_hit_rate()
        ));
    }
    println!("{:-<95}", "");
    let total_red: f64 = rows.iter().map(|r| r.reduction_kb).sum();
    let best = rows
        .iter()
        .max_by(|a, b| a.reduction_pct.partial_cmp(&b.reduction_pct).unwrap())
        .unwrap();
    println!(
        "total reduction: {total_red:.1} KB   best percentage: {} at {:.2}% (paper: povray 2.7%)",
        best.name, best.reduction_pct
    );
    println!(
        "LLVM rerolling triggered on {} programs (paper: never)",
        rows.iter().filter(|r| r.llvm_rerolled > 0).count()
    );

    let hits: u64 = rows.iter().map(|r| r.cache_hits).sum();
    let funcs: usize = rows.iter().map(|r| r.functions).sum();
    println!(
        "driver cache: {hits} hits over {funcs} functions ({:.1}%)",
        if funcs > 0 {
            100.0 * hits as f64 / funcs as f64
        } else {
            0.0
        }
    );

    match write_csv(
        "table1-programs",
        "suite,program,size_kb,reduction_kb,reduction_pct,rolled_loops,llvm_rerolled,functions,unique,cache_hits,cache_hit_rate",
        &csv_rows,
    ) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }

    let stage_rows: Vec<String> = rows
        .iter()
        .map(|r| stage_csv_row(&format!("{}/{}", r.suite, r.name), &r.timings))
        .collect();
    match write_csv("table1-stages", stage_csv_header(), &stage_rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write stage CSV: {e}"),
    }

    let cache_rows: Vec<String> = rows
        .iter()
        .map(|r| cache_csv_row(&format!("{}/{}", r.suite, r.name), &r.fixpoint_cache))
        .collect();
    match write_csv("table1-cache", cache_csv_header(), &cache_rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write cache CSV: {e}"),
    }
}
