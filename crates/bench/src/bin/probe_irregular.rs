//! Diagnostic: sweeps the lane count of an irregular-constant store run
//! and prints the measured size delta after RoLAG. Lane counts 10..18
//! commit under the estimate but measure negative — the profitability
//! false-positive zone reproduced from §V-A.
//!
//! Usage: `cargo run --release -p rolag-bench --bin probe_irregular`
use rolag::{roll_module, RolagOptions};
use rolag_lower::measure_module;
fn main() {
    for n in 6..=24 {
        let mut text = format!(
            "module \"p\"\nglobal @a : [{} x i32] = zero\nfunc @f() -> void {{\nentry:\n",
            n
        );
        // irregular constants (no progression)
        let consts = [
            37, -11, 93, 5, -72, 44, 18, -6, 81, 29, -54, 7, 63, -38, 92, 13, -27, 58, 3, -88, 41,
            76, -19, 66,
        ];
        #[allow(clippy::needless_range_loop)]
        for k in 0..n {
            text.push_str(&format!(
                "  %g{k} = gep i32, @a, i64 {k}\n  store i32 {}, %g{k}\n",
                consts[k]
            ));
        }
        text.push_str("  ret\n}\n");
        let m = rolag_ir::parser::parse_module(&text).unwrap();
        let base = measure_module(&m).code_footprint();
        let mut r = m.clone();
        let st = roll_module(&mut r, &RolagOptions::default());
        let after = measure_module(&r).code_footprint();
        println!(
            "n={n:2} rolled={} base={base} after={after} delta={}",
            st.rolled,
            base as i64 - after as i64
        );
    }
}
