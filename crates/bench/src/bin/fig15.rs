//! Fig. 15 — code-size reduction curve over the AnghaBench-like corpus.
//!
//! Paper reference: RoLAG achieves an average reduction of 9.12% on the
//! final object file across the ~3500 affected functions, with a tail of
//! negative outcomes from profitability false positives; LLVM's rerolling
//! affects fewer than 50 functions and is omitted from the figure.
//!
//! Usage: `cargo run --release -p rolag-bench --bin fig15
//!         [--functions N] [--seed S]`

use rolag::RolagOptions;
use rolag_bench::angha_eval::{evaluate_angha, summarize};
use rolag_bench::report::{
    arg_value, cache_csv_header, cache_csv_row, render_curve, sorted_desc, stage_csv_header,
    stage_csv_row, write_csv,
};
use rolag_suites::angha::AnghaConfig;

fn main() {
    let mut config = AnghaConfig::default();
    if let Some(n) = arg_value("--functions").and_then(|v| v.parse().ok()) {
        config.functions = n;
    }
    if let Some(s) = arg_value("--seed").and_then(|v| v.parse().ok()) {
        config.seed = s;
    }
    let rows = evaluate_angha(&config, &RolagOptions::default());
    let summary = summarize(&rows);

    let reductions: Vec<f64> = rows
        .iter()
        .filter(|r| r.affected())
        .map(|r| r.reduction())
        .collect();

    println!("Fig. 15 — AnghaBench code-size reduction curve");
    println!("{:-<70}", "");
    println!("{}", render_curve(&reductions, 12));
    println!("{:-<70}", "");
    println!(
        "functions: {}   affected: {}   LLVM-affected: {}  (paper: <50)",
        summary.functions, summary.affected, summary.llvm_affected
    );
    println!(
        "mean reduction over affected: {:.2}%  (paper: 9.12%)   range: {:.1}%..{:.1}%",
        summary.mean_reduction_affected, summary.worst_reduction, summary.best_reduction
    );

    let sorted = sorted_desc(&reductions);
    let csv_rows: Vec<String> = sorted
        .iter()
        .enumerate()
        .map(|(i, r)| format!("{i},{r:.4}"))
        .collect();
    match write_csv("fig15-angha-curve", "rank,reduction_pct", &csv_rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }

    // Aggregate stage timings per pattern family (a per-function dump would
    // be thousands of rows of noise at this corpus size).
    let mut by_kind: std::collections::BTreeMap<String, rolag::StageTimings> =
        std::collections::BTreeMap::new();
    for r in &rows {
        *by_kind.entry(format!("{:?}", r.kind)).or_default() += r.timings;
    }
    let stage_rows: Vec<String> = by_kind
        .iter()
        .map(|(kind, t)| stage_csv_row(kind, t))
        .collect();
    match write_csv("fig15-stages", stage_csv_header(), &stage_rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write stage CSV: {e}"),
    }

    // Fixpoint cache counters, aggregated the same way.
    let mut cache_by_kind: std::collections::BTreeMap<String, rolag::FixpointCacheStats> =
        std::collections::BTreeMap::new();
    for r in &rows {
        *cache_by_kind.entry(format!("{:?}", r.kind)).or_default() += r.cache;
    }
    let cache_rows: Vec<String> = cache_by_kind
        .iter()
        .map(|(kind, c)| cache_csv_row(kind, c))
        .collect();
    match write_csv("fig15-cache", cache_csv_header(), &cache_rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write cache CSV: {e}"),
    }
}
