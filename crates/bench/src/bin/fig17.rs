//! Fig. 17 — TSVC per-kernel code-size reduction bars: LLVM-style
//! rerolling vs RoLAG, after force-unrolling every inner loop by 8.
//!
//! Paper reference: LLVM rerolls 38 kernels (mean 13.69% across all 151);
//! RoLAG profitably rolls 84 (mean 23.4%).
//!
//! Usage: `cargo run --release -p rolag-bench --bin fig17
//!         [--no-special] [--flatten] [--extensions]`
//!
//! `--flatten` applies the loop-flattening post-pass the paper suggests as
//! an improvement; `--extensions` enables the select-chain future-work
//! configuration.

use rolag::RolagOptions;
use rolag_bench::report::{arg_flag, bar, stage_csv_header, stage_csv_row, write_csv};
use rolag_bench::tsvc_eval::{evaluate_tsvc, evaluate_tsvc_flattened, summarize};

fn main() {
    let opts = if arg_flag("--no-special") {
        RolagOptions::no_special_nodes()
    } else if arg_flag("--extensions") {
        RolagOptions::with_extensions()
    } else {
        RolagOptions::default()
    };
    let rows = if arg_flag("--flatten") {
        evaluate_tsvc_flattened(&opts, false)
    } else {
        evaluate_tsvc(&opts, false)
    };
    let summary = summarize(&rows);

    println!("Fig. 17 — TSVC code-size reduction (unroll x8 inputs)");
    println!("{:-<78}", "");
    let mut affected: Vec<_> = rows
        .iter()
        .filter(|r| r.llvm_rerolled > 0 || r.rolag_rolled > 0)
        .collect();
    affected.sort_by(|a, b| {
        b.rolag_reduction()
            .partial_cmp(&a.rolag_reduction())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    println!(
        "{:<10} {:>8} {:>8}   rolag reduction",
        "kernel", "llvm%", "rolag%"
    );
    for r in &affected {
        println!(
            "{:<10} {:>8.2} {:>8.2}   |{}",
            r.name,
            r.llvm_reduction(),
            r.rolag_reduction(),
            bar(r.rolag_reduction(), 80.0, 40)
        );
    }
    println!("{:-<78}", "");
    println!(
        "kernels: {}   LLVM applied: {}   RoLAG applied: {}",
        summary.kernels, summary.llvm_applied, summary.rolag_applied
    );
    println!(
        "mean across all {} kernels: LLVM {:.2}%  RoLAG {:.2}%   (paper: 13.69% / 23.4%)",
        summary.kernels, summary.llvm_mean, summary.rolag_mean
    );

    let csv_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{},{},{:.4},{:.4}",
                r.name,
                r.base,
                r.llvm,
                r.rolag,
                r.multi_block,
                r.llvm_reduction(),
                r.rolag_reduction()
            )
        })
        .collect();
    match write_csv(
        "fig17-tsvc-bars",
        "kernel,base_bytes,llvm_bytes,rolag_bytes,multi_block,llvm_pct,rolag_pct",
        &csv_rows,
    ) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }

    let stage_rows: Vec<String> = rows
        .iter()
        .map(|r| stage_csv_row(r.name, &r.timings))
        .collect();
    match write_csv("fig17-stages", stage_csv_header(), &stage_rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write stage CSV: {e}"),
    }
}
