//! Pass-ordering experiment (§V-A discussion): "choosing at which point in
//! the compilation pipeline loop rolling can be most effective is also an
//! important research topic."
//!
//! Compares RoLAG's TSVC results when it runs *before* the CSE+cleanup
//! pipeline (pristine unrolled input) vs *after* it (the paper's setup):
//! CSE deduplicates loop-invariant subexpressions across iterations, which
//! RoLAG tolerates (identical nodes) but which changes profitability.
//!
//! Usage: `cargo run --release -p rolag-bench --bin pass_order`

use rolag::RolagStats;
use rolag_bench::parallel::par_map;
use rolag_bench::pipelines::{run_pipeline, run_pipeline_with};
use rolag_bench::report::write_csv;
use rolag_lower::measure_module;
use rolag_passes::AnalysisManager;
use rolag_suites::tsvc::{all_kernels, build_kernel_module, KernelSpec};

struct OrderRow {
    name: &'static str,
    before_pct: f64,
    after_pct: f64,
    rolled_before: u64,
    rolled_after: u64,
}

/// The rolling stats of the (single) rolag pass in a pipeline run.
fn rolag_stats(report: &rolag_passes::RunReport) -> RolagStats {
    report
        .outcomes
        .iter()
        .find_map(|o| o.rolag)
        .expect("pipeline contains a rolag pass")
}

fn eval(spec: &KernelSpec) -> OrderRow {
    let rolled_src = build_kernel_module(spec);

    // Common unrolled input, measured after full cleanup for a fair base.
    let mut unrolled = rolled_src.clone();
    run_pipeline(&mut unrolled, "unroll<8>");

    // Variant A: RoLAG first, then CSE+cleanup.
    let mut a = unrolled.clone();
    let stats_a = rolag_stats(&run_pipeline(&mut a, "rolag,cse,cleanup"));

    // Variant B (the paper's order): CSE+cleanup, then RoLAG. The
    // analysis manager is shared across the measurement break.
    let mut b = unrolled.clone();
    let mut am = AnalysisManager::new();
    run_pipeline_with(&mut b, "cse,cleanup", &mut am, None);
    let base = measure_module(&b).code_footprint();
    let stats_b = rolag_stats(&run_pipeline_with(&mut b, "rolag,cleanup", &mut am, None));

    let pct = |m: &rolag_ir::Module| {
        let after = measure_module(m).code_footprint();
        if base == 0 {
            0.0
        } else {
            100.0 * (base as f64 - after as f64) / base as f64
        }
    };
    OrderRow {
        name: spec.name,
        before_pct: pct(&a),
        after_pct: pct(&b),
        rolled_before: stats_a.rolled,
        rolled_after: stats_b.rolled,
    }
}

fn main() {
    let rows = par_map(all_kernels(), eval);
    let n = rows.len() as f64;
    let mean_before: f64 = rows.iter().map(|r| r.before_pct).sum::<f64>() / n;
    let mean_after: f64 = rows.iter().map(|r| r.after_pct).sum::<f64>() / n;
    let applied_before = rows.iter().filter(|r| r.rolled_before > 0).count();
    let applied_after = rows.iter().filter(|r| r.rolled_after > 0).count();

    println!("Pass ordering on TSVC (reduction vs the post-CSE baseline)");
    println!("{:-<64}", "");
    println!("RoLAG before CSE : applied {applied_before:>3} kernels, mean {mean_before:>6.2}%");
    println!(
        "RoLAG after CSE  : applied {applied_after:>3} kernels, mean {mean_after:>6.2}%  (the paper's order)"
    );
    let diverging = rows
        .iter()
        .filter(|r| (r.rolled_before > 0) != (r.rolled_after > 0))
        .count();
    println!("kernels where the order changes the roll decision: {diverging}");

    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{:.3},{:.3},{},{}",
                r.name, r.before_pct, r.after_pct, r.rolled_before, r.rolled_after
            )
        })
        .collect();
    match write_csv(
        "pass-order",
        "kernel,rolag_before_cse_pct,rolag_after_cse_pct,rolled_before,rolled_after",
        &csv,
    ) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
