//! Fig. 18 — TSVC reduction curves: the oracle (the original rolled source,
//! before the forced ×8 unroll) vs RoLAG.
//!
//! Paper reference: oracle mean 55.5% vs RoLAG 23.4% — rerolling recovers a
//! large share of the unrolling bloat but headroom remains.
//!
//! Usage: `cargo run --release -p rolag-bench --bin fig18`

use rolag::RolagOptions;
use rolag_bench::report::{sorted_desc, write_csv};
use rolag_bench::tsvc_eval::{evaluate_tsvc, summarize};

fn main() {
    let rows = evaluate_tsvc(&RolagOptions::default(), false);
    let summary = summarize(&rows);

    let oracle: Vec<f64> = sorted_desc(
        &rows
            .iter()
            .map(|r| r.oracle_reduction())
            .collect::<Vec<_>>(),
    );
    let rolag: Vec<f64> =
        sorted_desc(&rows.iter().map(|r| r.rolag_reduction()).collect::<Vec<_>>());

    println!("Fig. 18 — oracle vs RoLAG reduction across the TSVC suite");
    println!("{:-<70}", "");
    println!("{:>6} {:>10} {:>10}", "rank", "oracle%", "rolag%");
    for i in (0..rows.len()).step_by(10) {
        println!("{:>6} {:>10.2} {:>10.2}", i, oracle[i], rolag[i]);
    }
    println!("{:-<70}", "");
    println!(
        "means across all {} kernels: oracle {:.2}%  RoLAG {:.2}%   (paper: 55.5% / 23.4%)",
        summary.kernels, summary.oracle_mean, summary.rolag_mean
    );

    let csv_rows: Vec<String> = (0..rows.len())
        .map(|i| format!("{i},{:.4},{:.4}", oracle[i], rolag[i]))
        .collect();
    match write_csv("fig18-tsvc-curve", "rank,oracle_pct,rolag_pct", &csv_rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
