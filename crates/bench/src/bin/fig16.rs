//! Fig. 16 — breakdown of node kinds used in profitable alignment graphs
//! across the AnghaBench-like corpus.
//!
//! Paper reference: matching nodes dominate, followed by identical values,
//! with every special node kind contributing.
//!
//! Usage: `cargo run --release -p rolag-bench --bin fig16 [--functions N]`

use rolag::{NodeKindCounts, RolagOptions};
use rolag_bench::angha_eval::evaluate_angha;
use rolag_bench::report::{arg_value, bar, write_csv};
use rolag_suites::angha::AnghaConfig;

fn main() {
    let mut config = AnghaConfig::default();
    if let Some(n) = arg_value("--functions").and_then(|v| v.parse().ok()) {
        config.functions = n;
    }
    let rows = evaluate_angha(&config, &RolagOptions::default());

    let mut total = NodeKindCounts::default();
    for r in &rows {
        total += r.nodes;
    }

    println!("Fig. 16 — node kinds in profitable alignment graphs (AnghaBench)");
    println!("{:-<70}", "");
    let max = total.rows().iter().map(|&(_, c)| c).max().unwrap_or(1) as f64;
    for (label, count) in total.rows() {
        println!("{label:<14} {count:>8}  |{}", bar(count as f64, max, 44));
    }
    println!("{:-<70}", "");
    println!("total nodes: {}", total.total());

    let csv_rows: Vec<String> = total
        .rows()
        .iter()
        .map(|(l, c)| format!("{l},{c}"))
        .collect();
    match write_csv("fig16-angha-nodes", "kind,count", &csv_rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
