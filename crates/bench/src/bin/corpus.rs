//! rolag-corpus — whole-corpus rolling dashboard over the streaming
//! pipeline.
//!
//! Rolls either an on-disk corpus (directory, `RLCP` container,
//! concatenated text, or NDJSON manifest — see `rolag_frontend::corpus`)
//! or a generated AnghaBench-like corpus streamed one function at a
//! time, through the bounded-memory batch driver, then emits a
//! dashboard to the terminal and as `results/corpus.{json,csv}` plus
//! `BENCH_corpus.json`.
//!
//! Usage:
//!   rolag-corpus [--generate N] [--seed S] [--corpus PATH]
//!                [--mem-budget N[K|M|G]] [--jobs N] [--no-memoize]
//!                [--write PATH] [--check-bench PATH]
//!
//! `--generate N` (default 1 000 000) streams N single-function modules
//! from the seeded AnghaBench-like generator without ever materializing
//! the corpus. `--corpus PATH` rolls external input instead. `--write
//! PATH` writes the generated corpus to an `RLCP` container and exits.
//! `--check-bench PATH` validates a previously written
//! `BENCH_corpus.json` against the schema and acceptance floors and
//! exits nonzero on violation (the CI gate).

use std::io::{self, Write};
use std::path::Path;
use std::process::ExitCode;

use rolag::RolagOptions;
use rolag_bench::report::{arg_flag, arg_value, write_csv};
use rolag_frontend::corpus::{
    open_corpus, roll_corpus, ContainerWriter, CorpusItem, CorpusIter, CorpusOptions, CorpusReport,
};
use rolag_ir::printer::print_module;
use rolag_serve::json::{escaped, parse, Json};
use rolag_suites::angha::{stream, AnghaConfig};

fn parse_mem_budget(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'K' | b'k') => (&s[..s.len() - 1], 1u64 << 10),
        Some(b'M' | b'm') => (&s[..s.len() - 1], 1u64 << 20),
        Some(b'G' | b'g') => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("invalid memory budget {s:?}"))?;
    n.checked_mul(mult)
        .filter(|&b| b > 0)
        .ok_or(format!("invalid memory budget {s:?}"))
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Streams the generated corpus as frontend items: one printed
/// single-function module per entry, produced lazily.
fn angha_items(config: &AnghaConfig) -> CorpusIter {
    Box::new(stream(config).enumerate().map(|(i, (name, _, m))| {
        Ok(CorpusItem {
            origin: format!("angha/{i}/{name}.rir"),
            bytes: print_module(&m).into_bytes(),
        })
    }))
}

fn write_container(config: &AnghaConfig, path: &str) -> io::Result<u64> {
    let file = std::fs::File::create(path)?;
    let mut w = ContainerWriter::new(io::BufWriter::new(file))?;
    let mut count = 0u64;
    for item in angha_items(config) {
        w.append(&item?.bytes)?;
        count += 1;
    }
    w.finish()?;
    Ok(count)
}

fn print_dashboard(source: &str, r: &CorpusReport, copts: &CorpusOptions) {
    println!("rolag-corpus — whole-corpus rolling dashboard");
    println!("{:-<70}", "");
    println!("source:      {source}");
    println!(
        "modules:     {}   parse failures: {}",
        r.items, r.parse_failures
    );
    println!(
        "functions:   {}   rolled: {} ({:.2}%)   skipped: {} ({:.2}%)",
        r.functions,
        r.changed,
        100.0 * r.rolled_fraction(),
        r.skipped,
        if r.functions + r.skipped == 0 {
            0.0
        } else {
            100.0 * r.skipped as f64 / (r.functions + r.skipped) as f64
        }
    );
    println!(
        "loops:       {} rolled / {} attempted   tv rejected: {}   rescued: {}",
        r.stats.rolled, r.stats.attempted, r.stats.tv_rejected, r.stats.rescued
    );
    println!(
        "memoization: {} cache hits, {} store replays",
        r.cache_hits, r.store_hits
    );
    println!(
        "size:        {} -> {} bytes   ({} saved, {:.2}%)",
        r.stats.size_before,
        r.stats.size_after,
        r.bytes_saved(),
        r.stats.reduction_percent()
    );
    println!(
        "throughput:  {:.1} funcs/s   wall {:.2} s   batches: {}",
        r.funcs_per_sec(),
        r.wall_ns as f64 / 1e9,
        r.batches
    );
    println!(
        "memory:      peak RSS {:.1} MiB   budget {:.1} MiB   batch input ~{:.1} MiB",
        mib(r.peak_rss_bytes),
        mib(copts.mem_budget),
        mib(copts.batch_budget())
    );
    if !r.skip_reasons.is_empty() {
        println!("skip reasons:");
        for (code, n) in &r.skip_reasons {
            println!("  {code}: {n}");
        }
    }
    for d in &r.diagnostics {
        eprintln!("{d}");
    }
}

fn bench_json(source: &str, r: &CorpusReport, copts: &CorpusOptions) -> String {
    let mut skip = String::new();
    for (i, (code, n)) in r.skip_reasons.iter().enumerate() {
        if i > 0 {
            skip.push_str(", ");
        }
        skip.push_str(&format!("{}: {n}", escaped(code)));
    }
    format!(
        "{{\n  \"bench\": \"corpus\",\n  \"workload\": {{\n    \"source\": {source},\n    \
         \"modules\": {items},\n    \"functions\": {functions},\n    \"bytes_in\": {bytes_in}\n  \
         }},\n  \"config\": {{\n    \"mem_budget_bytes\": {mem_budget},\n    \"jobs\": {jobs},\n    \
         \"batches\": {batches},\n    \"batch_input_bytes\": {batch_bytes}\n  }},\n  \
         \"rolling\": {{\n    \"changed_functions\": {changed},\n    \"rolled_fraction\": \
         {fraction:.6},\n    \"rolled_loops\": {rolled},\n    \"attempted\": {attempted},\n    \
         \"tv_rejected\": {tv_rejected},\n    \"rescued\": {rescued},\n    \"skipped_functions\": \
         {skipped},\n    \"skip_reasons\": {{{skip}}},\n    \"cache_hits\": {cache_hits},\n    \
         \"store_hits\": {store_hits},\n    \"parse_failures\": {parse_failures}\n  }},\n  \
         \"size\": {{\n    \"before\": {before},\n    \"after\": {after},\n    \"bytes_saved\": \
         {saved},\n    \"reduction_percent\": {reduction:.4}\n  }},\n  \"perf\": {{\n    \
         \"wall_ns\": {wall_ns},\n    \"funcs_per_sec\": {fps:.2},\n    \"peak_rss_bytes\": \
         {rss}\n  }}\n}}\n",
        source = escaped(source),
        items = r.items,
        functions = r.functions,
        bytes_in = r.bytes_in,
        mem_budget = copts.mem_budget,
        jobs = copts.effective_jobs(),
        batches = r.batches,
        batch_bytes = copts.batch_budget(),
        changed = r.changed,
        fraction = r.rolled_fraction(),
        rolled = r.stats.rolled,
        attempted = r.stats.attempted,
        tv_rejected = r.stats.tv_rejected,
        rescued = r.stats.rescued,
        skipped = r.skipped,
        cache_hits = r.cache_hits,
        store_hits = r.store_hits,
        parse_failures = r.parse_failures,
        before = r.stats.size_before,
        after = r.stats.size_after,
        saved = r.bytes_saved(),
        reduction = r.stats.reduction_percent(),
        wall_ns = r.wall_ns,
        fps = r.funcs_per_sec(),
        rss = r.peak_rss_bytes,
    )
}

fn csv_rows(r: &CorpusReport, copts: &CorpusOptions) -> Vec<String> {
    let mut rows = vec![
        format!("modules,{}", r.items),
        format!("parse_failures,{}", r.parse_failures),
        format!("functions,{}", r.functions),
        format!("changed_functions,{}", r.changed),
        format!("rolled_fraction,{:.6}", r.rolled_fraction()),
        format!("skipped_functions,{}", r.skipped),
        format!("rolled_loops,{}", r.stats.rolled),
        format!("attempted,{}", r.stats.attempted),
        format!("tv_rejected,{}", r.stats.tv_rejected),
        format!("rescued,{}", r.stats.rescued),
        format!("cache_hits,{}", r.cache_hits),
        format!("store_hits,{}", r.store_hits),
        format!("batches,{}", r.batches),
        format!("bytes_in,{}", r.bytes_in),
        format!("size_before,{}", r.stats.size_before),
        format!("size_after,{}", r.stats.size_after),
        format!("bytes_saved,{}", r.bytes_saved()),
        format!("reduction_percent,{:.4}", r.stats.reduction_percent()),
        format!("funcs_per_sec,{:.2}", r.funcs_per_sec()),
        format!("wall_ns,{}", r.wall_ns),
        format!("peak_rss_bytes,{}", r.peak_rss_bytes),
        format!("mem_budget_bytes,{}", copts.mem_budget),
    ];
    for (code, n) in &r.skip_reasons {
        rows.push(format!("skip.{code},{n}"));
    }
    rows
}

/// Schema of `BENCH_corpus.json`: the members the acceptance criteria
/// and the CI gate read, with their types, plus the floors. Extra
/// members are allowed.
fn check_bench(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if doc.get("bench").and_then(Json::as_str) != Some("corpus") {
        return Err(format!("{path}: \"bench\" must be \"corpus\""));
    }
    let section = |name: &str| -> Result<&Json, String> {
        doc.get(name).ok_or(format!("{path}: missing \"{name}\""))
    };
    let num = |obj: &Json, section: &str, key: &str| -> Result<f64, String> {
        obj.get(key)
            .and_then(Json::as_num)
            .ok_or(format!("{path}: missing numeric {section}.{key}"))
    };
    let workload = section("workload")?;
    workload
        .get("source")
        .and_then(Json::as_str)
        .ok_or(format!("{path}: missing string workload.source"))?;
    for key in ["modules", "functions", "bytes_in"] {
        num(workload, "workload", key)?;
    }
    let config = section("config")?;
    for key in ["jobs", "batches"] {
        num(config, "config", key)?;
    }
    let mem_budget = num(config, "config", "mem_budget_bytes")?;
    let rolling = section("rolling")?;
    for key in [
        "rolled_loops",
        "attempted",
        "tv_rejected",
        "skipped_functions",
        "cache_hits",
        "store_hits",
    ] {
        num(rolling, "rolling", key)?;
    }
    let size = section("size")?;
    for key in ["before", "after", "reduction_percent"] {
        num(size, "size", key)?;
    }
    let perf = section("perf")?;
    num(perf, "perf", "wall_ns")?;

    // Floors: the run must have actually rolled something, panicked on
    // nothing, parsed everything, saved bytes, and stayed inside the
    // declared memory budget.
    let changed = num(rolling, "rolling", "changed_functions")?;
    if changed < 1.0 {
        return Err(format!(
            "{path}: rolling.changed_functions {changed} — at least one function must roll"
        ));
    }
    let fraction = num(rolling, "rolling", "rolled_fraction")?;
    if !(0.0..=1.0).contains(&fraction) {
        return Err(format!(
            "{path}: rolling.rolled_fraction {fraction} out of range"
        ));
    }
    let rescued = num(rolling, "rolling", "rescued")?;
    if rescued != 0.0 {
        return Err(format!(
            "{path}: rolling.rescued {rescued} — zero engine panics required"
        ));
    }
    let parse_failures = num(rolling, "rolling", "parse_failures")?;
    if parse_failures != 0.0 {
        return Err(format!(
            "{path}: rolling.parse_failures {parse_failures} — every module must parse"
        ));
    }
    let saved = num(size, "size", "bytes_saved")?;
    if saved < 1.0 {
        return Err(format!(
            "{path}: size.bytes_saved {saved} below the nonzero acceptance floor"
        ));
    }
    let fps = num(perf, "perf", "funcs_per_sec")?;
    if fps <= 0.0 {
        return Err(format!("{path}: perf.funcs_per_sec {fps} must be positive"));
    }
    let rss = num(perf, "perf", "peak_rss_bytes")?;
    if rss > 0.0 && rss > mem_budget {
        return Err(format!(
            "{path}: perf.peak_rss_bytes {rss} exceeds config.mem_budget_bytes {mem_budget}"
        ));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut config = AnghaConfig {
        functions: 1_000_000,
        ..AnghaConfig::default()
    };
    if let Some(n) = arg_value("--generate") {
        config.functions = n
            .parse()
            .map_err(|_| format!("invalid --generate value {n:?}"))?;
    }
    if let Some(s) = arg_value("--seed") {
        config.seed = s
            .parse()
            .map_err(|_| format!("invalid --seed value {s:?}"))?;
    }
    let mut copts = CorpusOptions::default();
    if let Some(b) = arg_value("--mem-budget") {
        copts.mem_budget = parse_mem_budget(&b)?;
    }
    if let Some(j) = arg_value("--jobs") {
        copts.jobs = j
            .parse()
            .map_err(|_| format!("invalid --jobs value {j:?}"))?;
    }
    copts.memoize = !arg_flag("--no-memoize");

    if let Some(out) = arg_value("--write") {
        let count = write_container(&config, &out).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {count} modules to {out}");
        return Ok(());
    }

    let corpus_path = arg_value("--corpus");
    let (source, items): (String, CorpusIter) = match &corpus_path {
        Some(p) => (
            p.clone(),
            open_corpus(Path::new(p)).map_err(|e| format!("opening {p}: {e}"))?,
        ),
        None => (
            format!(
                "angha-stream(seed=0x{:x}, functions={})",
                config.seed, config.functions
            ),
            angha_items(&config),
        ),
    };

    let opts = RolagOptions::default();
    let report =
        roll_corpus(items, &opts, &copts, |_, _| {}).map_err(|e| format!("rolling corpus: {e}"))?;

    print_dashboard(&source, &report, &copts);

    let json = bench_json(&source, &report, &copts);
    std::fs::create_dir_all("results").map_err(|e| format!("creating results/: {e}"))?;
    for path in ["results/corpus.json", "BENCH_corpus.json"] {
        let mut f = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        f.write_all(json.as_bytes())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    match write_csv("corpus", "metric,value", &csv_rows(&report, &copts)) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    if let Some(path) = arg_value("--check-bench") {
        return match check_bench(&path) {
            Ok(()) => {
                println!("{path}: OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rolag-corpus: {e}");
                ExitCode::from(1)
            }
        };
    }
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rolag-corpus: {e}");
            ExitCode::from(1)
        }
    }
}
