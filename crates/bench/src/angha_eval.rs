//! AnghaBench evaluation driver (§V-A, Figs. 15–16).

use rolag::{roll_module, FixpointCacheStats, NodeKindCounts, RolagOptions, StageTimings};
use rolag_lower::measure_module;
use rolag_reroll::reroll_module;
use rolag_suites::angha::{generate, AnghaConfig, PatternKind};

/// Per-function evaluation result.
#[derive(Debug, Clone)]
pub struct AnghaRow {
    /// Function name.
    pub name: String,
    /// Pattern family the generator used.
    pub kind: PatternKind,
    /// Measured size before (text + rodata).
    pub base: u64,
    /// Measured size after RoLAG.
    pub rolag: u64,
    /// Loops rolled.
    pub rolled: u64,
    /// Loops LLVM-style rerolling touched (expected ≈ 0: there are no
    /// partially unrolled loops in straight-line functions).
    pub llvm_rerolled: u64,
    /// Node kinds of profitable graphs.
    pub nodes: NodeKindCounts,
    /// Per-stage wall-clock breakdown of the RoLAG run.
    pub timings: StageTimings,
    /// Fixpoint cache counters of the RoLAG run.
    pub cache: FixpointCacheStats,
}

impl AnghaRow {
    /// Percentage reduction achieved by RoLAG.
    pub fn reduction(&self) -> f64 {
        if self.base == 0 {
            return 0.0;
        }
        100.0 * (self.base as f64 - self.rolag as f64) / self.base as f64
    }

    /// "Visibly affected" in the paper's sense: the object changed.
    pub fn affected(&self) -> bool {
        self.rolled > 0 || self.base != self.rolag
    }
}

/// Runs both techniques over the corpus (in parallel).
pub fn evaluate_angha(config: &AnghaConfig, opts: &RolagOptions) -> Vec<AnghaRow> {
    let corpus = generate(config);
    crate::parallel::par_map(corpus.entries, |(name, kind, module)| {
        let (name, kind, module) = (name.clone(), *kind, module.clone());
        {
            let base = measure_module(&module).code_footprint();

            let mut llvm_m = module.clone();
            let llvm_stats = reroll_module(&mut llvm_m);

            let mut rolag_m = module;
            let stats = roll_module(&mut rolag_m, opts);
            let rolag = measure_module(&rolag_m).code_footprint();

            AnghaRow {
                name,
                kind,
                base,
                rolag,
                rolled: stats.rolled,
                llvm_rerolled: llvm_stats.rerolled,
                nodes: stats.nodes,
                timings: stats.timings,
                cache: stats.cache,
            }
        }
    })
}

/// Aggregates matching §V-A's headline numbers.
#[derive(Debug, Clone, Copy)]
pub struct AnghaSummary {
    /// Total functions evaluated.
    pub functions: usize,
    /// Functions visibly affected by RoLAG.
    pub affected: usize,
    /// Functions LLVM's rerolling affected.
    pub llvm_affected: usize,
    /// Mean reduction % over affected functions (the paper reports 9.12%).
    pub mean_reduction_affected: f64,
    /// Best single-function reduction %.
    pub best_reduction: f64,
    /// Worst (most negative) single-function reduction %.
    pub worst_reduction: f64,
}

/// Computes the aggregates.
pub fn summarize(rows: &[AnghaRow]) -> AnghaSummary {
    let affected: Vec<&AnghaRow> = rows.iter().filter(|r| r.affected()).collect();
    let n = affected.len().max(1) as f64;
    AnghaSummary {
        functions: rows.len(),
        affected: affected.len(),
        llvm_affected: rows.iter().filter(|r| r.llvm_rerolled > 0).count(),
        mean_reduction_affected: affected.iter().map(|r| r.reduction()).sum::<f64>() / n,
        best_reduction: affected
            .iter()
            .map(|r| r.reduction())
            .fold(f64::NEG_INFINITY, f64::max),
        worst_reduction: affected
            .iter()
            .map(|r| r.reduction())
            .fold(f64::INFINITY, f64::min),
    }
}
