//! Minimal wall-clock benchmarking harness for the `benches/` targets
//! (stands in for the `criterion` crate, unavailable in the offline
//! build). Each measurement reports min / median / mean over a fixed
//! number of samples; results print as a table and are not persisted.

use std::time::{Duration, Instant};

/// One measured benchmark: label plus per-sample durations.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub label: String,
    /// Raw sample durations, sorted ascending.
    pub samples: Vec<Duration>,
}

impl Measurement {
    /// Fastest sample.
    pub fn min(&self) -> Duration {
        self.samples.first().copied().unwrap_or_default()
    }

    /// Median sample.
    pub fn median(&self) -> Duration {
        self.samples
            .get(self.samples.len() / 2)
            .copied()
            .unwrap_or_default()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// A named group of measurements, printed when [`BenchGroup::finish`] is
/// called (mirroring the criterion API shape the benches used before).
pub struct BenchGroup {
    name: String,
    samples: usize,
    results: Vec<Measurement>,
}

impl BenchGroup {
    /// Creates a group; `samples` timed runs per benchmark (after one
    /// untimed warm-up).
    pub fn new(name: impl Into<String>, samples: usize) -> Self {
        BenchGroup {
            name: name.into(),
            samples: samples.max(1),
            results: Vec::new(),
        }
    }

    /// Times `job()` directly.
    pub fn bench<R>(&mut self, label: &str, mut job: impl FnMut() -> R) {
        self.bench_batched(label, || (), |()| job());
    }

    /// Times `job(input)` where a fresh `input` comes from the untimed
    /// `setup` closure before every sample (for consuming jobs).
    pub fn bench_batched<T, R>(
        &mut self,
        label: &str,
        mut setup: impl FnMut() -> T,
        mut job: impl FnMut(T) -> R,
    ) {
        std::hint::black_box(job(setup())); // warm-up
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(job(input));
            samples.push(start.elapsed());
        }
        samples.sort();
        self.results.push(Measurement {
            label: label.to_string(),
            samples,
        });
    }

    /// Prints the table and returns the measurements.
    pub fn finish(self) -> Vec<Measurement> {
        println!("\n{}", self.name);
        println!("{:-<72}", "");
        println!(
            "{:<32} {:>12} {:>12} {:>12}",
            "benchmark", "min", "median", "mean"
        );
        for m in &self.results {
            println!(
                "{:<32} {:>12?} {:>12?} {:>12?}",
                m.label,
                m.min(),
                m.median(),
                m.mean()
            );
        }
        println!("{:-<72}", "");
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_orders_samples() {
        let mut g = BenchGroup::new("t", 5);
        g.bench("spin", || {
            let mut x = 0u64;
            for i in 0..1000 {
                x = x.wrapping_add(i);
            }
            x
        });
        let results = g.finish();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].samples.len(), 5);
        assert!(results[0].min() <= results[0].median());
        assert!(results[0].median() <= *results[0].samples.last().unwrap());
    }

    #[test]
    fn batched_setup_is_untimed_input() {
        let mut g = BenchGroup::new("t", 3);
        let mut setups = 0;
        g.bench_batched(
            "consume",
            || {
                setups += 1;
                vec![1u8; 64]
            },
            |v| v.len(),
        );
        // warm-up + 3 samples
        assert_eq!(setups, 4);
    }
}
