//! Terminal/CSV reporting helpers shared by the figure binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Renders a horizontal ASCII bar scaled to `max_width` characters.
pub fn bar(value: f64, max_value: f64, max_width: usize) -> String {
    if max_value <= 0.0 {
        return String::new();
    }
    let w = ((value.max(0.0) / max_value) * max_width as f64).round() as usize;
    "#".repeat(w.min(max_width))
}

/// Writes CSV rows (`header` then `rows`) under `results/<name>.csv`,
/// creating the directory if needed. Returns the path written.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<String> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    let _ = writeln!(out, "{header}");
    for r in rows {
        let _ = writeln!(out, "{r}");
    }
    fs::write(&path, out)?;
    Ok(path.display().to_string())
}

/// Sorted reduction curve: descending values with index, for the
/// "curve" figures (Fig. 15 / Fig. 18).
pub fn sorted_desc(values: &[f64]) -> Vec<f64> {
    let mut v = values.to_vec();
    v.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    v
}

/// Renders a compact textual curve: `buckets` sample points of the sorted
/// values.
pub fn render_curve(values: &[f64], buckets: usize) -> String {
    if values.is_empty() {
        return "(empty)".into();
    }
    let sorted = sorted_desc(values);
    let mut out = String::new();
    for k in 0..buckets {
        let idx = (k * (sorted.len() - 1)) / buckets.max(1).max(1);
        let idx = idx.min(sorted.len() - 1);
        let v = sorted[idx];
        let _ = writeln!(
            out,
            "  p{:>3} {:>8.2}% |{}",
            100 * k / buckets.max(1),
            v,
            bar(v.max(0.0), sorted[0].max(1.0), 40)
        );
    }
    out
}

/// Header matching [`stage_csv_row`], for the `*-stages.csv` dumps.
pub fn stage_csv_header() -> &'static str {
    "label,seeds_ns,align_ns,schedule_ns,codegen_ns,cost_ns,cleanup_ns,total_ns"
}

/// One per-stage timing row keyed by `label`.
pub fn stage_csv_row(label: &str, t: &rolag::StageTimings) -> String {
    format!(
        "{label},{},{},{},{},{},{},{}",
        t.seeds_ns,
        t.align_ns,
        t.schedule_ns,
        t.codegen_ns,
        t.cost_ns,
        t.cleanup_ns,
        t.total_ns()
    )
}

/// Header matching [`cache_csv_row`], for the `*-cache.csv` dumps.
pub fn cache_csv_header() -> &'static str {
    "label,cand_blocks_reused,cand_blocks_scanned,size_blocks_reused,\
     size_blocks_computed,memo_hits,memo_misses"
}

/// One fixpoint-cache counter row keyed by `label`.
pub fn cache_csv_row(label: &str, c: &rolag::FixpointCacheStats) -> String {
    format!(
        "{label},{},{},{},{},{},{}",
        c.cand_blocks_reused,
        c.cand_blocks_scanned,
        c.size_blocks_reused,
        c.size_blocks_computed,
        c.memo_hits,
        c.memo_misses
    )
}

/// Simple command-line flag lookup: `--key value`.
pub fn arg_value(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Presence of a bare flag.
pub fn arg_flag(key: &str) -> bool {
    std::env::args().any(|a| a == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(-3.0, 10.0, 10), "");
    }

    #[test]
    fn sorting_descends() {
        assert_eq!(sorted_desc(&[1.0, 3.0, 2.0]), vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn curve_renders_non_empty() {
        let c = render_curve(&[10.0, 5.0, 0.0, -2.0], 4);
        assert!(c.contains('%'));
    }
}
