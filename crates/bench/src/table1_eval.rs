//! Full-program evaluation driver (Table I: MiBench + SPEC CPU 2017).

use rolag::{roll_module_par, DriverOptions, FixpointCacheStats, RolagOptions, StageTimings};
use rolag_lower::measure_module;
use rolag_reroll::reroll_module;
use rolag_suites::programs::{build_program, ProgramSpec, TABLE1};

/// One evaluated Table I row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Suite label.
    pub suite: &'static str,
    /// Program name.
    pub name: &'static str,
    /// Measured program size in KB.
    pub binary_kb: f64,
    /// Size reduction in KB (positive = smaller binary).
    pub reduction_kb: f64,
    /// Size reduction in percent.
    pub reduction_pct: f64,
    /// Loops RoLAG rolled.
    pub rolled_loops: u64,
    /// Loops LLVM's rerolling touched (the paper: never triggered).
    pub llvm_rerolled: u64,
    /// Function definitions in the program.
    pub functions: usize,
    /// Structurally distinct definitions the driver actually rolled.
    pub unique: usize,
    /// Definitions served from the memoization cache.
    pub cache_hits: u64,
    /// Per-stage wall-clock breakdown of the RoLAG run.
    pub timings: StageTimings,
    /// Fixpoint cache counters of the RoLAG run.
    pub fixpoint_cache: FixpointCacheStats,
}

impl Table1Row {
    /// Fraction of definitions served from the cache, in `0.0..=1.0`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.functions == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.functions as f64
    }
}

/// Evaluates one program at the given scale.
///
/// Full programs are multi-function modules, so this goes through the
/// memoizing driver (`jobs: 1` — the table already runs programs in
/// parallel, so per-module fan-out would only oversubscribe cores).
pub fn evaluate_program(
    spec: &ProgramSpec,
    seed: u64,
    scale: f64,
    opts: &RolagOptions,
) -> Table1Row {
    let module = build_program(spec, seed, scale);
    let base = measure_module(&module).code_footprint();

    let mut llvm_m = module.clone();
    let llvm_stats = reroll_module(&mut llvm_m);

    let mut rolag_m = module;
    let report = roll_module_par(
        &mut rolag_m,
        opts,
        &DriverOptions {
            jobs: 1,
            memoize: true,
        },
    );
    let after = measure_module(&rolag_m).code_footprint();

    let reduction = base as f64 - after as f64;
    Table1Row {
        suite: spec.suite,
        name: spec.name,
        binary_kb: base as f64 / 1024.0,
        reduction_kb: reduction / 1024.0,
        reduction_pct: if base > 0 {
            100.0 * reduction / base as f64
        } else {
            0.0
        },
        rolled_loops: report.stats.rolled,
        llvm_rerolled: llvm_stats.rerolled,
        functions: report.functions,
        unique: report.unique,
        cache_hits: report.cache_hits,
        timings: report.stats.timings,
        fixpoint_cache: report.stats.cache,
    }
}

/// Evaluates the whole table (programs in parallel).
pub fn evaluate_table1(seed: u64, scale: f64, opts: &RolagOptions) -> Vec<Table1Row> {
    crate::parallel::par_map(TABLE1.to_vec(), |spec| {
        evaluate_program(spec, seed, scale, opts)
    })
}
