//! TSVC evaluation driver (§V-C, Figs. 17–19, and the §V-D performance
//! overhead experiment).
//!
//! Pipeline per kernel: build the rolled oracle → force-unroll ×8 and clean
//! up (the evaluated input, as in the paper) → apply LLVM-style rerolling
//! and RoLAG independently → measure object sizes and dynamic instruction
//! counts.

use rolag::{roll_module, NodeKindCounts, RolagOptions, StageTimings};
use rolag_ir::interp::Interpreter;
use rolag_ir::Module;
use rolag_lower::measure_module;
use rolag_reroll::reroll_module;
use rolag_suites::tsvc::{all_kernels, build_kernel_module, KernelSpec};
use rolag_transforms::{cleanup_module, cse_module, flatten_module, unroll_module};

/// The paper's unroll factor for TSVC (§V-C).
pub const UNROLL_FACTOR: u32 = 8;

/// Per-kernel evaluation result.
#[derive(Debug, Clone)]
pub struct TsvcRow {
    /// Kernel name.
    pub name: &'static str,
    /// Multi-basic-block kernel (unsupported by both techniques).
    pub multi_block: bool,
    /// Whether the unroller applied (single-block kernels only).
    pub unrolled: bool,
    /// Size of the evaluated (unrolled) input: text + rodata bytes.
    pub base: u64,
    /// Size of the original rolled kernel — the oracle of Fig. 18.
    pub oracle: u64,
    /// Size after LLVM-style rerolling.
    pub llvm: u64,
    /// Size after RoLAG.
    pub rolag: u64,
    /// Loops LLVM's technique rerolled.
    pub llvm_rerolled: u64,
    /// Loops RoLAG rolled.
    pub rolag_rolled: u64,
    /// Node kinds of RoLAG's profitable graphs.
    pub nodes: NodeKindCounts,
    /// Per-stage wall-clock breakdown of the RoLAG run.
    pub timings: StageTimings,
    /// Dynamic instruction count of the evaluated input.
    pub steps_base: u64,
    /// Dynamic instruction count after RoLAG.
    pub steps_rolag: u64,
}

impl TsvcRow {
    /// Percentage reduction for a variant (`base -> after`).
    pub fn reduction(&self, after: u64) -> f64 {
        if self.base == 0 {
            return 0.0;
        }
        100.0 * (self.base as f64 - after as f64) / self.base as f64
    }

    /// LLVM-rerolling reduction %.
    pub fn llvm_reduction(&self) -> f64 {
        self.reduction(self.llvm)
    }
    /// RoLAG reduction %.
    pub fn rolag_reduction(&self) -> f64 {
        self.reduction(self.rolag)
    }
    /// Oracle reduction %.
    pub fn oracle_reduction(&self) -> f64 {
        self.reduction(self.oracle)
    }
    /// Relative performance of the rolled code (1.0 = unchanged; the paper
    /// reports an average of ×0.8, i.e. rolled code is slower).
    pub fn relative_performance(&self) -> f64 {
        if self.steps_rolag == 0 {
            return 1.0;
        }
        self.steps_base as f64 / self.steps_rolag as f64
    }
}

fn footprint(m: &Module) -> u64 {
    measure_module(m).code_footprint()
}

fn dynamic_steps(m: &Module, entry: &str) -> u64 {
    let mut i = Interpreter::new(m).with_max_steps(10_000_000);
    match i.run(entry, &[]) {
        Ok(out) => out.steps,
        Err(_) => 0,
    }
}

/// Evaluates one kernel (optionally flattening RoLAG's nested loops, the
/// §V-C improvement).
pub fn evaluate_kernel_with(
    spec: &KernelSpec,
    opts: &RolagOptions,
    with_perf: bool,
    flatten: bool,
) -> TsvcRow {
    let rolled = build_kernel_module(spec);
    let oracle = footprint(&rolled);

    let mut base_m = rolled.clone();
    let outcomes = unroll_module(&mut base_m, UNROLL_FACTOR);
    // The surrounding -Os pipeline: CSE + fold + DCE, as in the paper's
    // setup where post-unroll optimizations disturb the unrolled pattern.
    cse_module(&mut base_m);
    cleanup_module(&mut base_m);
    let unrolled = outcomes
        .iter()
        .any(|o| matches!(o, rolag_transforms::UnrollOutcome::Unrolled { .. }));
    let base = footprint(&base_m);

    let mut llvm_m = base_m.clone();
    let llvm_stats = reroll_module(&mut llvm_m);
    cleanup_module(&mut llvm_m);
    let llvm = footprint(&llvm_m);

    let mut rolag_m = base_m.clone();
    let rolag_stats = roll_module(&mut rolag_m, opts);
    if flatten {
        flatten_module(&mut rolag_m);
    }
    cleanup_module(&mut rolag_m);
    let rolag = footprint(&rolag_m);

    let (steps_base, steps_rolag) = if with_perf {
        (
            dynamic_steps(&base_m, spec.name),
            dynamic_steps(&rolag_m, spec.name),
        )
    } else {
        (0, 0)
    };

    TsvcRow {
        name: spec.name,
        multi_block: spec.multi_block,
        unrolled,
        base,
        oracle,
        llvm,
        rolag,
        llvm_rerolled: llvm_stats.rerolled,
        rolag_rolled: rolag_stats.rolled,
        nodes: rolag_stats.nodes,
        timings: rolag_stats.timings,
        steps_base,
        steps_rolag,
    }
}

/// Evaluates one kernel with the paper's configuration (no flattening).
pub fn evaluate_kernel(spec: &KernelSpec, opts: &RolagOptions, with_perf: bool) -> TsvcRow {
    evaluate_kernel_with(spec, opts, with_perf, false)
}

/// Evaluates the whole suite (in parallel across kernels).
pub fn evaluate_tsvc(opts: &RolagOptions, with_perf: bool) -> Vec<TsvcRow> {
    crate::parallel::par_map(all_kernels(), |spec| evaluate_kernel(spec, opts, with_perf))
}

/// Evaluates the whole suite with the loop-flattening post-pass (§V-C's
/// suggested improvement).
pub fn evaluate_tsvc_flattened(opts: &RolagOptions, with_perf: bool) -> Vec<TsvcRow> {
    crate::parallel::par_map(all_kernels(), |spec| {
        evaluate_kernel_with(spec, opts, with_perf, true)
    })
}

/// Suite-level aggregates matching the numbers quoted in §V-C.
#[derive(Debug, Clone, Copy)]
pub struct TsvcSummary {
    /// Kernels in the suite.
    pub kernels: usize,
    /// Kernels where LLVM's rerolling applied.
    pub llvm_applied: usize,
    /// Kernels where RoLAG profitably rolled at least one loop.
    pub rolag_applied: usize,
    /// Mean LLVM reduction % across all kernels.
    pub llvm_mean: f64,
    /// Mean RoLAG reduction % across all kernels.
    pub rolag_mean: f64,
    /// Mean oracle reduction % across all kernels.
    pub oracle_mean: f64,
}

/// Computes suite aggregates.
pub fn summarize(rows: &[TsvcRow]) -> TsvcSummary {
    let n = rows.len().max(1) as f64;
    TsvcSummary {
        kernels: rows.len(),
        llvm_applied: rows.iter().filter(|r| r.llvm_rerolled > 0).count(),
        rolag_applied: rows.iter().filter(|r| r.rolag_rolled > 0).count(),
        llvm_mean: rows.iter().map(|r| r.llvm_reduction()).sum::<f64>() / n,
        rolag_mean: rows.iter().map(|r| r.rolag_reduction()).sum::<f64>() / n,
        oracle_mean: rows.iter().map(|r| r.oracle_reduction()).sum::<f64>() / n,
    }
}
