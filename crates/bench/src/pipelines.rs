//! Shared pipeline execution for the bench binaries: every experiment
//! that chains transforms goes through the `rolag-passes` manager with
//! one textual spec, instead of hand-calling the `*_module` entry points.
//!
//! Besides deleting per-binary dispatch, this gives each experiment the
//! cached [`AnalysisManager`] (effects tables computed once per run,
//! loop forests shared across passes) and its hit/miss counters for the
//! CSV dumps.

use rolag_ir::Module;
use rolag_passes::{
    AnalysisCacheStats, AnalysisManager, PassContext, PassManager, PassManagerOptions,
    PassRegistry, RunReport, TargetKind,
};

/// Runs `spec` (e.g. `"unroll<8>,cse,cleanup,rolag"`) over `module` in
/// place with a fresh analysis manager and returns the run report. The
/// module is verified after every pass.
///
/// Panics on a malformed spec or an inter-pass verification failure —
/// bench specs are hard-coded and bench inputs are expected to be sound,
/// so either is a bug worth a loud stop.
pub fn run_pipeline(module: &mut Module, spec: &str) -> RunReport {
    run_pipeline_with(module, spec, &mut AnalysisManager::new(), None)
}

/// [`run_pipeline`] without inter-pass verification, for *timed* bench
/// loops. The direct `*_module` pipelines the manager is measured against
/// never verify between transforms, so a timed managed run must not
/// either — the comparison would otherwise charge the manager for work
/// the baseline skips (this alone was a ~15% phantom "manager tax" on
/// the tsvc24 pipeline). Correctness phases keep using the verifying
/// [`run_pipeline`].
pub fn run_pipeline_timed(module: &mut Module, spec: &str) -> RunReport {
    run_pipeline_inner(module, spec, &mut AnalysisManager::new(), None, false)
}

/// [`run_pipeline`] against a caller-owned [`AnalysisManager`], so
/// multi-phase experiments (transform, measure, transform again) keep
/// their analysis cache across phases. `jobs` selects the parallel
/// memoizing driver for rolag passes.
pub fn run_pipeline_with(
    module: &mut Module,
    spec: &str,
    am: &mut AnalysisManager,
    jobs: Option<usize>,
) -> RunReport {
    run_pipeline_inner(module, spec, am, jobs, true)
}

fn run_pipeline_inner(
    module: &mut Module,
    spec: &str,
    am: &mut AnalysisManager,
    jobs: Option<usize>,
    verify_each: bool,
) -> RunReport {
    let mut pm = PassManager::with_options(PassManagerOptions {
        verify_each,
        print_changed: false,
    });
    pm.add_all(
        PassRegistry::builtin()
            .parse_pipeline(spec)
            .unwrap_or_else(|e| panic!("bad bench pipeline spec `{spec}`: {e}")),
    );
    let mut cx = PassContext::new(TargetKind::default());
    cx.jobs = jobs;
    match pm.run(module, am, &mut cx) {
        Ok(report) => report,
        Err(err) => panic!(
            "pipeline `{spec}` broke the module after `{}`: {}",
            err.pass,
            err.errors.join("; ")
        ),
    }
}

/// Header matching [`analysis_csv_row`], for the `*-analysis.csv` dumps.
pub fn analysis_csv_header() -> &'static str {
    "label,dom_hits,dom_misses,loops_hits,loops_misses,deps_hits,deps_misses,\
     alias_hits,alias_misses,effects_hits,effects_misses,hit_rate"
}

/// One analysis-cache counter row keyed by `label`.
pub fn analysis_csv_row(label: &str, c: &AnalysisCacheStats) -> String {
    let mut row = label.to_string();
    for (_, n) in c.rows() {
        row.push_str(&format!(",{n}"));
    }
    row.push_str(&format!(",{:.4}", c.hit_rate()));
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::parser::parse_module;

    #[test]
    fn runs_a_spec_and_reports_cache_counters() {
        let mut m = parse_module(
            "module \"t\"\nfunc @f(i32 %p0) -> i32 {\nentry:\n  %1 = add i32 %p0, i32 0\n  %2 = add i32 %p0, i32 0\n  ret %1\n}\n",
        )
        .unwrap();
        let report = run_pipeline(&mut m, "cleanup,cse,cleanup");
        assert_eq!(report.outcomes.len(), 3);
        // The effects table is computed once and shared by both cleanups.
        assert_eq!(report.cache.effects_misses, 1);
        assert!(report.cache.effects_hits >= 1);
        let row = analysis_csv_row("t", &report.cache);
        assert!(row.starts_with("t,"));
        assert_eq!(
            row.split(',').count(),
            analysis_csv_header().split(',').count()
        );
    }
}
