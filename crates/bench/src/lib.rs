//! # rolag-bench
//!
//! The evaluation harness: drivers that regenerate every table and figure
//! of "Loop Rolling for Code Size Reduction" (CGO 2022) over the project's
//! synthetic substrates, plus reporting helpers.
//!
//! Binaries (one per experiment):
//!
//! * `table1` — MiBench/SPEC full-program reductions (Table I);
//! * `fig15`/`fig16` — AnghaBench reduction curve and node breakdown;
//! * `fig17`/`fig18`/`fig19` — TSVC bars, oracle curve, node breakdown;
//! * `perf_overhead` — §V-D dynamic-instruction overhead.

#![warn(missing_docs)]

pub mod angha_eval;
pub mod harness;
pub mod parallel;
pub mod pipelines;
pub mod report;
pub mod table1_eval;
pub mod tsvc_eval;
