//! Re-export of the shared worker pool.
//!
//! The original per-slot-mutex implementation lived here; it was promoted
//! to the dependency-free [`rolag_par`] crate (fixing panic propagation and
//! dropping the per-slot locks on the way) so the pass driver and the
//! benchmark harness share one pool. This shim keeps the old
//! `rolag_bench::parallel::par_map` path working.

pub use rolag_par::{effective_jobs, par_map, par_map_with};
