//! A dependency-free ordered parallel map over worker threads.

/// Runs `job` over `items` on all available cores, preserving order.
pub fn par_map<T: Send + Sync, R: Send>(items: Vec<T>, job: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = job(&items[i]);
                **slots[i].lock().expect("slot") = Some(r);
            });
        }
    });
    drop(slots);
    results.into_iter().map(|r| r.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert!(par_map(Vec::<u8>::new(), |&x| x).is_empty());
        assert_eq!(par_map(vec![7u8], |&x| x + 1), vec![8]);
    }
}
