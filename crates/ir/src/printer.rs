//! Textual IR printer.
//!
//! The format round-trips through the parser in [`crate::parser`]. Example:
//!
//! ```text
//! module "demo"
//!
//! global @tab : [3 x i32] = ints i32 [1, 2, 3]
//! declare @ext(ptr) -> void readwrite
//!
//! func @f(i32 %p0, ptr %p1) -> i32 {
//! entry:
//!   %2 = add i32 %p0, i32 1
//!   store %2, %p1
//!   ret %2
//! }
//! ```
//!
//! Instruction results are numbered sequentially per function (parameters
//! first), so printing is stable across parse/print round trips.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::function::Function;
use crate::inst::{InstExtra, InstId, Opcode};
use crate::module::{GlobalInit, Module};
use crate::parser::is_plain_symbol;
use crate::value::{ValueDef, ValueId};

/// Escapes a string for a double-quoted literal, inverting the lexer's
/// escape decoding.
fn escape_str(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\0' => out.push_str("\\0"),
            c if (c as u32) < 0x20 || c as u32 == 0x7f => {
                let _ = write!(out, "\\x{:02x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Prints a symbol name for use after `@`/`%`: bare when it is a plain
/// identifier, quoted (with escapes) otherwise.
fn sym(name: &str) -> String {
    if is_plain_symbol(name) {
        name.to_string()
    } else {
        format!("\"{}\"", escape_str(name))
    }
}

/// Prints a float constant from its bit pattern. Finite values use the
/// shortest decimal that round-trips; non-finite values (infinities, NaNs
/// with payloads) use a bit-exact `0x...` spelling the parser understands.
fn float_literal(bits: u64) -> String {
    let value = f64::from_bits(bits);
    if value.is_finite() {
        // `{:?}` keeps a trailing `.0` so the parser can tell floats from
        // ints, and prints the shortest decimal that parses back to the
        // same bits.
        format!("{value:?}")
    } else {
        format!("0x{bits:016x}")
    }
}

/// Prints a whole module as parseable IR text.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module \"{}\"", escape_str(&module.name));
    for g in module.global_ids() {
        let _ = writeln!(out, "{}", print_global(module, g));
    }
    for f in module.func_ids() {
        out.push('\n');
        out.push_str(&print_function(module, module.func(f)));
    }
    out
}

/// Prints one global definition as a single parseable IR line (no trailing
/// newline). Stable by construction — cache keys content-address globals
/// through this rendering.
pub fn print_global(module: &Module, g: crate::GlobalId) -> String {
    let data = module.global(g);
    let kind = if data.is_const { "const" } else { "global" };
    let init = match &data.init {
        GlobalInit::Zero => "zero".to_string(),
        GlobalInit::Ints { elem_ty, values } => {
            let vals: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            format!(
                "ints {} [{}]",
                module.types.display(*elem_ty),
                vals.join(", ")
            )
        }
        GlobalInit::Bytes(bytes) => {
            let vals: Vec<String> = bytes.iter().map(|b| b.to_string()).collect();
            format!("bytes [{}]", vals.join(", "))
        }
    };
    format!(
        "{kind} @{} : {} = {init}",
        sym(&data.name),
        module.types.display(data.ty)
    )
}

/// Prints one function (or declaration) as parseable IR text.
pub fn print_function(module: &Module, func: &Function) -> String {
    let types = &module.types;
    let mut out = String::new();
    let params: Vec<String> = func
        .param_tys()
        .iter()
        .enumerate()
        .map(|(i, &ty)| format!("{} %p{}", types.display(ty), i))
        .collect();
    if func.is_declaration {
        let _ = writeln!(
            out,
            "declare @{}({}) -> {} {}",
            sym(&func.name),
            params.join(", "),
            types.display(func.ret_ty),
            func.effects.mnemonic()
        );
        return out;
    }
    let _ = writeln!(
        out,
        "func @{}({}) -> {} {{",
        sym(&func.name),
        params.join(", "),
        types.display(func.ret_ty)
    );

    // Sequential numbering: parameters take 0..n, instruction results follow.
    let mut names: HashMap<ValueId, String> = HashMap::new();
    for (i, &p) in func.params().iter().enumerate() {
        names.insert(p, format!("%p{i}"));
    }
    let mut next = func.params().len();
    for b in func.block_ids() {
        for &i in &func.block(b).insts {
            let ty = func.inst(i).ty;
            if !matches!(types.kind(ty), crate::types::TypeKind::Void) {
                names.insert(func.inst_result(i), format!("%{next}"));
                next += 1;
            }
        }
    }

    for b in func.block_ids() {
        let _ = writeln!(out, "{}:", func.block(b).name);
        for &i in &func.block(b).insts {
            let _ = writeln!(out, "  {}", print_inst(module, func, i, &names));
        }
    }
    out.push_str("}\n");
    out
}

fn operand(
    module: &Module,
    func: &Function,
    v: ValueId,
    names: &HashMap<ValueId, String>,
) -> String {
    match func.value(v) {
        ValueDef::Inst(_) | ValueDef::Param { .. } => names
            .get(&v)
            .cloned()
            .unwrap_or_else(|| format!("%?{}", v.index())),
        ValueDef::ConstInt { ty, value } => {
            format!("{} {}", module.types.display(*ty), value)
        }
        ValueDef::ConstFloat { ty, bits } => {
            format!("{} {}", module.types.display(*ty), float_literal(*bits))
        }
        ValueDef::GlobalAddr(g) => format!("@{}", sym(&module.global(*g).name)),
        ValueDef::FuncAddr(f) => format!("@{}", sym(&module.func(*f).name)),
        ValueDef::Undef(ty) => format!("{} undef", module.types.display(*ty)),
    }
}

/// Prints a single instruction (without trailing newline).
pub fn print_inst(
    module: &Module,
    func: &Function,
    inst: InstId,
    names: &HashMap<ValueId, String>,
) -> String {
    let types = &module.types;
    let data = func.inst(inst);
    let op = |v: ValueId| operand(module, func, v, names);
    let result = names.get(&func.inst_result(inst));
    let prefix = match result {
        Some(name) => format!("{name} = "),
        None => String::new(),
    };
    let body = match (&data.opcode, &data.extra) {
        (Opcode::Icmp, InstExtra::Icmp(p)) => format!(
            "icmp {} {}, {}",
            p.mnemonic(),
            op(data.operands[0]),
            op(data.operands[1])
        ),
        (Opcode::Fcmp, InstExtra::Fcmp(p)) => format!(
            "fcmp {} {}, {}",
            p.mnemonic(),
            op(data.operands[0]),
            op(data.operands[1])
        ),
        (Opcode::Gep, InstExtra::Gep { elem_ty }) => {
            let idx: Vec<String> = data.operands[1..].iter().map(|&v| op(v)).collect();
            format!(
                "gep {}, {}, {}",
                types.display(*elem_ty),
                op(data.operands[0]),
                idx.join(", ")
            )
        }
        (Opcode::Call, InstExtra::Call { callee }) => {
            let args: Vec<String> = data.operands.iter().map(|&v| op(v)).collect();
            format!(
                "call {} @{}({})",
                types.display(data.ty),
                sym(&module.func(*callee).name),
                args.join(", ")
            )
        }
        (Opcode::Phi, InstExtra::Phi { incoming }) => {
            let arms: Vec<String> = data
                .operands
                .iter()
                .zip(incoming)
                .map(|(&v, &b)| format!("[ {}, {} ]", op(v), func.block(b).name))
                .collect();
            format!("phi {} {}", types.display(data.ty), arms.join(", "))
        }
        (Opcode::Br, InstExtra::Br { dest }) => {
            format!("br {}", func.block(*dest).name)
        }
        (
            Opcode::CondBr,
            InstExtra::CondBr {
                then_dest,
                else_dest,
            },
        ) => format!(
            "condbr {}, {}, {}",
            op(data.operands[0]),
            func.block(*then_dest).name,
            func.block(*else_dest).name
        ),
        (Opcode::Alloca, InstExtra::Alloca { elem_ty }) => {
            if data.operands.is_empty() {
                format!("alloca {}", types.display(*elem_ty))
            } else {
                format!(
                    "alloca {}, {}",
                    types.display(*elem_ty),
                    op(data.operands[0])
                )
            }
        }
        (Opcode::Load, _) => format!("load {}, {}", types.display(data.ty), op(data.operands[0])),
        (Opcode::Store, _) => format!("store {}, {}", op(data.operands[0]), op(data.operands[1])),
        (Opcode::Select, _) => format!(
            "select {} {}, {}, {}",
            types.display(data.ty),
            op(data.operands[0]),
            op(data.operands[1]),
            op(data.operands[2])
        ),
        (Opcode::Ret, _) => {
            if data.operands.is_empty() {
                "ret".to_string()
            } else {
                format!("ret {}", op(data.operands[0]))
            }
        }
        (Opcode::Unreachable, _) => "unreachable".to_string(),
        (opcode, _) if opcode.is_cast() => format!(
            "{} {} {}",
            opcode.mnemonic(),
            types.display(data.ty),
            op(data.operands[0])
        ),
        (opcode, _) if opcode.is_binop() => format!(
            "{} {} {}, {}",
            opcode.mnemonic(),
            types.display(data.ty),
            op(data.operands[0]),
            op(data.operands[1])
        ),
        (opcode, extra) => panic!("cannot print {opcode:?} with extra {extra:?}"),
    };
    format!("{prefix}{body}")
}

/// Convenience: prints a function with fresh numbering (for debugging).
pub fn dump_function(module: &Module, func: &Function) -> String {
    print_function(module, func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::function::Effects;
    use crate::inst::IntPredicate;

    #[test]
    fn print_simple_module() {
        let mut m = Module::new("demo");
        let i32t = m.types.i32();
        let ptr = m.types.ptr();
        let void = m.types.void();
        m.declare_func("ext", vec![ptr], void, Effects::ReadWrite);
        let mut fb = FuncBuilder::new(&mut m, "f", vec![i32t, ptr], i32t);
        let a = fb.param(0);
        let p = fb.param(1);
        fb.block("entry");
        let (ext, ext_ret) = fb.callee("ext");
        fb.ins(|b| {
            let one = b.i32_const(1);
            let s = b.add(a, one);
            let g = b.gep(b.types.i32(), p, &[s]);
            b.store(s, g);
            b.call(ext, ext_ret, &[p]);
            let c = b.icmp(IntPredicate::Slt, s, a);
            let sel = b.select(c, s, a);
            b.ret(Some(sel));
        });
        fb.finish();
        let text = print_module(&m);
        assert!(text.contains("module \"demo\""));
        assert!(text.contains("declare @ext(ptr %p0) -> void readwrite"));
        assert!(text.contains("%2 = add i32 %p0, i32 1"));
        assert!(text.contains("%3 = gep i32, %p1, %2"));
        assert!(text.contains("store %2, %3"));
        assert!(text.contains("call void @ext(%p1)"));
        assert!(text.contains("%4 = icmp slt %2, %p0"));
        assert!(text.contains("%5 = select i32 %4, %2, %p0"));
        assert!(text.contains("ret %5"));
    }

    #[test]
    fn print_globals() {
        let mut m = Module::new("g");
        let arr = m.types.array(m.types.i32(), 3);
        m.add_global(crate::module::GlobalData {
            name: "tab".into(),
            ty: arr,
            init: GlobalInit::Ints {
                elem_ty: m.types.i32(),
                values: vec![1, 2, 3],
            },
            is_const: true,
        });
        let text = print_module(&m);
        assert!(text.contains("const @tab : [3 x i32] = ints i32 [1, 2, 3]"));
    }

    #[test]
    fn print_float_constants_distinctly() {
        let mut m = Module::new("f");
        let d = m.types.double();
        let mut fb = FuncBuilder::new(&mut m, "f", vec![], d);
        fb.block("entry");
        fb.ins(|b| {
            let c = b.fconst(b.types.double(), 2.0);
            let x = b.fadd(c, c);
            b.ret(Some(x));
        });
        fb.finish();
        let text = print_module(&m);
        assert!(text.contains("fadd double double 2.0, double 2.0"));
    }
}
