//! Instruction builders.
//!
//! [`Builder`] emits instructions into an existing function (used by
//! transformation passes); [`FuncBuilder`] stages a brand-new function and
//! adds it to a module on [`FuncBuilder::finish`] (used by front ends, tests,
//! and the benchmark suites).

use crate::block::BlockId;
use crate::function::Function;
use crate::inst::{FloatPredicate, InstData, InstExtra, InstId, IntPredicate, Opcode};
use crate::module::Module;
use crate::types::{TypeId, TypeStore};
use crate::value::{FuncId, GlobalId, ValueId};

/// Emits instructions into an existing function.
///
/// The builder tracks a *current block*; every emitted instruction is
/// appended to it. Result types are derived from operands where possible and
/// taken explicitly otherwise.
pub struct Builder<'a> {
    /// The function being edited.
    pub func: &'a mut Function,
    /// The module's type store.
    pub types: &'a mut TypeStore,
    cur: Option<BlockId>,
}

impl<'a> Builder<'a> {
    /// Creates a builder over `func` using `types`, with no current block.
    pub fn on(func: &'a mut Function, types: &'a mut TypeStore) -> Self {
        Builder {
            func,
            types,
            cur: None,
        }
    }

    /// Creates a new block and makes it current.
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        let b = self.func.add_block(name);
        self.cur = Some(b);
        b
    }

    /// Switches the insertion point to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = Some(block);
    }

    /// The current insertion block.
    ///
    /// # Panics
    ///
    /// Panics if no block has been created or selected yet.
    pub fn current(&self) -> BlockId {
        self.cur.expect("builder has no current block")
    }

    fn emit(
        &mut self,
        opcode: Opcode,
        ty: TypeId,
        operands: Vec<ValueId>,
        extra: InstExtra,
    ) -> ValueId {
        let block = self.current();
        let (inst, value) = self.func.create_inst(InstData {
            opcode,
            ty,
            operands,
            block,
            extra,
        });
        self.func.append_inst(block, inst);
        let _ = inst;
        value
    }

    /// Emits the given instruction data verbatim, returning its result.
    pub fn emit_raw(&mut self, data: InstData) -> (InstId, ValueId) {
        let block = self.current();
        let mut data = data;
        data.block = block;
        let (inst, value) = self.func.create_inst(data);
        self.func.append_inst(block, inst);
        (inst, value)
    }

    // ----- constants -------------------------------------------------------

    /// Integer constant of type `ty`.
    pub fn iconst(&mut self, ty: TypeId, value: i64) -> ValueId {
        self.func.const_int(ty, value)
    }

    /// `i32` constant.
    pub fn i32_const(&mut self, value: i64) -> ValueId {
        let ty = self.types.i32();
        self.func.const_int(ty, value)
    }

    /// `i64` constant.
    pub fn i64_const(&mut self, value: i64) -> ValueId {
        let ty = self.types.i64();
        self.func.const_int(ty, value)
    }

    /// Floating constant of type `ty`.
    pub fn fconst(&mut self, ty: TypeId, value: f64) -> ValueId {
        self.func.const_float(ty, value)
    }

    /// Address of global `g`.
    pub fn global(&mut self, g: GlobalId) -> ValueId {
        self.func.global_addr(g)
    }

    // ----- arithmetic ------------------------------------------------------

    /// Generic two-operand arithmetic/logic operation. The result type is
    /// the type of `a`.
    pub fn binop(&mut self, opcode: Opcode, a: ValueId, b: ValueId) -> ValueId {
        debug_assert!(opcode.is_binop(), "{opcode:?} is not a binop");
        let ty = self.func.value_ty(a, self.types);
        self.emit(opcode, ty, vec![a, b], InstExtra::None)
    }

    /// `add`
    pub fn add(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::Add, a, b)
    }
    /// `sub`
    pub fn sub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::Sub, a, b)
    }
    /// `mul`
    pub fn mul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::Mul, a, b)
    }
    /// `sdiv`
    pub fn sdiv(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::SDiv, a, b)
    }
    /// `and`
    pub fn and(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::And, a, b)
    }
    /// `or`
    pub fn or(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::Or, a, b)
    }
    /// `xor`
    pub fn xor(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::Xor, a, b)
    }
    /// `shl`
    pub fn shl(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::Shl, a, b)
    }
    /// `lshr`
    pub fn lshr(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::LShr, a, b)
    }
    /// `ashr`
    pub fn ashr(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::AShr, a, b)
    }
    /// `fadd`
    pub fn fadd(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::FAdd, a, b)
    }
    /// `fsub`
    pub fn fsub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::FSub, a, b)
    }
    /// `fmul`
    pub fn fmul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::FMul, a, b)
    }
    /// `fdiv`
    pub fn fdiv(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::FDiv, a, b)
    }

    /// Integer comparison producing `i1`.
    pub fn icmp(&mut self, pred: IntPredicate, a: ValueId, b: ValueId) -> ValueId {
        let ty = self.types.i1();
        self.emit(Opcode::Icmp, ty, vec![a, b], InstExtra::Icmp(pred))
    }

    /// Floating comparison producing `i1`.
    pub fn fcmp(&mut self, pred: FloatPredicate, a: ValueId, b: ValueId) -> ValueId {
        let ty = self.types.i1();
        self.emit(Opcode::Fcmp, ty, vec![a, b], InstExtra::Fcmp(pred))
    }

    /// `select cond, a, b`
    pub fn select(&mut self, cond: ValueId, a: ValueId, b: ValueId) -> ValueId {
        let ty = self.func.value_ty(a, self.types);
        self.emit(Opcode::Select, ty, vec![cond, a, b], InstExtra::None)
    }

    /// Cast `v` to `ty` with the given cast opcode.
    pub fn cast(&mut self, opcode: Opcode, v: ValueId, ty: TypeId) -> ValueId {
        debug_assert!(opcode.is_cast(), "{opcode:?} is not a cast");
        self.emit(opcode, ty, vec![v], InstExtra::None)
    }

    /// `zext`
    pub fn zext(&mut self, v: ValueId, ty: TypeId) -> ValueId {
        self.cast(Opcode::ZExt, v, ty)
    }
    /// `sext`
    pub fn sext(&mut self, v: ValueId, ty: TypeId) -> ValueId {
        self.cast(Opcode::SExt, v, ty)
    }
    /// `trunc`
    pub fn trunc(&mut self, v: ValueId, ty: TypeId) -> ValueId {
        self.cast(Opcode::Trunc, v, ty)
    }
    /// `sitofp`
    pub fn sitofp(&mut self, v: ValueId, ty: TypeId) -> ValueId {
        self.cast(Opcode::SiToFp, v, ty)
    }
    /// `fptosi`
    pub fn fptosi(&mut self, v: ValueId, ty: TypeId) -> ValueId {
        self.cast(Opcode::FpToSi, v, ty)
    }

    // ----- memory ----------------------------------------------------------

    /// `alloca` of `count` elements of `elem_ty` (pass `None` for one).
    pub fn alloca(&mut self, elem_ty: TypeId, count: Option<ValueId>) -> ValueId {
        let ty = self.types.ptr();
        let operands = count.into_iter().collect();
        self.emit(Opcode::Alloca, ty, operands, InstExtra::Alloca { elem_ty })
    }

    /// Typed load from `ptr`.
    pub fn load(&mut self, ty: TypeId, ptr: ValueId) -> ValueId {
        self.emit(Opcode::Load, ty, vec![ptr], InstExtra::None)
    }

    /// Store `value` to `ptr`.
    pub fn store(&mut self, value: ValueId, ptr: ValueId) -> ValueId {
        let ty = self.types.void();
        self.emit(Opcode::Store, ty, vec![value, ptr], InstExtra::None)
    }

    /// `gep elem_ty, base, indices...` — the first index scales by
    /// `size_of(elem_ty)`, later indices navigate into aggregates.
    pub fn gep(&mut self, elem_ty: TypeId, base: ValueId, indices: &[ValueId]) -> ValueId {
        let ty = self.types.ptr();
        let mut operands = vec![base];
        operands.extend_from_slice(indices);
        self.emit(Opcode::Gep, ty, operands, InstExtra::Gep { elem_ty })
    }

    // ----- calls & control -------------------------------------------------

    /// Direct call. `ret_ty` must match the callee's return type.
    pub fn call(&mut self, callee: FuncId, ret_ty: TypeId, args: &[ValueId]) -> ValueId {
        self.emit(
            Opcode::Call,
            ret_ty,
            args.to_vec(),
            InstExtra::Call { callee },
        )
    }

    /// `phi` with `(value, predecessor)` incomings.
    pub fn phi(&mut self, ty: TypeId, incomings: &[(ValueId, BlockId)]) -> ValueId {
        let operands = incomings.iter().map(|&(v, _)| v).collect();
        let incoming = incomings.iter().map(|&(_, b)| b).collect();
        self.emit(Opcode::Phi, ty, operands, InstExtra::Phi { incoming })
    }

    /// Unconditional branch.
    pub fn br(&mut self, dest: BlockId) -> ValueId {
        let ty = self.types.void();
        self.emit(Opcode::Br, ty, vec![], InstExtra::Br { dest })
    }

    /// Conditional branch on `cond`.
    pub fn cond_br(&mut self, cond: ValueId, then_dest: BlockId, else_dest: BlockId) -> ValueId {
        let ty = self.types.void();
        self.emit(
            Opcode::CondBr,
            ty,
            vec![cond],
            InstExtra::CondBr {
                then_dest,
                else_dest,
            },
        )
    }

    /// Return (with an optional value).
    pub fn ret(&mut self, value: Option<ValueId>) -> ValueId {
        let ty = self.types.void();
        self.emit(
            Opcode::Ret,
            ty,
            value.into_iter().collect(),
            InstExtra::None,
        )
    }

    /// `unreachable`
    pub fn unreachable(&mut self) -> ValueId {
        let ty = self.types.void();
        self.emit(Opcode::Unreachable, ty, vec![], InstExtra::None)
    }
}

/// Stages a new function and installs it into a module when finished.
pub struct FuncBuilder<'m> {
    module: &'m mut Module,
    func: Option<Function>,
    cur: Option<BlockId>,
}

impl<'m> FuncBuilder<'m> {
    /// Starts building a new function definition in `module`.
    pub fn new(
        module: &'m mut Module,
        name: impl Into<String>,
        param_tys: Vec<TypeId>,
        ret_ty: TypeId,
    ) -> Self {
        let func = Function::new(name, param_tys, ret_ty);
        FuncBuilder {
            module,
            func: Some(func),
            cur: None,
        }
    }

    /// The staged function's `index`-th parameter.
    pub fn param(&self, index: usize) -> ValueId {
        self.func.as_ref().unwrap().param(index)
    }

    /// Runs `f` with an instruction [`Builder`] over the staged function.
    pub fn ins<R>(&mut self, f: impl FnOnce(&mut Builder<'_>) -> R) -> R {
        let func = self.func.as_mut().unwrap();
        let mut b = Builder {
            func,
            types: &mut self.module.types,
            cur: self.cur,
        };
        let r = f(&mut b);
        self.cur = b.cur;
        r
    }

    /// Creates a block in the staged function and makes it current.
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        let b = self.func.as_mut().unwrap().add_block(name);
        self.cur = Some(b);
        b
    }

    /// Switches the insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = Some(block);
    }

    /// Resolves a callee and return type by name.
    ///
    /// # Panics
    ///
    /// Panics if the module has no function with that name.
    pub fn callee(&self, name: &str) -> (FuncId, TypeId) {
        let id = self
            .module
            .func_by_name(name)
            .unwrap_or_else(|| panic!("unknown callee {name}"));
        (id, self.module.func(id).ret_ty)
    }

    /// Access to the module being extended.
    pub fn module(&mut self) -> &mut Module {
        self.module
    }

    /// Installs the staged function into the module.
    pub fn finish(mut self) -> FuncId {
        let func = self.func.take().unwrap();
        self.module.add_func(func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Effects;

    #[test]
    fn build_simple_function() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let mut fb = FuncBuilder::new(&mut m, "addmul", vec![i32t, i32t], i32t);
        let a = fb.param(0);
        let b = fb.param(1);
        fb.block("entry");
        let r = fb.ins(|b_| {
            let s = b_.add(a, b);
            let p = b_.mul(s, s);
            b_.ret(Some(p));
            p
        });
        let id = fb.finish();
        let f = m.func(id);
        assert_eq!(f.num_live_insts(), 3);
        assert_eq!(f.value_ty(r, &m.types), m.types.i32());
    }

    #[test]
    fn build_loop_with_phi() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let mut fb = FuncBuilder::new(&mut m, "count", vec![i32t], i32t);
        let n = fb.param(0);
        let entry = fb.block("entry");
        let (loop_bb, exit_bb) = fb.ins(|b| {
            let loop_bb = b.func.add_block("loop");
            let exit_bb = b.func.add_block("exit");
            b.br(loop_bb);
            (loop_bb, exit_bb)
        });
        fb.switch_to(loop_bb);
        fb.ins(|b| {
            let zero = b.i32_const(0);
            let iv = b.phi(b.types.i32(), &[(zero, entry)]);
            let one = b.i32_const(1);
            let next = b.add(iv, one);
            // Patch the phi with the loopback incoming.
            let iv_inst = b.func.value(iv).as_inst().unwrap();
            b.func.inst_mut(iv_inst).operands.push(next);
            if let InstExtra::Phi { incoming } = &mut b.func.inst_mut(iv_inst).extra {
                incoming.push(loop_bb);
            }
            let done = b.icmp(IntPredicate::Sge, next, n);
            b.cond_br(done, exit_bb, loop_bb);
            b.switch_to(exit_bb);
            b.ret(Some(iv));
        });
        let id = fb.finish();
        let f = m.func(id);
        assert_eq!(f.num_blocks(), 3);
        assert!(f.terminator(loop_bb).is_some());
    }

    #[test]
    fn call_through_declaration() {
        let mut m = Module::new("t");
        let void = m.types.void();
        let ptr = m.types.ptr();
        m.declare_func("sink", vec![ptr], void, Effects::ReadWrite);
        let mut fb = FuncBuilder::new(&mut m, "caller", vec![ptr], void);
        let p = fb.param(0);
        fb.block("entry");
        let (sink, ret_ty) = fb.callee("sink");
        fb.ins(|b| {
            b.call(sink, ret_ty, &[p]);
            b.ret(None);
        });
        let id = fb.finish();
        assert_eq!(m.func(id).num_live_insts(), 2);
    }
}
