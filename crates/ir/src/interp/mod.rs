//! Reference interpreter.
//!
//! Executes IR functions over a flat memory, recording a trace of external
//! calls and dynamic instruction counts. The interpreter is the behavioural
//! oracle of the project: a transformation is correct iff the interpreted
//! outcome (return value, external-call trace, final memory) is unchanged.

mod memory;

pub use memory::Memory;

use std::collections::HashMap;
use std::fmt;

use crate::block::BlockId;
use crate::fold::{
    as_unsigned, eval_float_binop, eval_icmp, eval_int_binop, int_binop_trap, normalize_int,
};
use crate::function::{Effects, Function};
use crate::inst::{FloatPredicate, InstExtra, Opcode};
use crate::module::{GlobalInit, Module};
use crate::types::TypeKind;
use crate::value::{FuncId, GlobalId, ValueDef, ValueId};

/// A dynamic value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IValue {
    /// Integer (sign-extended to 64 bits).
    Int(i64),
    /// Floating-point (`f32` widened to `f64`).
    Float(f64),
    /// Pointer (address in interpreter memory).
    Ptr(u64),
    /// No value (void).
    Unit,
}

impl IValue {
    fn as_int(self) -> Result<i64, ExecError> {
        match self {
            IValue::Int(v) => Ok(v),
            IValue::Ptr(p) => Ok(p as i64),
            other => Err(ExecError::TypeConfusion(format!(
                "expected int, got {other:?}"
            ))),
        }
    }

    fn as_float(self) -> Result<f64, ExecError> {
        match self {
            IValue::Float(v) => Ok(v),
            other => Err(ExecError::TypeConfusion(format!(
                "expected float, got {other:?}"
            ))),
        }
    }

    fn as_ptr(self) -> Result<u64, ExecError> {
        match self {
            IValue::Ptr(p) => Ok(p),
            IValue::Int(v) => Ok(v as u64),
            other => Err(ExecError::TypeConfusion(format!(
                "expected pointer, got {other:?}"
            ))),
        }
    }
}

/// Runtime failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Access through the reserved null page.
    NullAccess {
        /// Faulting address.
        addr: u64,
    },
    /// Access past the end of memory.
    OutOfBounds {
        /// Faulting address.
        addr: u64,
        /// Access size.
        size: u64,
    },
    /// Access whose address is not a multiple of the accessed type's
    /// natural alignment.
    Misaligned {
        /// Faulting address.
        addr: u64,
        /// Required alignment.
        align: u64,
    },
    /// Integer division by zero.
    DivByZero,
    /// Signed division overflow (`MIN / -1` or `MIN % -1` at type width).
    DivOverflow,
    /// Allocation (alloca or globals) would exceed the interpreter's memory
    /// cap.
    AllocLimit {
        /// Requested size in bytes.
        size: u64,
    },
    /// Step budget exhausted (probable endless loop).
    StepLimit,
    /// Executed `unreachable`.
    Unreachable,
    /// Dynamic type mismatch (interpreter-level bug or malformed IR).
    TypeConfusion(String),
    /// Operation not supported by the interpreter.
    Unsupported(String),
    /// Call of an unknown function name.
    UnknownFunction(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NullAccess { addr } => write!(f, "null access at {addr:#x}"),
            ExecError::OutOfBounds { addr, size } => {
                write!(f, "out-of-bounds access at {addr:#x} (size {size})")
            }
            ExecError::Misaligned { addr, align } => {
                write!(f, "misaligned access at {addr:#x} (requires align {align})")
            }
            ExecError::DivByZero => write!(f, "integer division by zero"),
            ExecError::DivOverflow => write!(f, "signed division overflow"),
            ExecError::AllocLimit { size } => {
                write!(f, "allocation of {size} bytes exceeds the memory cap")
            }
            ExecError::StepLimit => write!(f, "step limit exceeded"),
            ExecError::Unreachable => write!(f, "reached unreachable"),
            ExecError::TypeConfusion(m) => write!(f, "type confusion: {m}"),
            ExecError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            ExecError::UnknownFunction(m) => write!(f, "unknown function: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One recorded external call.
#[derive(Debug, Clone, PartialEq)]
pub struct CallEvent {
    /// Callee name.
    pub callee: String,
    /// Argument values at the call site.
    pub args: Vec<IValue>,
    /// Value the interpreter returned for the call.
    pub result: IValue,
}

/// Aggregate result of a top-level call.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Return value.
    pub ret: IValue,
    /// External calls, in execution order.
    pub trace: Vec<CallEvent>,
    /// Dynamic instruction count.
    pub steps: u64,
    /// Hash of final memory contents.
    pub mem_hash: u64,
}

/// The interpreter: module + memory + trace.
pub struct Interpreter<'m> {
    module: &'m Module,
    /// Linear memory (public so tests can set up buffers).
    pub mem: Memory,
    global_addrs: Vec<u64>,
    trace: Vec<CallEvent>,
    steps: u64,
    max_steps: u64,
    ext_seq: u64,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter and materializes all globals.
    pub fn new(module: &'m Module) -> Self {
        let mut mem = Memory::new();
        let mut global_addrs = Vec::new();
        for g in module.global_ids() {
            let data = module.global(g);
            let size = module.global_size(g).max(1);
            let align = module.types.align_of(data.ty).max(8);
            let addr = mem
                .alloc(size, align)
                .expect("global data exceeds the interpreter memory cap");
            match &data.init {
                GlobalInit::Zero => {}
                GlobalInit::Bytes(bytes) => {
                    mem.write_bytes(addr, bytes).expect("global init");
                }
                GlobalInit::Ints { elem_ty, values } => {
                    let esz = module.types.size_of(*elem_ty);
                    for (i, &v) in values.iter().enumerate() {
                        mem.store(
                            &module.types,
                            *elem_ty,
                            addr + i as u64 * esz,
                            IValue::Int(v),
                        )
                        .expect("global init");
                    }
                }
            }
            global_addrs.push(addr);
        }
        Interpreter {
            module,
            mem,
            global_addrs,
            trace: Vec::new(),
            steps: 0,
            max_steps: 50_000_000,
            ext_seq: 0,
        }
    }

    /// Sets the dynamic step budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Address of global `g` in interpreter memory.
    pub fn global_addr(&self, g: GlobalId) -> u64 {
        self.global_addrs[g.index()]
    }

    /// Dynamic instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// External calls recorded so far.
    pub fn trace(&self) -> &[CallEvent] {
        &self.trace
    }

    /// Calls a function by name and packages the [`Outcome`].
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on a runtime fault or unknown name.
    pub fn run(&mut self, name: &str, args: &[IValue]) -> Result<Outcome, ExecError> {
        let id = self
            .module
            .func_by_name(name)
            .ok_or_else(|| ExecError::UnknownFunction(name.to_string()))?;
        let ret = self.call(id, args.to_vec())?;
        Ok(Outcome {
            ret,
            trace: self.trace.clone(),
            steps: self.steps,
            mem_hash: self.mem.content_hash(),
        })
    }

    /// Calls function `id` with `args`.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on a runtime fault.
    pub fn call(&mut self, id: FuncId, args: Vec<IValue>) -> Result<IValue, ExecError> {
        let func = self.module.func(id);
        if func.is_declaration {
            return self.call_external(func, args);
        }
        let mut frame: HashMap<ValueId, IValue> = HashMap::new();
        for (i, &p) in func.params().iter().enumerate() {
            frame.insert(
                p,
                args.get(i).copied().ok_or_else(|| {
                    ExecError::TypeConfusion(format!("missing argument {i} to @{}", func.name))
                })?,
            );
        }
        let mut block = func.entry_block();
        let mut prev_block: Option<BlockId> = None;
        loop {
            // Phis first: read all incomings against the old frame, then
            // commit (parallel assignment semantics).
            let mut phi_writes: Vec<(ValueId, IValue)> = Vec::new();
            let mut first_non_phi = 0;
            for (pos, &i) in func.block(block).insts.iter().enumerate() {
                let data = func.inst(i);
                if data.opcode != Opcode::Phi {
                    first_non_phi = pos;
                    break;
                }
                first_non_phi = pos + 1;
                let InstExtra::Phi { incoming } = &data.extra else {
                    unreachable!()
                };
                let pb = prev_block
                    .ok_or_else(|| ExecError::TypeConfusion("phi in entry block".to_string()))?;
                let Some(arm) = incoming.iter().position(|&b| b == pb) else {
                    return Err(ExecError::TypeConfusion(format!(
                        "phi has no incoming for predecessor {}",
                        func.block(pb).name
                    )));
                };
                let v = self.value_of(func, &frame, data.operands[arm])?;
                self.steps += 1;
                phi_writes.push((func.inst_result(i), v));
            }
            for (dst, v) in phi_writes {
                frame.insert(dst, v);
            }

            let insts = func.block(block).insts[first_non_phi..].to_vec();
            let mut next: Option<BlockId> = None;
            for i in insts {
                self.steps += 1;
                if self.steps > self.max_steps {
                    return Err(ExecError::StepLimit);
                }
                let data = func.inst(i).clone();
                match data.opcode {
                    Opcode::Br => {
                        let InstExtra::Br { dest } = data.extra else {
                            unreachable!()
                        };
                        next = Some(dest);
                        break;
                    }
                    Opcode::CondBr => {
                        let InstExtra::CondBr {
                            then_dest,
                            else_dest,
                        } = data.extra
                        else {
                            unreachable!()
                        };
                        let c = self.value_of(func, &frame, data.operands[0])?.as_int()?;
                        next = Some(if c != 0 { then_dest } else { else_dest });
                        break;
                    }
                    Opcode::Ret => {
                        return if data.operands.is_empty() {
                            Ok(IValue::Unit)
                        } else {
                            self.value_of(func, &frame, data.operands[0])
                        };
                    }
                    Opcode::Unreachable => return Err(ExecError::Unreachable),
                    _ => {
                        let result = self.exec_inst(func, &mut frame, i)?;
                        frame.insert(func.inst_result(i), result);
                    }
                }
            }
            match next {
                Some(b) => {
                    prev_block = Some(block);
                    block = b;
                }
                None => {
                    return Err(ExecError::TypeConfusion(format!(
                        "block {} fell through without terminator",
                        func.block(block).name
                    )))
                }
            }
        }
    }

    fn value_of(
        &self,
        func: &Function,
        frame: &HashMap<ValueId, IValue>,
        v: ValueId,
    ) -> Result<IValue, ExecError> {
        match func.value(v) {
            ValueDef::Inst(_) | ValueDef::Param { .. } => frame.get(&v).copied().ok_or_else(|| {
                ExecError::TypeConfusion(format!("use of unevaluated value v{}", v.index()))
            }),
            ValueDef::ConstInt { value, .. } => Ok(IValue::Int(*value)),
            ValueDef::ConstFloat { bits, .. } => Ok(IValue::Float(f64::from_bits(*bits))),
            ValueDef::GlobalAddr(g) => Ok(IValue::Ptr(self.global_addrs[g.index()])),
            ValueDef::FuncAddr(f) => Ok(IValue::Ptr(0x4000_0000 + f.index() as u64)),
            ValueDef::Undef(_) => Ok(IValue::Int(0)),
        }
    }

    fn exec_inst(
        &mut self,
        func: &Function,
        frame: &mut HashMap<ValueId, IValue>,
        inst: crate::inst::InstId,
    ) -> Result<IValue, ExecError> {
        let types = &self.module.types;
        let data = func.inst(inst).clone();
        let op = |me: &Self, k: usize| me.value_of(func, frame, data.operands[k]);
        match data.opcode {
            o if o.is_int_binop() => {
                let a = op(self, 0)?.as_int()?;
                let b = op(self, 1)?.as_int()?;
                match eval_int_binop(types, o, data.ty, a, b) {
                    Some(r) => Ok(IValue::Int(r)),
                    None => match int_binop_trap(types, o, data.ty, a, b) {
                        Some(crate::fold::IntTrap::Overflow) => Err(ExecError::DivOverflow),
                        _ => Err(ExecError::DivByZero),
                    },
                }
            }
            o if o.is_float_binop() => {
                let a = op(self, 0)?.as_float()?;
                let b = op(self, 1)?.as_float()?;
                let r = eval_float_binop(o, a, b)
                    .ok_or_else(|| ExecError::Unsupported("float op".into()))?;
                let r = if types.kind(data.ty) == &TypeKind::Float {
                    (r as f32) as f64
                } else {
                    r
                };
                Ok(IValue::Float(r))
            }
            Opcode::Icmp => {
                let InstExtra::Icmp(pred) = data.extra else {
                    unreachable!()
                };
                let opty = func.value_ty(data.operands[0], types);
                let a = op(self, 0)?.as_int()?;
                let b = op(self, 1)?.as_int()?;
                Ok(IValue::Int(eval_icmp(types, pred, opty, a, b) as i64))
            }
            Opcode::Fcmp => {
                let InstExtra::Fcmp(pred) = data.extra else {
                    unreachable!()
                };
                let a = op(self, 0)?.as_float()?;
                let b = op(self, 1)?.as_float()?;
                let r = match pred {
                    FloatPredicate::Oeq => a == b,
                    FloatPredicate::One => a != b && !a.is_nan() && !b.is_nan(),
                    FloatPredicate::Olt => a < b,
                    FloatPredicate::Ole => a <= b,
                    FloatPredicate::Ogt => a > b,
                    FloatPredicate::Oge => a >= b,
                };
                Ok(IValue::Int(r as i64))
            }
            Opcode::Select => {
                let c = op(self, 0)?.as_int()?;
                if c != 0 {
                    op(self, 1)
                } else {
                    op(self, 2)
                }
            }
            Opcode::Trunc => {
                let v = op(self, 0)?.as_int()?;
                Ok(IValue::Int(normalize_int(types, data.ty, v)))
            }
            Opcode::ZExt => {
                let src_ty = func.value_ty(data.operands[0], types);
                let v = op(self, 0)?.as_int()?;
                Ok(IValue::Int(as_unsigned(types, src_ty, v) as i64))
            }
            Opcode::SExt => {
                let src_ty = func.value_ty(data.operands[0], types);
                let v = op(self, 0)?.as_int()?;
                Ok(IValue::Int(normalize_int(types, src_ty, v)))
            }
            Opcode::Bitcast => op(self, 0),
            Opcode::PtrToInt => Ok(IValue::Int(op(self, 0)?.as_ptr()? as i64)),
            Opcode::IntToPtr => Ok(IValue::Ptr(op(self, 0)?.as_int()? as u64)),
            Opcode::FpToSi => Ok(IValue::Int(op(self, 0)?.as_float()? as i64)),
            Opcode::SiToFp => {
                let v = op(self, 0)?.as_int()? as f64;
                let v = if types.kind(data.ty) == &TypeKind::Float {
                    (v as f32) as f64
                } else {
                    v
                };
                Ok(IValue::Float(v))
            }
            Opcode::FpExt => op(self, 0),
            Opcode::FpTrunc => {
                let v = op(self, 0)?.as_float()?;
                Ok(IValue::Float((v as f32) as f64))
            }
            Opcode::Alloca => {
                let InstExtra::Alloca { elem_ty } = data.extra else {
                    unreachable!()
                };
                let count = if data.operands.is_empty() {
                    1
                } else {
                    op(self, 0)?.as_int()?.max(0) as u64
                };
                let size = types
                    .size_of(elem_ty)
                    .checked_mul(count)
                    .ok_or(ExecError::AllocLimit { size: u64::MAX })?;
                let align = types.align_of(elem_ty).max(8);
                Ok(IValue::Ptr(self.mem.alloc(size.max(1), align)?))
            }
            Opcode::Load => {
                let addr = op(self, 0)?.as_ptr()?;
                self.mem.load(types, data.ty, addr)
            }
            Opcode::Store => {
                let value = op(self, 0)?;
                let addr = op(self, 1)?.as_ptr()?;
                let vty = func.value_ty(data.operands[0], types);
                self.mem.store(types, vty, addr, value)?;
                Ok(IValue::Unit)
            }
            Opcode::Gep => {
                let InstExtra::Gep { elem_ty } = data.extra else {
                    unreachable!()
                };
                let base = op(self, 0)?.as_ptr()?;
                let mut addr = base as i64;
                let first = op(self, 1)?.as_int()?;
                addr = addr.wrapping_add(first.wrapping_mul(types.size_of(elem_ty) as i64));
                let mut cur = elem_ty;
                for k in 2..data.operands.len() {
                    let idx = op(self, k)?.as_int()?;
                    match types.kind(cur).clone() {
                        TypeKind::Array { elem, .. } => {
                            addr = addr.wrapping_add(idx.wrapping_mul(types.size_of(elem) as i64));
                            cur = elem;
                        }
                        TypeKind::Struct { fields } => {
                            let i = idx as usize;
                            if i >= fields.len() {
                                return Err(ExecError::TypeConfusion(
                                    "struct gep index out of range".into(),
                                ));
                            }
                            addr = addr.wrapping_add(types.field_offset(cur, i) as i64);
                            cur = fields[i];
                        }
                        other => {
                            return Err(ExecError::TypeConfusion(format!(
                                "gep into non-aggregate {other:?}"
                            )))
                        }
                    }
                }
                Ok(IValue::Ptr(addr as u64))
            }
            Opcode::Call => {
                let InstExtra::Call { callee } = data.extra else {
                    unreachable!()
                };
                let mut args = Vec::with_capacity(data.operands.len());
                for k in 0..data.operands.len() {
                    args.push(op(self, k)?);
                }
                self.call(callee, args)
            }
            other => Err(ExecError::Unsupported(format!(
                "opcode {other:?} in straight-line execution"
            ))),
        }
    }

    /// Models a call to an external declaration: records a trace event and
    /// returns a deterministic value.
    ///
    /// `readnone`/`readonly` externals return a pure hash of their arguments
    /// so duplicating or reordering them is observationally neutral;
    /// `readwrite` externals additionally mix in a sequence number, making
    /// their *order* observable — which is exactly the property the
    /// scheduling analysis must preserve.
    fn call_external(&mut self, func: &Function, args: Vec<IValue>) -> Result<IValue, ExecError> {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100000001b3);
        };
        for b in func.name.bytes() {
            mix(b as u64);
        }
        for a in &args {
            match a {
                IValue::Int(v) => mix(*v as u64),
                IValue::Float(v) => mix(v.to_bits()),
                IValue::Ptr(p) => mix(*p),
                IValue::Unit => mix(0),
            }
        }
        if func.effects == Effects::ReadWrite {
            self.ext_seq += 1;
            mix(self.ext_seq);
        }
        let ret = match self.module.types.kind(func.ret_ty) {
            TypeKind::Void => IValue::Unit,
            TypeKind::Float | TypeKind::Double => IValue::Float((h % 1000) as f64 / 8.0),
            TypeKind::Ptr => IValue::Ptr(0),
            _ => IValue::Int((h as i64) & 0xffff),
        };
        self.trace.push(CallEvent {
            callee: func.name.clone(),
            args,
            result: ret,
        });
        Ok(ret)
    }
}

/// Convenience: checks that two modules behave identically on a given entry
/// point and argument list. Returns the two outcomes for inspection.
///
/// # Errors
///
/// Propagates the first runtime fault from either module.
pub fn run_both(
    a: &Module,
    b: &Module,
    entry: &str,
    args: &[IValue],
) -> Result<(Outcome, Outcome), ExecError> {
    let mut ia = Interpreter::new(a);
    let mut ib = Interpreter::new(b);
    let oa = ia.run(entry, args)?;
    let ob = ib.run(entry, args)?;
    Ok((oa, ob))
}

/// True when two outcomes are observationally equivalent: same return value,
/// same external-call trace, same final memory. Only meaningful when both
/// outcomes come from modules with identical global layouts; for comparing a
/// transformed module against its original (which may have gained constant
/// data), use [`check_equivalence`].
pub fn equivalent(a: &Outcome, b: &Outcome) -> bool {
    a.ret == b.ret && a.trace == b.trace && a.mem_hash == b.mem_hash
}

/// Runs `entry(args)` on both modules and checks observational equivalence:
/// same return value, same external-call trace, and identical final contents
/// of every global that exists in the *original* module (the transformed
/// module may have gained read-only data, which is ignored).
///
/// # Errors
///
/// Returns `Err(message)` describing the first divergence, or propagates a
/// formatted runtime fault.
pub fn check_equivalence(
    original: &Module,
    transformed: &Module,
    entry: &str,
    args: &[IValue],
) -> Result<(), String> {
    let mut ia = Interpreter::new(original);
    let mut ib = Interpreter::new(transformed);
    let oa = ia
        .run(entry, args)
        .map_err(|e| format!("original faulted: {e}"))?;
    let ob = ib
        .run(entry, args)
        .map_err(|e| format!("transformed faulted: {e}"))?;
    if oa.ret != ob.ret {
        return Err(format!(
            "return values differ: {:?} vs {:?}",
            oa.ret, ob.ret
        ));
    }
    if oa.trace != ob.trace {
        return Err(format!(
            "external-call traces differ:\n  original:    {:?}\n  transformed: {:?}",
            oa.trace, ob.trace
        ));
    }
    for g in original.global_ids() {
        let name = &original.global(g).name;
        let Some(g2) = transformed.global_by_name(name) else {
            return Err(format!("global @{name} disappeared"));
        };
        let size = original.global_size(g);
        let a_bytes = ia
            .mem
            .read_bytes(ia.global_addr(g), size)
            .map_err(|e| format!("{e}"))?;
        let b_bytes = ib
            .mem
            .read_bytes(ib.global_addr(g2), size)
            .map_err(|e| format!("{e}"))?;
        if a_bytes != b_bytes {
            return Err(format!("final contents of @{name} differ"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn interp_ret(text: &str, entry: &str, args: &[IValue]) -> IValue {
        let m = parse_module(text).unwrap();
        let mut i = Interpreter::new(&m);
        i.run(entry, args).unwrap().ret
    }

    #[test]
    fn arithmetic_and_return() {
        let text = r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  %1 = mul i32 %p0, i32 3
  %2 = add i32 %1, i32 4
  ret %2
}
"#;
        assert_eq!(interp_ret(text, "f", &[IValue::Int(5)]), IValue::Int(19));
    }

    #[test]
    fn loop_with_phi_counts() {
        let text = r#"
module "t"
func @sum(i32 %p0) -> i32 {
entry:
  br loop
loop:
  %1 = phi i32 [ i32 0, entry ], [ %3, loop ]
  %2 = phi i32 [ i32 0, entry ], [ %4, loop ]
  %3 = add i32 %1, i32 1
  %4 = add i32 %2, %3
  %5 = icmp slt %3, %p0
  condbr %5, loop, exit
exit:
  ret %4
}
"#;
        // sum of 1..=10 = 55
        assert_eq!(interp_ret(text, "sum", &[IValue::Int(10)]), IValue::Int(55));
    }

    #[test]
    fn memory_and_geps() {
        let text = r#"
module "t"
global @buf : [8 x i32] = zero
func @fill() -> i32 {
entry:
  br loop
loop:
  %1 = phi i32 [ i32 0, entry ], [ %2, loop ]
  %g = gep i32, @buf, %1
  store %1, %g
  %2 = add i32 %1, i32 1
  %3 = icmp slt %2, i32 8
  condbr %3, loop, exit
exit:
  %p3 = gep i32, @buf, i32 3
  %v = load i32, %p3
  ret %v
}
"#;
        assert_eq!(interp_ret(text, "fill", &[]), IValue::Int(3));
    }

    #[test]
    fn struct_geps() {
        let text = r#"
module "t"
global @s : { i8, i32, i8 } = zero
func @f() -> i32 {
entry:
  %p = gep { i8, i32, i8 }, @s, i64 0, i32 1
  store i32 77, %p
  %v = load i32, %p
  ret %v
}
"#;
        assert_eq!(interp_ret(text, "f", &[]), IValue::Int(77));
    }

    #[test]
    fn external_calls_recorded_and_deterministic() {
        let text = r#"
module "t"
declare @ext(i32 %p0) -> i32 readwrite
func @f() -> i32 {
entry:
  %1 = call i32 @ext(i32 1)
  %2 = call i32 @ext(i32 1)
  %3 = add i32 %1, %2
  ret %3
}
"#;
        let m = parse_module(text).unwrap();
        let mut i1 = Interpreter::new(&m);
        let o1 = i1.run("f", &[]).unwrap();
        let mut i2 = Interpreter::new(&m);
        let o2 = i2.run("f", &[]).unwrap();
        assert_eq!(o1.trace.len(), 2);
        assert_eq!(o1, o2, "execution must be deterministic");
        // Same args but different sequence points -> different results for
        // readwrite externals.
        assert_ne!(o1.trace[0].result, o1.trace[1].result);
    }

    #[test]
    fn readnone_externals_are_pure() {
        let text = r#"
module "t"
declare @pure(i32 %p0) -> i32 readnone
func @f() -> i32 {
entry:
  %1 = call i32 @pure(i32 9)
  %2 = call i32 @pure(i32 9)
  %3 = sub i32 %1, %2
  ret %3
}
"#;
        assert_eq!(interp_ret(text, "f", &[]), IValue::Int(0));
    }

    #[test]
    fn nested_internal_calls() {
        let text = r#"
module "t"
func @sq(i32 %p0) -> i32 {
entry:
  %1 = mul i32 %p0, %p0
  ret %1
}
func @f(i32 %p0) -> i32 {
entry:
  %1 = call i32 @sq(%p0)
  %2 = call i32 @sq(%1)
  ret %2
}
"#;
        assert_eq!(interp_ret(text, "f", &[IValue::Int(3)]), IValue::Int(81));
    }

    #[test]
    fn step_limit_stops_endless_loops() {
        let text = r#"
module "t"
func @spin() -> void {
entry:
  br loop
loop:
  br loop
}
"#;
        let m = parse_module(text).unwrap();
        let mut i = Interpreter::new(&m).with_max_steps(1000);
        assert_eq!(i.run("spin", &[]), Err(ExecError::StepLimit));
    }

    #[test]
    fn select_and_float_ops() {
        let text = r#"
module "t"
func @f(double %p0) -> double {
entry:
  %1 = fmul double %p0, double 2.0
  %2 = fcmp ogt %1, double 10.0
  %3 = select double %2, %1, double 0.0
  ret %3
}
"#;
        assert_eq!(
            interp_ret(text, "f", &[IValue::Float(6.0)]),
            IValue::Float(12.0)
        );
        assert_eq!(
            interp_ret(text, "f", &[IValue::Float(1.0)]),
            IValue::Float(0.0)
        );
    }

    fn interp_err(text: &str, entry: &str, args: &[IValue]) -> ExecError {
        let m = parse_module(text).unwrap();
        let mut i = Interpreter::new(&m);
        i.run(entry, args).unwrap_err()
    }

    #[test]
    fn division_by_zero_traps() {
        let text = r#"
module "t"
func @f(i32 %p0, i32 %p1) -> i32 {
entry:
  %1 = sdiv i32 %p0, %p1
  ret %1
}
"#;
        assert_eq!(
            interp_err(text, "f", &[IValue::Int(7), IValue::Int(0)]),
            ExecError::DivByZero
        );
        let rem = r#"
module "t"
func @f(i32 %p0, i32 %p1) -> i32 {
entry:
  %1 = srem i32 %p0, %p1
  ret %1
}
"#;
        assert_eq!(
            interp_err(rem, "f", &[IValue::Int(7), IValue::Int(0)]),
            ExecError::DivByZero
        );
    }

    #[test]
    fn signed_division_overflow_traps_at_type_width() {
        let sdiv = r#"
module "t"
func @f(i32 %p0, i32 %p1) -> i32 {
entry:
  %1 = sdiv i32 %p0, %p1
  ret %1
}
"#;
        // i32::MIN / -1 overflows i32.
        assert_eq!(
            interp_err(sdiv, "f", &[IValue::Int(i32::MIN as i64), IValue::Int(-1)]),
            ExecError::DivOverflow
        );
        let srem = r#"
module "t"
func @f(i32 %p0, i32 %p1) -> i32 {
entry:
  %1 = srem i32 %p0, %p1
  ret %1
}
"#;
        assert_eq!(
            interp_err(srem, "f", &[IValue::Int(i32::MIN as i64), IValue::Int(-1)]),
            ExecError::DivOverflow
        );
        // The same numerator is fine at i64 width.
        let wide = r#"
module "t"
func @f(i64 %p0, i64 %p1) -> i64 {
entry:
  %1 = sdiv i64 %p0, %p1
  ret %1
}
"#;
        let m = parse_module(wide).unwrap();
        let mut i = Interpreter::new(&m);
        let o = i
            .run("f", &[IValue::Int(i32::MIN as i64), IValue::Int(-1)])
            .unwrap();
        assert_eq!(o.ret, IValue::Int(-(i32::MIN as i64)));
        // i8 width: -128 / -1 overflows.
        let narrow = r#"
module "t"
func @f(i8 %p0, i8 %p1) -> i8 {
entry:
  %1 = sdiv i8 %p0, %p1
  ret %1
}
"#;
        assert_eq!(
            interp_err(narrow, "f", &[IValue::Int(-128), IValue::Int(-1)]),
            ExecError::DivOverflow
        );
    }

    #[test]
    fn misaligned_access_traps() {
        let text = r#"
module "t"
global @buf : [4 x i32] = zero
func @f(i64 %p0) -> i32 {
entry:
  %p = gep i8, @buf, %p0
  %v = load i32, %p
  ret %v
}
"#;
        assert_eq!(interp_err(text, "f", &[IValue::Int(1)]), {
            let m = parse_module(text).unwrap();
            let i = Interpreter::new(&m);
            let addr = i.global_addr(crate::value::GlobalId::from_index(0)) + 1;
            ExecError::Misaligned { addr, align: 4 }
        });
        let store = r#"
module "t"
global @buf : [4 x i32] = zero
func @f(i64 %p0) -> void {
entry:
  %p = gep i8, @buf, %p0
  store i32 1, %p
  ret
}
"#;
        assert!(matches!(
            interp_err(store, "f", &[IValue::Int(2)]),
            ExecError::Misaligned { align: 4, .. }
        ));
    }

    #[test]
    fn wild_pointer_access_traps() {
        let text = r#"
module "t"
func @f(i64 %p0) -> i64 {
entry:
  %p = inttoptr ptr %p0
  %v = load i64, %p
  ret %v
}
"#;
        assert!(matches!(
            interp_err(text, "f", &[IValue::Int(0)]),
            ExecError::NullAccess { .. }
        ));
        assert!(matches!(
            interp_err(text, "f", &[IValue::Int(1 << 40)]),
            ExecError::OutOfBounds { .. }
        ));
    }

    #[test]
    fn oversized_alloca_traps_instead_of_aborting() {
        let text = r#"
module "t"
func @f(i64 %p0) -> ptr {
entry:
  %a = alloca i64, %p0
  ret %a
}
"#;
        assert!(matches!(
            interp_err(text, "f", &[IValue::Int(i64::MAX / 2)]),
            ExecError::AllocLimit { .. }
        ));
    }

    #[test]
    fn alloca_is_usable_memory() {
        let text = r#"
module "t"
func @f() -> i64 {
entry:
  %a = alloca [4 x i64]
  %p = gep i64, %a, i64 2
  store i64 42, %p
  %v = load i64, %p
  ret %v
}
"#;
        assert_eq!(interp_ret(text, "f", &[]), IValue::Int(42));
    }
}
