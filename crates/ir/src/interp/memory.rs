//! Flat byte-addressable memory for the interpreter.
//!
//! Addresses are `u64` offsets into a single linear space. Address 0 and the
//! first [`Memory::NULL_GUARD`] bytes are reserved so null/near-null
//! dereferences fault.

use crate::types::{TypeId, TypeKind, TypeStore};

use super::{ExecError, IValue};

/// Linear memory with bump allocation.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Reserved low region; accesses below this address fault.
    pub const NULL_GUARD: u64 = 64;

    /// Total memory cap. [`Memory::alloc`] traps (typed
    /// [`ExecError::AllocLimit`]) instead of growing past this, so a wild
    /// `alloca` count degrades into a recoverable fault rather than an
    /// unbounded host allocation.
    pub const MAX_SIZE: u64 = 1 << 28; // 256 MiB

    /// Creates a memory with just the null guard mapped.
    pub fn new() -> Self {
        Memory {
            bytes: vec![0; Self::NULL_GUARD as usize],
        }
    }

    /// Current size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Allocates `size` bytes aligned to `align`, zero-initialized.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::AllocLimit`] when the allocation would grow the
    /// memory past [`Memory::MAX_SIZE`].
    pub fn alloc(&mut self, size: u64, align: u64) -> Result<u64, ExecError> {
        let align = align.max(1);
        let base = (self.bytes.len() as u64 + align - 1) & !(align - 1);
        let end = base
            .checked_add(size)
            .filter(|&end| end <= Self::MAX_SIZE)
            .ok_or(ExecError::AllocLimit { size })?;
        self.bytes.resize(end as usize, 0);
        Ok(base)
    }

    fn check(&self, addr: u64, size: u64) -> Result<(), ExecError> {
        if addr < Self::NULL_GUARD {
            return Err(ExecError::NullAccess { addr });
        }
        if addr.checked_add(size).is_none_or(|end| end > self.size()) {
            return Err(ExecError::OutOfBounds { addr, size });
        }
        Ok(())
    }

    /// Typed accesses must be naturally aligned; byte accesses
    /// ([`Memory::read_bytes`]/[`Memory::write_bytes`]) are exempt.
    fn check_aligned(&self, types: &TypeStore, ty: TypeId, addr: u64) -> Result<(), ExecError> {
        let align = types.align_of(ty).clamp(1, 8);
        if !addr.is_multiple_of(align) {
            return Err(ExecError::Misaligned { addr, align });
        }
        Ok(())
    }

    /// Reads `size` raw bytes.
    pub fn read_bytes(&self, addr: u64, size: u64) -> Result<&[u8], ExecError> {
        self.check(addr, size)?;
        Ok(&self.bytes[addr as usize..(addr + size) as usize])
    }

    /// Writes raw bytes.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), ExecError> {
        self.check(addr, data.len() as u64)?;
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn read_uint(&self, addr: u64, size: u64) -> Result<u64, ExecError> {
        let bytes = self.read_bytes(addr, size)?;
        let mut buf = [0u8; 8];
        buf[..size as usize].copy_from_slice(bytes);
        Ok(u64::from_le_bytes(buf))
    }

    fn write_uint(&mut self, addr: u64, size: u64, value: u64) -> Result<(), ExecError> {
        let bytes = value.to_le_bytes();
        self.write_bytes(addr, &bytes[..size as usize])
    }

    /// Loads a typed value.
    ///
    /// # Errors
    ///
    /// Traps ([`ExecError::NullAccess`]/[`ExecError::OutOfBounds`]/
    /// [`ExecError::Misaligned`]) on wild, out-of-range, or misaligned
    /// addresses.
    pub fn load(&self, types: &TypeStore, ty: TypeId, addr: u64) -> Result<IValue, ExecError> {
        self.check_aligned(types, ty, addr)?;
        match types.kind(ty) {
            TypeKind::Int(width) => {
                let size = types.size_of(ty).min(8);
                let raw = self.read_uint(addr, size)?;
                // Sign-extend from the stored width.
                let w = (*width).min(64) as u32;
                let val = if w >= 64 {
                    raw as i64
                } else {
                    ((raw << (64 - w)) as i64) >> (64 - w)
                };
                Ok(IValue::Int(val))
            }
            TypeKind::Float => {
                let raw = self.read_uint(addr, 4)? as u32;
                Ok(IValue::Float(f32::from_bits(raw) as f64))
            }
            TypeKind::Double => {
                let raw = self.read_uint(addr, 8)?;
                Ok(IValue::Float(f64::from_bits(raw)))
            }
            TypeKind::Ptr => {
                let raw = self.read_uint(addr, 8)?;
                Ok(IValue::Ptr(raw))
            }
            other => Err(ExecError::Unsupported(format!(
                "load of aggregate type {other:?}"
            ))),
        }
    }

    /// Stores a typed value.
    ///
    /// # Errors
    ///
    /// Traps ([`ExecError::NullAccess`]/[`ExecError::OutOfBounds`]/
    /// [`ExecError::Misaligned`]) on wild, out-of-range, or misaligned
    /// addresses.
    pub fn store(
        &mut self,
        types: &TypeStore,
        ty: TypeId,
        addr: u64,
        value: IValue,
    ) -> Result<(), ExecError> {
        self.check_aligned(types, ty, addr)?;
        match (types.kind(ty), value) {
            (TypeKind::Int(width), IValue::Int(v)) => {
                let size = types.size_of(ty).min(8);
                let w = (*width).min(64) as u32;
                let masked = if w >= 64 {
                    v as u64
                } else {
                    (v as u64) & ((1u64 << w) - 1)
                };
                self.write_uint(addr, size, masked)
            }
            (TypeKind::Float, IValue::Float(v)) => {
                self.write_uint(addr, 4, (v as f32).to_bits() as u64)
            }
            (TypeKind::Double, IValue::Float(v)) => self.write_uint(addr, 8, v.to_bits()),
            (TypeKind::Ptr, IValue::Ptr(p)) => self.write_uint(addr, 8, p),
            // Tolerate int/ptr punning, as C-derived code does.
            (TypeKind::Ptr, IValue::Int(v)) => self.write_uint(addr, 8, v as u64),
            (TypeKind::Int(_), IValue::Ptr(p)) => {
                let size = types.size_of(ty).min(8);
                self.write_uint(addr, size, p)
            }
            (kind, value) => Err(ExecError::Unsupported(format!(
                "store of {value:?} to {kind:?}"
            ))),
        }
    }

    /// Hash of the entire memory contents (for equivalence checks).
    pub fn content_hash(&self) -> u64 {
        // FNV-1a, deterministic and dependency-free.
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in &self.bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut m = Memory::new();
        m.alloc(3, 1).unwrap();
        let a = m.alloc(8, 8).unwrap();
        assert_eq!(a % 8, 0);
        assert!(a >= Memory::NULL_GUARD);
    }

    #[test]
    fn null_and_oob_fault() {
        let m = Memory::new();
        assert!(matches!(
            m.read_bytes(0, 1),
            Err(ExecError::NullAccess { .. })
        ));
        assert!(matches!(
            m.read_bytes(1 << 40, 1),
            Err(ExecError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn typed_round_trip() {
        let types = TypeStore::new();
        let mut m = Memory::new();
        let a = m.alloc(32, 8).unwrap();

        m.store(&types, types.i32(), a, IValue::Int(-5)).unwrap();
        assert_eq!(m.load(&types, types.i32(), a).unwrap(), IValue::Int(-5));

        m.store(&types, types.i8(), a + 4, IValue::Int(200))
            .unwrap();
        // 200 wraps to -56 as a signed i8.
        assert_eq!(m.load(&types, types.i8(), a + 4).unwrap(), IValue::Int(-56));

        m.store(&types, types.double(), a + 8, IValue::Float(1.25))
            .unwrap();
        assert_eq!(
            m.load(&types, types.double(), a + 8).unwrap(),
            IValue::Float(1.25)
        );

        m.store(&types, types.float(), a + 16, IValue::Float(0.5))
            .unwrap();
        assert_eq!(
            m.load(&types, types.float(), a + 16).unwrap(),
            IValue::Float(0.5)
        );

        m.store(&types, types.ptr(), a + 24, IValue::Ptr(0x1234))
            .unwrap();
        assert_eq!(
            m.load(&types, types.ptr(), a + 24).unwrap(),
            IValue::Ptr(0x1234)
        );
    }

    #[test]
    fn content_hash_changes_with_content() {
        let mut m = Memory::new();
        let a = m.alloc(8, 8).unwrap();
        let h0 = m.content_hash();
        m.write_bytes(a, &[1]).unwrap();
        assert_ne!(h0, m.content_hash());
    }
}
