//! Constant folding and algebraic simplification.
//!
//! [`simplify_function`] repeatedly rewrites instructions whose result is
//! statically known (constant operands, algebraic identities) until a fixed
//! point, replacing their uses and leaving the dead originals for
//! [`crate::dce`] to sweep.

use crate::function::Function;
use crate::inst::{InstId, IntPredicate, Opcode};
use crate::types::{TypeId, TypeStore};
use crate::value::{ValueDef, ValueId};

/// Result of trying to simplify one instruction.
enum Simplified {
    /// Replace the result with this existing or newly interned value.
    Value(ValueId),
    /// No simplification found.
    None,
}

/// Truncates `v` to the bit width of `ty`, then sign-extends back to `i64`.
pub fn normalize_int(types: &TypeStore, ty: TypeId, v: i64) -> i64 {
    let width = types.int_width(ty).unwrap_or(64);
    if width >= 64 {
        return v;
    }
    let shift = 64 - width as u32;
    (v << shift) >> shift
}

/// Interprets `v` as the unsigned value of the given width.
pub fn as_unsigned(types: &TypeStore, ty: TypeId, v: i64) -> u64 {
    let width = types.int_width(ty).unwrap_or(64);
    if width >= 64 {
        return v as u64;
    }
    (v as u64) & ((1u64 << width) - 1)
}

/// Why an integer binop has no defined result — the two run-time traps of
/// the division family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntTrap {
    /// `sdiv`/`udiv`/`srem`/`urem` with a zero divisor.
    DivByZero,
    /// Signed division overflow: `MIN / -1` (or `MIN % -1`) at the type's
    /// width, whose mathematical quotient is unrepresentable.
    Overflow,
}

/// Smallest representable signed value at `ty`'s width (clamped to 64 bits).
fn signed_min(types: &TypeStore, ty: TypeId) -> i64 {
    let width = types.int_width(ty).unwrap_or(64).min(64) as u32;
    i64::MIN >> (64 - width)
}

/// Classifies why [`eval_int_binop`] returned `None` for a division-family
/// opcode, distinguishing the zero-divisor trap from signed overflow.
/// Returns `None` when the operation actually has a defined result (or is
/// not a division).
pub fn int_binop_trap(
    types: &TypeStore,
    opcode: Opcode,
    ty: TypeId,
    a: i64,
    b: i64,
) -> Option<IntTrap> {
    let sa = normalize_int(types, ty, a);
    let sb = normalize_int(types, ty, b);
    let ub = as_unsigned(types, ty, b);
    match opcode {
        Opcode::SDiv | Opcode::SRem => {
            if sb == 0 {
                Some(IntTrap::DivByZero)
            } else if sa == signed_min(types, ty) && sb == -1 {
                Some(IntTrap::Overflow)
            } else {
                None
            }
        }
        Opcode::UDiv | Opcode::URem => (ub == 0).then_some(IntTrap::DivByZero),
        _ => None,
    }
}

/// Evaluates an integer binop on constant inputs. Returns `None` for the
/// division-family traps (zero divisor, signed `MIN / -1` overflow — left
/// to trap at run time; see [`int_binop_trap`]) and non-integer ops.
pub fn eval_int_binop(
    types: &TypeStore,
    opcode: Opcode,
    ty: TypeId,
    a: i64,
    b: i64,
) -> Option<i64> {
    // Constants are not guaranteed to arrive canonicalized to the type
    // width, and truncation does not commute with division, remainder, or
    // shifts — normalize both views first.
    let sa = normalize_int(types, ty, a);
    let sb = normalize_int(types, ty, b);
    let ua = as_unsigned(types, ty, a);
    let ub = as_unsigned(types, ty, b);
    let width = types.int_width(ty)? as u32;
    let shift_amt = (ub % width as u64) as u32;
    let raw = match opcode {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::SDiv => {
            if sb == 0 || (sa == signed_min(types, ty) && sb == -1) {
                return None;
            }
            sa.wrapping_div(sb)
        }
        Opcode::UDiv => {
            if ub == 0 {
                return None;
            }
            (ua / ub) as i64
        }
        Opcode::SRem => {
            if sb == 0 || (sa == signed_min(types, ty) && sb == -1) {
                return None;
            }
            sa.wrapping_rem(sb)
        }
        Opcode::URem => {
            if ub == 0 {
                return None;
            }
            (ua % ub) as i64
        }
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => sa.wrapping_shl(shift_amt),
        Opcode::LShr => (ua.wrapping_shr(shift_amt)) as i64,
        Opcode::AShr => sa.wrapping_shr(shift_amt),
        _ => return None,
    };
    Some(normalize_int(types, ty, raw))
}

/// Evaluates a float binop on constant inputs.
pub fn eval_float_binop(opcode: Opcode, a: f64, b: f64) -> Option<f64> {
    Some(match opcode {
        Opcode::FAdd => a + b,
        Opcode::FSub => a - b,
        Opcode::FMul => a * b,
        Opcode::FDiv => a / b,
        _ => return None,
    })
}

/// Evaluates an integer comparison on constant inputs.
pub fn eval_icmp(types: &TypeStore, pred: IntPredicate, ty: TypeId, a: i64, b: i64) -> bool {
    let sa = normalize_int(types, ty, a);
    let sb = normalize_int(types, ty, b);
    let ua = as_unsigned(types, ty, a);
    let ub = as_unsigned(types, ty, b);
    match pred {
        IntPredicate::Eq => sa == sb,
        IntPredicate::Ne => sa != sb,
        IntPredicate::Slt => sa < sb,
        IntPredicate::Sle => sa <= sb,
        IntPredicate::Sgt => sa > sb,
        IntPredicate::Sge => sa >= sb,
        IntPredicate::Ult => ua < ub,
        IntPredicate::Ule => ua <= ub,
        IntPredicate::Ugt => ua > ub,
        IntPredicate::Uge => ua >= ub,
    }
}

fn const_int_of(func: &Function, v: ValueId) -> Option<i64> {
    func.value(v).as_const_int()
}

fn try_simplify(func: &mut Function, types: &mut TypeStore, inst: InstId) -> Simplified {
    let data = func.inst(inst).clone();
    let ty = data.ty;
    match data.opcode {
        op if op.is_int_binop() => {
            let a = data.operands[0];
            let b = data.operands[1];
            let ca = const_int_of(func, a);
            let cb = const_int_of(func, b);
            if let (Some(x), Some(y)) = (ca, cb) {
                if let Some(r) = eval_int_binop(types, op, ty, x, y) {
                    return Simplified::Value(func.const_int(ty, r));
                }
            }
            // Algebraic identities on the right operand.
            if let Some(y) = cb {
                match (op, y) {
                    (Opcode::Add | Opcode::Sub | Opcode::Or | Opcode::Xor, 0)
                    | (Opcode::Shl | Opcode::LShr | Opcode::AShr, 0)
                    | (Opcode::Mul | Opcode::SDiv | Opcode::UDiv, 1) => {
                        return Simplified::Value(a);
                    }
                    (Opcode::Mul | Opcode::And, 0) => {
                        return Simplified::Value(func.const_int(ty, 0));
                    }
                    (Opcode::And, -1) => return Simplified::Value(a),
                    _ => {}
                }
            }
            // ... and the left operand for commutative ops.
            if let Some(x) = ca {
                match (op, x) {
                    (Opcode::Add | Opcode::Or | Opcode::Xor, 0) => {
                        return Simplified::Value(b);
                    }
                    (Opcode::Mul, 1) => return Simplified::Value(b),
                    (Opcode::Mul | Opcode::And, 0) => {
                        return Simplified::Value(func.const_int(ty, 0));
                    }
                    _ => {}
                }
            }
            Simplified::None
        }
        Opcode::Icmp => {
            if let (Some(x), Some(y)) = (
                const_int_of(func, data.operands[0]),
                const_int_of(func, data.operands[1]),
            ) {
                if let crate::inst::InstExtra::Icmp(pred) = data.extra {
                    let opty = func.value_ty(data.operands[0], types);
                    let r = eval_icmp(types, pred, opty, x, y);
                    let i1 = types.i1();
                    return Simplified::Value(func.const_int(i1, r as i64));
                }
            }
            Simplified::None
        }
        Opcode::Select => {
            if let Some(c) = const_int_of(func, data.operands[0]) {
                let v = if c != 0 {
                    data.operands[1]
                } else {
                    data.operands[2]
                };
                return Simplified::Value(v);
            }
            if data.operands[1] == data.operands[2] {
                return Simplified::Value(data.operands[1]);
            }
            Simplified::None
        }
        Opcode::ZExt | Opcode::SExt | Opcode::Trunc => {
            if let Some(x) = const_int_of(func, data.operands[0]) {
                let src_ty = func.value_ty(data.operands[0], types);
                let val = match data.opcode {
                    Opcode::ZExt => as_unsigned(types, src_ty, x) as i64,
                    Opcode::SExt => normalize_int(types, src_ty, x),
                    Opcode::Trunc => normalize_int(types, ty, x),
                    _ => unreachable!(),
                };
                return Simplified::Value(func.const_int(ty, normalize_int(types, ty, val)));
            }
            Simplified::None
        }
        op if op.is_float_binop() => {
            let fa = match func.value(data.operands[0]) {
                ValueDef::ConstFloat { bits, .. } => Some(f64::from_bits(*bits)),
                _ => None,
            };
            let fb = match func.value(data.operands[1]) {
                ValueDef::ConstFloat { bits, .. } => Some(f64::from_bits(*bits)),
                _ => None,
            };
            if let (Some(x), Some(y)) = (fa, fb) {
                if let Some(r) = eval_float_binop(op, x, y) {
                    return Simplified::Value(func.const_float(ty, r));
                }
            }
            Simplified::None
        }
        _ => Simplified::None,
    }
}

/// Simplifies `func` to a fixed point. Returns the number of instructions
/// rewritten. Dead originals remain attached; run [`crate::dce::run_dce`]
/// afterwards to remove them.
pub fn simplify_function(func: &mut Function, types: &mut TypeStore) -> usize {
    let mut total = 0;
    loop {
        let mut changed = 0;
        let insts: Vec<InstId> = func.live_insts().collect();
        for inst in insts {
            if !func.is_live(inst) {
                continue;
            }
            if let Simplified::Value(v) = try_simplify(func, types, inst) {
                let old = func.inst_result(inst);
                if old != v {
                    func.replace_all_uses(old, v);
                    func.remove_inst(inst);
                    changed += 1;
                }
            }
        }
        total += changed;
        if changed == 0 {
            break;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::Module;

    #[test]
    fn folds_constant_arithmetic() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let mut fb = FuncBuilder::new(&mut m, "f", vec![], i32t);
        fb.block("entry");
        fb.ins(|b| {
            let x = b.i32_const(6);
            let y = b.i32_const(7);
            let p = b.mul(x, y);
            b.ret(Some(p));
        });
        let id = fb.finish();
        let (f, types) = m.func_and_types_mut(id);
        let n = simplify_function(f, types);
        assert_eq!(n, 1);
        let ret = f.live_insts().last().unwrap();
        let v = f.inst(ret).operands[0];
        assert_eq!(f.value(v).as_const_int(), Some(42));
    }

    #[test]
    fn applies_identities() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let mut fb = FuncBuilder::new(&mut m, "f", vec![i32t], i32t);
        let a = fb.param(0);
        fb.block("entry");
        fb.ins(|b| {
            let zero = b.i32_const(0);
            let one = b.i32_const(1);
            let x = b.add(a, zero); // -> a
            let y = b.mul(x, one); // -> a
            b.ret(Some(y));
        });
        let id = fb.finish();
        let (f, types) = m.func_and_types_mut(id);
        simplify_function(f, types);
        let ret = f.live_insts().last().unwrap();
        assert_eq!(f.inst(ret).operands[0], a);
    }

    #[test]
    fn wrapping_and_width_semantics() {
        let types = TypeStore::new();
        let i8t = types.i8();
        assert_eq!(eval_int_binop(&types, Opcode::Add, i8t, 127, 1), Some(-128));
        assert_eq!(eval_int_binop(&types, Opcode::LShr, i8t, -1, 1), Some(127));
        assert_eq!(eval_int_binop(&types, Opcode::SDiv, i8t, 1, 0), None);
    }

    #[test]
    fn icmp_signedness() {
        let types = TypeStore::new();
        let i8t = types.i8();
        assert!(eval_icmp(&types, IntPredicate::Slt, i8t, -1, 0));
        assert!(!eval_icmp(&types, IntPredicate::Ult, i8t, -1, 0));
        assert!(eval_icmp(&types, IntPredicate::Ugt, i8t, -1, 0));
    }

    #[test]
    fn select_folding() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let mut fb = FuncBuilder::new(&mut m, "f", vec![i32t, i32t], i32t);
        let a = fb.param(0);
        let b2 = fb.param(1);
        fb.block("entry");
        fb.ins(|b| {
            let t = b.iconst(b.types.i1(), 1);
            let s = b.select(t, a, b2);
            b.ret(Some(s));
        });
        let id = fb.finish();
        let (f, types) = m.func_and_types_mut(id);
        simplify_function(f, types);
        let ret = f.live_insts().last().unwrap();
        assert_eq!(f.inst(ret).operands[0], a);
    }
}
