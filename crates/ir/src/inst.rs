//! Instructions.

use crate::block::BlockId;
use crate::types::TypeId;
use crate::value::{FuncId, ValueId};

/// Index of an instruction in its function's instruction table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(pub(crate) u32);

impl InstId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Reconstructs an instruction id from a raw index.
    pub fn from_index(index: usize) -> Self {
        InstId(index as u32)
    }
}

/// Instruction opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // mnemonic variants are self-describing
pub enum Opcode {
    // Integer arithmetic.
    Add,
    Sub,
    Mul,
    SDiv,
    UDiv,
    SRem,
    URem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    // Floating-point arithmetic.
    FAdd,
    FSub,
    FMul,
    FDiv,
    // Comparisons.
    Icmp,
    Fcmp,
    // Misc scalar.
    Select,
    // Casts.
    Trunc,
    ZExt,
    SExt,
    Bitcast,
    PtrToInt,
    IntToPtr,
    FpToSi,
    SiToFp,
    FpExt,
    FpTrunc,
    // Memory.
    Alloca,
    Load,
    Store,
    Gep,
    // Control / calls.
    Call,
    Phi,
    Br,
    CondBr,
    Ret,
    Unreachable,
}

impl Opcode {
    /// True for `br`, `condbr`, `ret`, and `unreachable`.
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Opcode::Br | Opcode::CondBr | Opcode::Ret | Opcode::Unreachable
        )
    }

    /// True for two-operand integer arithmetic/logic ops.
    pub fn is_int_binop(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::SDiv
                | Opcode::UDiv
                | Opcode::SRem
                | Opcode::URem
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::LShr
                | Opcode::AShr
        )
    }

    /// True for two-operand floating-point ops.
    pub fn is_float_binop(self) -> bool {
        matches!(
            self,
            Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv
        )
    }

    /// True for any two-operand arithmetic/logic op.
    pub fn is_binop(self) -> bool {
        self.is_int_binop() || self.is_float_binop()
    }

    /// True for value casts.
    pub fn is_cast(self) -> bool {
        matches!(
            self,
            Opcode::Trunc
                | Opcode::ZExt
                | Opcode::SExt
                | Opcode::Bitcast
                | Opcode::PtrToInt
                | Opcode::IntToPtr
                | Opcode::FpToSi
                | Opcode::SiToFp
                | Opcode::FpExt
                | Opcode::FpTrunc
        )
    }

    /// True if the operation is commutative (`a op b == b op a`).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Mul
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::FAdd
                | Opcode::FMul
        )
    }

    /// True if the operation is associative. Floating-point ops are only
    /// associative under fast-math; the caller decides whether to allow
    /// them (§IV-C5).
    pub fn is_associative(self, fast_math: bool) -> bool {
        match self {
            Opcode::Add | Opcode::Mul | Opcode::And | Opcode::Or | Opcode::Xor => true,
            Opcode::FAdd | Opcode::FMul => fast_math,
            _ => false,
        }
    }

    /// The neutral (identity) element of the operation with respect to its
    /// *second* operand, if one exists: `a op e == a`.
    pub fn neutral_element(self) -> Option<NeutralElement> {
        match self {
            Opcode::Add | Opcode::Sub | Opcode::Or | Opcode::Xor => Some(NeutralElement::Zero),
            Opcode::Shl | Opcode::LShr | Opcode::AShr => Some(NeutralElement::Zero),
            Opcode::Mul | Opcode::SDiv | Opcode::UDiv => Some(NeutralElement::One),
            Opcode::And => Some(NeutralElement::AllOnes),
            Opcode::FAdd | Opcode::FSub => Some(NeutralElement::FZero),
            Opcode::FMul | Opcode::FDiv => Some(NeutralElement::FOne),
            _ => None,
        }
    }

    /// Short mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::SDiv => "sdiv",
            Opcode::UDiv => "udiv",
            Opcode::SRem => "srem",
            Opcode::URem => "urem",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Shl => "shl",
            Opcode::LShr => "lshr",
            Opcode::AShr => "ashr",
            Opcode::FAdd => "fadd",
            Opcode::FSub => "fsub",
            Opcode::FMul => "fmul",
            Opcode::FDiv => "fdiv",
            Opcode::Icmp => "icmp",
            Opcode::Fcmp => "fcmp",
            Opcode::Select => "select",
            Opcode::Trunc => "trunc",
            Opcode::ZExt => "zext",
            Opcode::SExt => "sext",
            Opcode::Bitcast => "bitcast",
            Opcode::PtrToInt => "ptrtoint",
            Opcode::IntToPtr => "inttoptr",
            Opcode::FpToSi => "fptosi",
            Opcode::SiToFp => "sitofp",
            Opcode::FpExt => "fpext",
            Opcode::FpTrunc => "fptrunc",
            Opcode::Alloca => "alloca",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Gep => "gep",
            Opcode::Call => "call",
            Opcode::Phi => "phi",
            Opcode::Br => "br",
            Opcode::CondBr => "condbr",
            Opcode::Ret => "ret",
            Opcode::Unreachable => "unreachable",
        }
    }

    /// Parses a mnemonic back into an opcode.
    pub fn from_mnemonic(name: &str) -> Option<Opcode> {
        Some(match name {
            "add" => Opcode::Add,
            "sub" => Opcode::Sub,
            "mul" => Opcode::Mul,
            "sdiv" => Opcode::SDiv,
            "udiv" => Opcode::UDiv,
            "srem" => Opcode::SRem,
            "urem" => Opcode::URem,
            "and" => Opcode::And,
            "or" => Opcode::Or,
            "xor" => Opcode::Xor,
            "shl" => Opcode::Shl,
            "lshr" => Opcode::LShr,
            "ashr" => Opcode::AShr,
            "fadd" => Opcode::FAdd,
            "fsub" => Opcode::FSub,
            "fmul" => Opcode::FMul,
            "fdiv" => Opcode::FDiv,
            "icmp" => Opcode::Icmp,
            "fcmp" => Opcode::Fcmp,
            "select" => Opcode::Select,
            "trunc" => Opcode::Trunc,
            "zext" => Opcode::ZExt,
            "sext" => Opcode::SExt,
            "bitcast" => Opcode::Bitcast,
            "ptrtoint" => Opcode::PtrToInt,
            "inttoptr" => Opcode::IntToPtr,
            "fptosi" => Opcode::FpToSi,
            "sitofp" => Opcode::SiToFp,
            "fpext" => Opcode::FpExt,
            "fptrunc" => Opcode::FpTrunc,
            "alloca" => Opcode::Alloca,
            "load" => Opcode::Load,
            "store" => Opcode::Store,
            "gep" => Opcode::Gep,
            "call" => Opcode::Call,
            "phi" => Opcode::Phi,
            "br" => Opcode::Br,
            "condbr" => Opcode::CondBr,
            "ret" => Opcode::Ret,
            "unreachable" => Opcode::Unreachable,
            _ => return None,
        })
    }
}

/// Neutral elements of binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeutralElement {
    /// Integer 0.
    Zero,
    /// Integer 1.
    One,
    /// All bits set (−1).
    AllOnes,
    /// Floating 0.0.
    FZero,
    /// Floating 1.0.
    FOne,
}

/// Integer comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // mnemonic variants are self-describing
pub enum IntPredicate {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl IntPredicate {
    /// Printer mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IntPredicate::Eq => "eq",
            IntPredicate::Ne => "ne",
            IntPredicate::Slt => "slt",
            IntPredicate::Sle => "sle",
            IntPredicate::Sgt => "sgt",
            IntPredicate::Sge => "sge",
            IntPredicate::Ult => "ult",
            IntPredicate::Ule => "ule",
            IntPredicate::Ugt => "ugt",
            IntPredicate::Uge => "uge",
        }
    }

    /// Parses a mnemonic back into a predicate.
    pub fn from_mnemonic(name: &str) -> Option<Self> {
        Some(match name {
            "eq" => IntPredicate::Eq,
            "ne" => IntPredicate::Ne,
            "slt" => IntPredicate::Slt,
            "sle" => IntPredicate::Sle,
            "sgt" => IntPredicate::Sgt,
            "sge" => IntPredicate::Sge,
            "ult" => IntPredicate::Ult,
            "ule" => IntPredicate::Ule,
            "ugt" => IntPredicate::Ugt,
            "uge" => IntPredicate::Uge,
            _ => return None,
        })
    }
}

/// Floating-point comparison predicates (ordered subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // mnemonic variants are self-describing
pub enum FloatPredicate {
    Oeq,
    One,
    Olt,
    Ole,
    Ogt,
    Oge,
}

impl FloatPredicate {
    /// Printer mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FloatPredicate::Oeq => "oeq",
            FloatPredicate::One => "one",
            FloatPredicate::Olt => "olt",
            FloatPredicate::Ole => "ole",
            FloatPredicate::Ogt => "ogt",
            FloatPredicate::Oge => "oge",
        }
    }

    /// Parses a mnemonic back into a predicate.
    pub fn from_mnemonic(name: &str) -> Option<Self> {
        Some(match name {
            "oeq" => FloatPredicate::Oeq,
            "one" => FloatPredicate::One,
            "olt" => FloatPredicate::Olt,
            "ole" => FloatPredicate::Ole,
            "ogt" => FloatPredicate::Ogt,
            "oge" => FloatPredicate::Oge,
            _ => return None,
        })
    }
}

/// Opcode-specific payload.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum InstExtra {
    /// No payload.
    None,
    /// `icmp` predicate.
    Icmp(IntPredicate),
    /// `fcmp` predicate.
    Fcmp(FloatPredicate),
    /// `gep` element type: the first index scales by `size_of(elem_ty)`;
    /// further indices navigate aggregates.
    Gep { elem_ty: TypeId },
    /// Direct call to a module function (operands are the arguments).
    Call { callee: FuncId },
    /// `phi` incoming blocks, parallel to the operand list.
    Phi { incoming: Vec<BlockId> },
    /// Unconditional branch target.
    Br { dest: BlockId },
    /// Conditional branch targets (operand 0 is the `i1` condition).
    CondBr {
        then_dest: BlockId,
        else_dest: BlockId,
    },
    /// `alloca` element type (operand 0, if present, is the count).
    Alloca { elem_ty: TypeId },
}

/// An instruction: opcode, result type, operands, and payload.
#[derive(Debug, Clone, PartialEq)]
pub struct InstData {
    /// Operation.
    pub opcode: Opcode,
    /// Result type; `void` for stores, branches, etc.
    pub ty: TypeId,
    /// SSA operands.
    pub operands: Vec<ValueId>,
    /// Block the instruction currently belongs to.
    pub block: BlockId,
    /// Opcode-specific payload.
    pub extra: InstExtra,
}

impl InstData {
    /// Successor blocks, for terminators.
    pub fn successors(&self) -> Vec<BlockId> {
        match &self.extra {
            InstExtra::Br { dest } => vec![*dest],
            InstExtra::CondBr {
                then_dest,
                else_dest,
            } => vec![*then_dest, *else_dest],
            _ => Vec::new(),
        }
    }

    /// Whether this instruction reads or writes memory or has other side
    /// effects that forbid deleting it when unused. Calls are refined by the
    /// callee's effect annotation at the analysis layer.
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self.opcode,
            Opcode::Store | Opcode::Call | Opcode::Ret | Opcode::Br | Opcode::CondBr
        ) || self.opcode.is_terminator()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_classification() {
        assert!(Opcode::Br.is_terminator());
        assert!(Opcode::Ret.is_terminator());
        assert!(!Opcode::Add.is_terminator());
        assert!(!Opcode::Store.is_terminator());
    }

    #[test]
    fn commutativity_and_associativity() {
        assert!(Opcode::Add.is_commutative());
        assert!(!Opcode::Sub.is_commutative());
        assert!(Opcode::Xor.is_associative(false));
        assert!(!Opcode::FAdd.is_associative(false));
        assert!(Opcode::FAdd.is_associative(true));
    }

    #[test]
    fn neutral_elements() {
        assert_eq!(Opcode::Add.neutral_element(), Some(NeutralElement::Zero));
        assert_eq!(Opcode::Mul.neutral_element(), Some(NeutralElement::One));
        assert_eq!(Opcode::And.neutral_element(), Some(NeutralElement::AllOnes));
        assert_eq!(Opcode::Icmp.neutral_element(), None);
    }

    #[test]
    fn mnemonic_round_trip() {
        for op in [
            Opcode::Add,
            Opcode::Gep,
            Opcode::Phi,
            Opcode::CondBr,
            Opcode::FpToSi,
            Opcode::Unreachable,
        ] {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn predicate_round_trip() {
        for p in [IntPredicate::Eq, IntPredicate::Slt, IntPredicate::Uge] {
            assert_eq!(IntPredicate::from_mnemonic(p.mnemonic()), Some(p));
        }
        for p in [FloatPredicate::Oeq, FloatPredicate::Ole] {
            assert_eq!(FloatPredicate::from_mnemonic(p.mnemonic()), Some(p));
        }
    }
}
