//! Dead code elimination.
//!
//! Removes live-range-dead instructions (no uses, no side effects) and
//! unreachable blocks. Used as a cleanup after loop rolling and constant
//! folding.

use std::collections::HashSet;

use crate::block::BlockId;
use crate::fold::normalize_int;
use crate::function::{Effects, Function};
use crate::inst::{InstExtra, Opcode};
use crate::module::Module;
use crate::types::TypeStore;
use crate::value::FuncId;

/// Whether an instruction must be kept even when its result is unused.
fn is_root(
    func: &Function,
    types: &TypeStore,
    inst: crate::inst::InstId,
    callee_effects: &dyn Fn(FuncId) -> Effects,
) -> bool {
    let data = func.inst(inst);
    match data.opcode {
        Opcode::Store | Opcode::Ret | Opcode::Br | Opcode::CondBr | Opcode::Unreachable => true,
        Opcode::Call => match &data.extra {
            InstExtra::Call { callee } => callee_effects(*callee) != Effects::ReadNone,
            _ => true,
        },
        // Division traps at run time (zero divisor; signed `MIN / -1`), so
        // an unused division is only dead when its divisor is a constant
        // that provably cannot trap at the operation's width.
        op @ (Opcode::SDiv | Opcode::UDiv | Opcode::SRem | Opcode::URem) => {
            let safe_divisor = func
                .value(data.operands[1])
                .as_const_int()
                .is_some_and(|v| {
                    let d = normalize_int(types, data.ty, v);
                    d != 0 && (matches!(op, Opcode::UDiv | Opcode::URem) || d != -1)
                });
            !safe_divisor
        }
        _ => false,
    }
}

/// Removes dead instructions from one function, resolving call effects
/// through `callee_effects`. Returns how many were removed.
pub fn run_dce_with(
    func: &mut Function,
    types: &TypeStore,
    callee_effects: &dyn Fn(FuncId) -> Effects,
) -> usize {
    let mut removed_total = 0;
    loop {
        let uses = func.compute_uses();
        let dead: Vec<_> = func
            .live_insts()
            .filter(|&i| {
                !is_root(func, types, i, callee_effects) && uses.count(func.inst_result(i)) == 0
            })
            .collect();
        if dead.is_empty() {
            break;
        }
        for i in &dead {
            func.remove_inst(*i);
        }
        removed_total += dead.len();
    }
    removed_total + remove_unreachable_blocks(func, types.void())
}

/// Removes dead instructions from one function. Returns how many were
/// removed.
pub fn run_dce_on(module: &Module, func: &mut Function) -> usize {
    run_dce_with(func, &module.types, &|callee| module.func(callee).effects)
}

/// Removes blocks unreachable from the entry (sealing their ids with
/// `unreachable`). Returns how many instructions were dropped.
pub fn remove_unreachable_blocks(func: &mut Function, void_ty: crate::types::TypeId) -> usize {
    if func.num_blocks() == 0 {
        return 0;
    }
    let mut reachable: HashSet<BlockId> = HashSet::new();
    let mut work = vec![func.entry_block()];
    while let Some(b) = work.pop() {
        if !reachable.insert(b) {
            continue;
        }
        for s in func.successors(b) {
            work.push(s);
        }
    }
    let mut dropped = 0;
    let unreachable: Vec<BlockId> = func
        .block_ids()
        .filter(|b| !reachable.contains(b))
        .collect();
    for b in unreachable {
        let insts: Vec<_> = func.block(b).insts.clone();
        // Already sealed: a lone `unreachable` contributes no code or
        // edges, and no phi can still name the block. Re-sealing would
        // count as progress every time and spin the cleanup fixpoint
        // forever.
        if insts.len() == 1 && func.inst(insts[0]).opcode == Opcode::Unreachable {
            continue;
        }
        for i in insts {
            func.remove_inst(i);
            dropped += 1;
        }
        // Keep the block well formed: it still exists (ids are stable) but
        // is sealed off with `unreachable`, contributing no code or edges.
        let (seal, _) = func.create_inst(crate::inst::InstData {
            opcode: Opcode::Unreachable,
            ty: void_ty,
            operands: Vec::new(),
            block: b,
            extra: InstExtra::None,
        });
        func.append_inst(b, seal);
        // Remove phi incomings that referenced the dead block.
        let live_blocks: Vec<BlockId> = func.block_ids().collect();
        for live_b in live_blocks {
            let phis: Vec<_> = func.block(live_b).insts.clone();
            for i in phis {
                let data = func.inst_mut(i);
                if data.opcode != Opcode::Phi {
                    continue;
                }
                if let InstExtra::Phi { incoming } = &mut data.extra {
                    let mut keep_ops = Vec::new();
                    let mut keep_in = Vec::new();
                    for (k, &inb) in incoming.iter().enumerate() {
                        if inb != b {
                            keep_in.push(inb);
                            keep_ops.push(data.operands[k]);
                        }
                    }
                    *incoming = keep_in;
                    data.operands = keep_ops;
                }
            }
        }
    }
    dropped
}

/// Runs DCE over every definition in the module. Returns the number of
/// instructions removed.
pub fn run_dce(module: &mut Module) -> usize {
    let ids: Vec<FuncId> = module.func_ids().collect();
    let mut removed = 0;
    for id in ids {
        if module.func(id).is_declaration {
            continue;
        }
        // Clone-free split: take the function out, run against the module,
        // and put it back.
        let mut func = module.func(id).clone();
        removed += run_dce_on(module, &mut func);
        module.replace_func(id, func);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;

    #[test]
    fn removes_unused_pure_instructions() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let mut fb = FuncBuilder::new(&mut m, "f", vec![i32t], i32t);
        let a = fb.param(0);
        fb.block("entry");
        fb.ins(|b| {
            let one = b.i32_const(1);
            let _dead = b.add(a, one);
            let _dead2 = b.mul(a, a);
            b.ret(Some(a));
        });
        let id = fb.finish();
        let removed = run_dce(&mut m);
        assert_eq!(removed, 2);
        assert_eq!(m.func(id).num_live_insts(), 1);
    }

    #[test]
    fn keeps_stores_and_effectful_calls() {
        let mut m = Module::new("t");
        let ptr = m.types.ptr();
        let void = m.types.void();
        m.declare_func("effect", vec![], void, Effects::ReadWrite);
        m.declare_func("pure", vec![], m.types.i32(), Effects::ReadNone);
        let mut fb = FuncBuilder::new(&mut m, "f", vec![ptr], void);
        let p = fb.param(0);
        fb.block("entry");
        let (eff, eff_ty) = fb.callee("effect");
        let (pure_fn, pure_ty) = fb.callee("pure");
        fb.ins(|b| {
            let x = b.i32_const(3);
            b.store(x, p);
            b.call(eff, eff_ty, &[]);
            b.call(pure_fn, pure_ty, &[]); // dead: readnone, unused
            b.ret(None);
        });
        let id = fb.finish();
        let removed = run_dce(&mut m);
        assert_eq!(removed, 1);
        assert_eq!(m.func(id).num_live_insts(), 3);
    }

    #[test]
    fn chains_of_dead_code_collapse() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let mut fb = FuncBuilder::new(&mut m, "f", vec![i32t], i32t);
        let a = fb.param(0);
        fb.block("entry");
        fb.ins(|b| {
            let x = b.add(a, a);
            let y = b.mul(x, x);
            let _z = b.sub(y, a);
            b.ret(Some(a));
        });
        let id = fb.finish();
        run_dce(&mut m);
        assert_eq!(m.func(id).num_live_insts(), 1);
    }

    #[test]
    fn keeps_unused_divisions_that_may_trap() {
        let text = r#"
module "t"
func @f(i32 %p0, i32 %p1) -> i32 {
entry:
  %a = sdiv i32 %p0, %p1
  %b = sdiv i32 %p0, i32 0
  %c = srem i32 %p0, i32 -1
  %d = udiv i32 %p0, i32 -1
  %e = sdiv i32 %p0, i32 4
  ret i32 0
}
"#;
        let mut m = crate::parser::parse_module(text).unwrap();
        let removed = run_dce(&mut m);
        // Unknown divisor, zero divisor, and signed -1 divisor must stay
        // (they can trap); `udiv` by all-ones and `sdiv` by 4 cannot.
        assert_eq!(removed, 2);
        let f = m.func(m.func_by_name("f").unwrap());
        let kept: Vec<_> = f
            .live_insts()
            .filter(|&i| f.inst(i).opcode != Opcode::Ret)
            .map(|i| f.inst(i).opcode)
            .collect();
        assert_eq!(kept, vec![Opcode::SDiv, Opcode::SDiv, Opcode::SRem]);
    }

    #[test]
    fn sealing_unreachable_blocks_is_idempotent() {
        // A sealed block must not be re-sealed on the next run: the
        // cleanup fixpoint (`simplify` + DCE until no change) would
        // otherwise count the re-seal as progress and loop forever.
        let text = r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  br join
dead:
  %1 = add i32 %p0, i32 5
  br join
join:
  %2 = phi i32 [ %p0, entry ], [ %1, dead ]
  ret %2
}
"#;
        let mut m = crate::parser::parse_module(text).unwrap();
        assert!(run_dce(&mut m) > 0);
        assert_eq!(run_dce(&mut m), 0, "second DCE run must be a no-op");
    }

    #[test]
    fn drops_unreachable_blocks_and_patches_phis() {
        let text = r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  br join
dead:
  %1 = add i32 %p0, i32 5
  br join
join:
  %2 = phi i32 [ %p0, entry ], [ %1, dead ]
  ret %2
}
"#;
        let mut m = crate::parser::parse_module(text).unwrap();
        run_dce(&mut m);
        let f = m.func(m.func_by_name("f").unwrap());
        // dead block emptied; phi has one incoming now.
        let join = f.block_by_name("join").unwrap();
        let phi = f.block(join).insts[0];
        assert_eq!(f.inst(phi).operands.len(), 1);
        assert!(crate::verify::verify_module(&m).is_ok());
    }
}
