//! Parser for the textual IR format produced by [`crate::printer`].
//!
//! Parsing is done in two passes: the first pass builds lightweight ASTs for
//! all items (registering every function name up front so calls may refer to
//! functions defined later in the file); the second pass materializes
//! instructions and resolves operands.

mod lexer;

pub use lexer::{is_plain_symbol, lex, LexError, Token};

use std::collections::HashMap;
use std::fmt;

use crate::block::BlockId;
use crate::function::{Effects, Function};
use crate::inst::{FloatPredicate, InstData, InstExtra, IntPredicate, Opcode};
use crate::module::{GlobalData, GlobalInit, Module};
use crate::types::TypeId;
use crate::value::ValueId;

use lexer::Spanned;

/// Error produced when parsing IR text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

type Result<T> = std::result::Result<T, ParseError>;

/// Parses a complete module from IR text.
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number on malformed input or
/// unresolved references.
pub fn parse_module(input: &str) -> Result<Module> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    p.parse_module()
}

#[derive(Debug, Clone)]
enum OperandAst {
    Local(String),
    CInt(TypeId, i64),
    CFloat(TypeId, f64),
    /// Bit-exact float constant (`0x...` spelling).
    CFloatBits(TypeId, u64),
    Ref(String),
    Undef(TypeId),
}

#[derive(Debug, Clone)]
struct InstAst {
    line: u32,
    col: u32,
    result: Option<String>,
    opcode: Opcode,
    ty: Option<TypeId>,
    ipred: Option<IntPredicate>,
    fpred: Option<FloatPredicate>,
    elem_ty: Option<TypeId>,
    callee: Option<String>,
    labels: Vec<String>,
    operands: Vec<OperandAst>,
}

#[derive(Debug, Clone)]
struct FuncAst {
    name: String,
    param_tys: Vec<TypeId>,
    param_names: Vec<String>,
    ret_ty: TypeId,
    is_decl: bool,
    effects: Effects,
    blocks: Vec<(String, Vec<InstAst>)>,
    line: u32,
    col: u32,
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn col(&self) -> u32 {
        self.tokens[self.pos].col
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
            col: self.col(),
        })
    }

    fn expect(&mut self, want: &Token) -> Result<()> {
        if self.peek() == want {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {want}, found {}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn expect_global(&mut self) -> Result<String> {
        match self.peek().clone() {
            Token::Global(s) => {
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected @name, found {other}")),
        }
    }

    fn expect_local(&mut self) -> Result<String> {
        match self.peek().clone() {
            Token::Local(s) => {
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected %name, found {other}")),
        }
    }

    fn expect_int(&mut self) -> Result<i64> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.next();
                Ok(v)
            }
            other => self.err(format!("expected integer, found {other}")),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Token::Newline) {
            self.next();
        }
    }

    fn expect_end_of_stmt(&mut self) -> Result<()> {
        match self.peek() {
            Token::Newline => {
                self.next();
                Ok(())
            }
            Token::Eof | Token::RBrace => Ok(()),
            other => self.err(format!("expected end of line, found {other}")),
        }
    }

    fn at_type_start(&self) -> bool {
        match self.peek() {
            Token::LBracket | Token::LBrace => true,
            Token::Ident(s) => {
                matches!(s.as_str(), "void" | "ptr" | "float" | "double")
                    || (s.starts_with('i')
                        && s[1..].chars().all(|c| c.is_ascii_digit())
                        && s.len() > 1)
            }
            _ => false,
        }
    }

    fn parse_type(&mut self, module: &mut Module) -> Result<TypeId> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.next();
                match s.as_str() {
                    "void" => Ok(module.types.void()),
                    "ptr" => Ok(module.types.ptr()),
                    "float" => Ok(module.types.float()),
                    "double" => Ok(module.types.double()),
                    _ if s.starts_with('i') => {
                        let width: u16 = s[1..].parse().map_err(|_| ParseError {
                            message: format!("bad type name {s}"),
                            line: self.line(),
                            col: self.col(),
                        })?;
                        if !(1..=128).contains(&width) {
                            return self.err(format!("invalid integer width {width}"));
                        }
                        Ok(module.types.int(width))
                    }
                    _ => self.err(format!("unknown type {s}")),
                }
            }
            Token::LBracket => {
                self.next();
                let len = self.expect_int()?;
                if len < 0 {
                    return self.err("negative array length");
                }
                let x = self.expect_ident()?;
                if x != "x" {
                    return self.err(format!("expected 'x' in array type, found {x}"));
                }
                let elem = self.parse_type(module)?;
                self.expect(&Token::RBracket)?;
                Ok(module.types.array(elem, len as u64))
            }
            Token::LBrace => {
                self.next();
                let mut fields = Vec::new();
                loop {
                    fields.push(self.parse_type(module)?);
                    if matches!(self.peek(), Token::Comma) {
                        self.next();
                    } else {
                        break;
                    }
                }
                self.expect(&Token::RBrace)?;
                Ok(module.types.struct_(fields))
            }
            other => self.err(format!("expected type, found {other}")),
        }
    }

    fn parse_operand(&mut self, module: &mut Module) -> Result<OperandAst> {
        match self.peek().clone() {
            Token::Local(name) => {
                self.next();
                Ok(OperandAst::Local(name))
            }
            Token::Global(name) => {
                self.next();
                Ok(OperandAst::Ref(name))
            }
            _ if self.at_type_start() => {
                let ty = self.parse_type(module)?;
                match self.peek().clone() {
                    Token::Int(v) => {
                        self.next();
                        if module.types.is_float(ty) {
                            Ok(OperandAst::CFloat(ty, v as f64))
                        } else {
                            Ok(OperandAst::CInt(ty, v))
                        }
                    }
                    Token::Float(v) => {
                        self.next();
                        Ok(OperandAst::CFloat(ty, v))
                    }
                    Token::HexBits(bits) => {
                        self.next();
                        if module.types.is_float(ty) {
                            Ok(OperandAst::CFloatBits(ty, bits))
                        } else {
                            Ok(OperandAst::CInt(ty, bits as i64))
                        }
                    }
                    Token::Ident(s) if s == "undef" => {
                        self.next();
                        Ok(OperandAst::Undef(ty))
                    }
                    other => self.err(format!("expected constant after type, found {other}")),
                }
            }
            other => self.err(format!("expected operand, found {other}")),
        }
    }

    fn parse_module(&mut self) -> Result<Module> {
        self.skip_newlines();
        self.expect(&Token::Ident("module".into()))?;
        let name = match self.next() {
            Token::Str(s) => s,
            other => return self.err(format!("expected module name string, found {other}")),
        };
        let mut module = Module::new(name);
        self.expect_end_of_stmt()?;

        let mut funcs: Vec<FuncAst> = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek().clone() {
                Token::Eof => break,
                Token::Ident(kw) if kw == "global" || kw == "const" => {
                    self.next();
                    self.parse_global(&mut module, kw == "const")?;
                }
                Token::Ident(kw) if kw == "declare" => {
                    self.next();
                    funcs.push(self.parse_func_header(&mut module, true)?);
                }
                Token::Ident(kw) if kw == "func" => {
                    self.next();
                    let mut ast = self.parse_func_header(&mut module, false)?;
                    self.parse_func_body(&mut module, &mut ast)?;
                    funcs.push(ast);
                }
                other => return self.err(format!("expected top-level item, found {other}")),
            }
        }

        // Register every function name first so calls can refer forwards.
        let mut ids = Vec::new();
        for ast in &funcs {
            if module.func_by_name(&ast.name).is_some() {
                return Err(ParseError {
                    message: format!("function @{} defined twice", ast.name),
                    line: ast.line,
                    col: ast.col,
                });
            }
            if module.global_by_name(&ast.name).is_some() {
                return Err(ParseError {
                    message: format!("@{} defined as both a global and a function", ast.name),
                    line: ast.line,
                    col: ast.col,
                });
            }
            let decl = Function::declare(
                ast.name.clone(),
                ast.param_tys.clone(),
                ast.ret_ty,
                ast.effects,
            );
            ids.push(module.add_func(decl));
        }
        for (ast, id) in funcs.iter().zip(&ids) {
            if !ast.is_decl {
                let func = build_function(&mut module, ast)?;
                module.replace_func(*id, func);
            }
        }
        Ok(module)
    }

    fn parse_global(&mut self, module: &mut Module, is_const: bool) -> Result<()> {
        let (line, col) = (self.line(), self.col());
        let name = self.expect_global()?;
        if module.global_by_name(&name).is_some() {
            return Err(ParseError {
                message: format!("global @{name} defined twice"),
                line,
                col,
            });
        }
        self.expect(&Token::Colon)?;
        let ty = self.parse_type(module)?;
        self.expect(&Token::Eq)?;
        let kw = self.expect_ident()?;
        let init = match kw.as_str() {
            "zero" => GlobalInit::Zero,
            "ints" => {
                let elem_ty = self.parse_type(module)?;
                self.expect(&Token::LBracket)?;
                let mut values = Vec::new();
                if !matches!(self.peek(), Token::RBracket) {
                    loop {
                        values.push(self.expect_int()?);
                        if matches!(self.peek(), Token::Comma) {
                            self.next();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBracket)?;
                GlobalInit::Ints { elem_ty, values }
            }
            "bytes" => {
                self.expect(&Token::LBracket)?;
                let mut values = Vec::new();
                if !matches!(self.peek(), Token::RBracket) {
                    loop {
                        let v = self.expect_int()?;
                        if !(0..=255).contains(&v) {
                            return self.err(format!("byte out of range: {v}"));
                        }
                        values.push(v as u8);
                        if matches!(self.peek(), Token::Comma) {
                            self.next();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBracket)?;
                GlobalInit::Bytes(values)
            }
            other => return self.err(format!("unknown global initializer {other}")),
        };
        module.add_global(GlobalData {
            name,
            ty,
            init,
            is_const,
        });
        self.expect_end_of_stmt()?;
        Ok(())
    }

    fn parse_func_header(&mut self, module: &mut Module, is_decl: bool) -> Result<FuncAst> {
        let (line, col) = (self.line(), self.col());
        let name = self.expect_global()?;
        self.expect(&Token::LParen)?;
        let mut param_tys = Vec::new();
        let mut param_names = Vec::new();
        if !matches!(self.peek(), Token::RParen) {
            loop {
                let ty = self.parse_type(module)?;
                let (pline, pcol) = (self.line(), self.col());
                let pname = self.expect_local()?;
                if param_names.contains(&pname) {
                    return Err(ParseError {
                        message: format!("parameter %{pname} defined twice"),
                        line: pline,
                        col: pcol,
                    });
                }
                param_tys.push(ty);
                param_names.push(pname);
                if matches!(self.peek(), Token::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        self.expect(&Token::Arrow)?;
        let ret_ty = self.parse_type(module)?;
        let mut effects = Effects::ReadWrite;
        if is_decl {
            if let Token::Ident(s) = self.peek().clone() {
                if let Some(e) = Effects::from_mnemonic(&s) {
                    self.next();
                    effects = e;
                }
            }
            self.expect_end_of_stmt()?;
        }
        Ok(FuncAst {
            name,
            param_tys,
            param_names,
            ret_ty,
            is_decl,
            effects,
            blocks: Vec::new(),
            line,
            col,
        })
    }

    fn parse_func_body(&mut self, module: &mut Module, ast: &mut FuncAst) -> Result<()> {
        self.expect(&Token::LBrace)?;
        self.skip_newlines();
        loop {
            self.skip_newlines();
            if matches!(self.peek(), Token::RBrace) {
                self.next();
                self.expect_end_of_stmt()?;
                break;
            }
            // Block label.
            let label = self.expect_ident()?;
            self.expect(&Token::Colon)?;
            self.expect_end_of_stmt()?;
            let mut insts = Vec::new();
            loop {
                self.skip_newlines();
                // Lookahead: a label is `ident ':'`; `}` ends the body.
                if matches!(self.peek(), Token::RBrace) {
                    break;
                }
                if let Token::Ident(_) = self.peek() {
                    if matches!(self.tokens[self.pos + 1].token, Token::Colon) {
                        break;
                    }
                }
                insts.push(self.parse_inst(module)?);
            }
            ast.blocks.push((label, insts));
        }
        Ok(())
    }

    fn parse_inst(&mut self, module: &mut Module) -> Result<InstAst> {
        let (line, col) = (self.line(), self.col());
        let mut result = None;
        if let Token::Local(name) = self.peek().clone() {
            self.next();
            self.expect(&Token::Eq)?;
            result = Some(name);
        }
        let mnemonic = self.expect_ident()?;
        let opcode = Opcode::from_mnemonic(&mnemonic).ok_or_else(|| ParseError {
            message: format!("unknown opcode {mnemonic}"),
            line,
            col,
        })?;
        let mut ast = InstAst {
            line,
            col,
            result,
            opcode,
            ty: None,
            ipred: None,
            fpred: None,
            elem_ty: None,
            callee: None,
            labels: Vec::new(),
            operands: Vec::new(),
        };
        match opcode {
            op if op.is_binop() => {
                ast.ty = Some(self.parse_type(module)?);
                ast.operands.push(self.parse_operand(module)?);
                self.expect(&Token::Comma)?;
                ast.operands.push(self.parse_operand(module)?);
            }
            Opcode::Icmp => {
                let p = self.expect_ident()?;
                ast.ipred = Some(IntPredicate::from_mnemonic(&p).ok_or_else(|| ParseError {
                    message: format!("unknown icmp predicate {p}"),
                    line,
                    col,
                })?);
                ast.operands.push(self.parse_operand(module)?);
                self.expect(&Token::Comma)?;
                ast.operands.push(self.parse_operand(module)?);
            }
            Opcode::Fcmp => {
                let p = self.expect_ident()?;
                ast.fpred = Some(FloatPredicate::from_mnemonic(&p).ok_or_else(|| ParseError {
                    message: format!("unknown fcmp predicate {p}"),
                    line,
                    col,
                })?);
                ast.operands.push(self.parse_operand(module)?);
                self.expect(&Token::Comma)?;
                ast.operands.push(self.parse_operand(module)?);
            }
            Opcode::Select => {
                ast.ty = Some(self.parse_type(module)?);
                for i in 0..3 {
                    if i > 0 {
                        self.expect(&Token::Comma)?;
                    }
                    ast.operands.push(self.parse_operand(module)?);
                }
            }
            op if op.is_cast() => {
                ast.ty = Some(self.parse_type(module)?);
                ast.operands.push(self.parse_operand(module)?);
            }
            Opcode::Alloca => {
                ast.elem_ty = Some(self.parse_type(module)?);
                if matches!(self.peek(), Token::Comma) {
                    self.next();
                    ast.operands.push(self.parse_operand(module)?);
                }
            }
            Opcode::Load => {
                ast.ty = Some(self.parse_type(module)?);
                self.expect(&Token::Comma)?;
                ast.operands.push(self.parse_operand(module)?);
            }
            Opcode::Store => {
                ast.operands.push(self.parse_operand(module)?);
                self.expect(&Token::Comma)?;
                ast.operands.push(self.parse_operand(module)?);
            }
            Opcode::Gep => {
                ast.elem_ty = Some(self.parse_type(module)?);
                self.expect(&Token::Comma)?;
                ast.operands.push(self.parse_operand(module)?);
                while matches!(self.peek(), Token::Comma) {
                    self.next();
                    ast.operands.push(self.parse_operand(module)?);
                }
            }
            Opcode::Call => {
                ast.ty = Some(self.parse_type(module)?);
                ast.callee = Some(self.expect_global()?);
                self.expect(&Token::LParen)?;
                if !matches!(self.peek(), Token::RParen) {
                    loop {
                        ast.operands.push(self.parse_operand(module)?);
                        if matches!(self.peek(), Token::Comma) {
                            self.next();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen)?;
            }
            Opcode::Phi => {
                ast.ty = Some(self.parse_type(module)?);
                loop {
                    self.expect(&Token::LBracket)?;
                    ast.operands.push(self.parse_operand(module)?);
                    self.expect(&Token::Comma)?;
                    ast.labels.push(self.expect_ident()?);
                    self.expect(&Token::RBracket)?;
                    if matches!(self.peek(), Token::Comma) {
                        self.next();
                    } else {
                        break;
                    }
                }
            }
            Opcode::Br => {
                ast.labels.push(self.expect_ident()?);
            }
            Opcode::CondBr => {
                ast.operands.push(self.parse_operand(module)?);
                self.expect(&Token::Comma)?;
                ast.labels.push(self.expect_ident()?);
                self.expect(&Token::Comma)?;
                ast.labels.push(self.expect_ident()?);
            }
            Opcode::Ret => {
                if !matches!(self.peek(), Token::Newline | Token::Eof | Token::RBrace) {
                    ast.operands.push(self.parse_operand(module)?);
                }
            }
            Opcode::Unreachable => {}
            other => {
                return self.err(format!("cannot parse opcode {other:?}"));
            }
        }
        self.expect_end_of_stmt()?;
        Ok(ast)
    }
}

fn build_function(module: &mut Module, ast: &FuncAst) -> Result<Function> {
    let mut func = Function::new(ast.name.clone(), ast.param_tys.clone(), ast.ret_ty);
    let mut locals: HashMap<String, ValueId> = HashMap::new();
    for (i, pname) in ast.param_names.iter().enumerate() {
        locals.insert(pname.clone(), func.param(i));
    }
    let mut block_map: HashMap<String, BlockId> = HashMap::new();
    for (label, _) in &ast.blocks {
        if block_map.contains_key(label) {
            return Err(ParseError {
                message: format!("duplicate block label {label}"),
                line: ast.line,
                col: ast.col,
            });
        }
        let b = func.add_block(label.clone());
        block_map.insert(label.clone(), b);
    }
    let lookup_block = |name: &str, line: u32, col: u32| -> Result<BlockId> {
        block_map.get(name).copied().ok_or_else(|| ParseError {
            message: format!("unknown block label {name}"),
            line,
            col,
        })
    };

    // First sweep: create instructions (with empty operand lists) so that
    // forward value references (e.g. phis) resolve.
    let mut created: Vec<(crate::inst::InstId, usize)> = Vec::new(); // (inst, ast index)
    let mut flat_asts: Vec<&InstAst> = Vec::new();
    for (label, insts) in &ast.blocks {
        let bb = block_map[label];
        for inst_ast in insts {
            let extra = match inst_ast.opcode {
                Opcode::Icmp => InstExtra::Icmp(inst_ast.ipred.unwrap()),
                Opcode::Fcmp => InstExtra::Fcmp(inst_ast.fpred.unwrap()),
                Opcode::Gep => InstExtra::Gep {
                    elem_ty: inst_ast.elem_ty.unwrap(),
                },
                Opcode::Alloca => InstExtra::Alloca {
                    elem_ty: inst_ast.elem_ty.unwrap(),
                },
                Opcode::Call => {
                    let callee_name = inst_ast.callee.as_ref().unwrap();
                    let callee = module.func_by_name(callee_name).ok_or_else(|| ParseError {
                        message: format!("unknown callee @{callee_name}"),
                        line: inst_ast.line,
                        col: inst_ast.col,
                    })?;
                    InstExtra::Call { callee }
                }
                Opcode::Phi => {
                    let mut incoming = Vec::new();
                    for l in &inst_ast.labels {
                        incoming.push(lookup_block(l, inst_ast.line, inst_ast.col)?);
                    }
                    InstExtra::Phi { incoming }
                }
                Opcode::Br => InstExtra::Br {
                    dest: lookup_block(&inst_ast.labels[0], inst_ast.line, inst_ast.col)?,
                },
                Opcode::CondBr => InstExtra::CondBr {
                    then_dest: lookup_block(&inst_ast.labels[0], inst_ast.line, inst_ast.col)?,
                    else_dest: lookup_block(&inst_ast.labels[1], inst_ast.line, inst_ast.col)?,
                },
                _ => InstExtra::None,
            };
            let ty = match inst_ast.opcode {
                Opcode::Icmp | Opcode::Fcmp => module.types.i1(),
                Opcode::Gep | Opcode::Alloca => module.types.ptr(),
                Opcode::Store | Opcode::Br | Opcode::CondBr | Opcode::Ret | Opcode::Unreachable => {
                    module.types.void()
                }
                _ => inst_ast.ty.ok_or_else(|| ParseError {
                    message: "missing result type".into(),
                    line: inst_ast.line,
                    col: inst_ast.col,
                })?,
            };
            let (inst, value) = func.create_inst(InstData {
                opcode: inst_ast.opcode,
                ty,
                operands: Vec::new(),
                block: bb,
                extra,
            });
            func.append_inst(bb, inst);
            if let Some(name) = &inst_ast.result {
                if locals.insert(name.clone(), value).is_some() {
                    return Err(ParseError {
                        message: format!("value %{name} defined twice"),
                        line: inst_ast.line,
                        col: inst_ast.col,
                    });
                }
            }
            created.push((inst, flat_asts.len()));
            flat_asts.push(inst_ast);
        }
    }

    // Second sweep: resolve operands.
    for (inst, ast_idx) in created {
        let inst_ast = flat_asts[ast_idx];
        let mut operands = Vec::with_capacity(inst_ast.operands.len());
        for op in &inst_ast.operands {
            let v = match op {
                OperandAst::Local(name) => *locals.get(name).ok_or_else(|| ParseError {
                    message: format!("unknown value %{name}"),
                    line: inst_ast.line,
                    col: inst_ast.col,
                })?,
                OperandAst::CInt(ty, v) => func.const_int(*ty, *v),
                OperandAst::CFloat(ty, v) => func.const_float(*ty, *v),
                OperandAst::CFloatBits(ty, bits) => func.const_float_bits(*ty, *bits),
                OperandAst::Ref(name) => {
                    if let Some(g) = module.global_by_name(name) {
                        func.global_addr(g)
                    } else if let Some(f) = module.func_by_name(name) {
                        func.func_addr(f)
                    } else {
                        return Err(ParseError {
                            message: format!("unknown reference @{name}"),
                            line: inst_ast.line,
                            col: inst_ast.col,
                        });
                    }
                }
                OperandAst::Undef(ty) => func.undef(*ty),
            };
            operands.push(v);
        }
        func.inst_mut(inst).operands = operands;
    }
    Ok(func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const SAMPLE: &str = r#"
module "demo"
const @tab : [3 x i32] = ints i32 [1, 2, 3]
declare @ext(ptr %p0) -> void readwrite

func @f(i32 %p0, ptr %p1) -> i32 {
entry:
  %2 = add i32 %p0, i32 1
  %3 = gep i32, %p1, %2
  store %2, %3
  call void @ext(%p1)
  %4 = icmp slt %2, %p0
  condbr %4, then, exit
then:
  br exit
exit:
  %5 = phi i32 [ %2, entry ], [ i32 0, then ]
  ret %5
}
"#;

    #[test]
    fn parse_and_reprint_round_trip() {
        let m = parse_module(SAMPLE).expect("parse failed");
        let printed = print_module(&m);
        let m2 = parse_module(&printed).expect("re-parse failed");
        let printed2 = print_module(&m2);
        assert_eq!(printed, printed2, "printing must be a fixed point");
    }

    #[test]
    fn parse_resolves_globals_and_calls() {
        let m = parse_module(SAMPLE).unwrap();
        assert!(m.global_by_name("tab").is_some());
        let f = m.func(m.func_by_name("f").unwrap());
        assert_eq!(f.num_blocks(), 3);
        assert_eq!(f.num_live_insts(), 9);
    }

    #[test]
    fn forward_call_references_work() {
        let text = r#"
module "fwd"
func @a() -> void {
entry:
  call void @b()
  ret
}
func @b() -> void {
entry:
  ret
}
"#;
        let m = parse_module(text).unwrap();
        assert_eq!(m.num_funcs(), 2);
    }

    #[test]
    fn unknown_value_is_an_error() {
        let text = "module \"e\"\nfunc @f() -> void {\nentry:\n  ret %nope\n}\n";
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("unknown value"));
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        let text = "module \"e\"\nfunc @f() -> void {\nentry:\n  frobnicate\n}\n";
        assert!(parse_module(text).is_err());
    }

    #[test]
    fn duplicate_definition_is_an_error() {
        let text = "module \"e\"\nfunc @f(i32 %p0) -> void {\nentry:\n  %1 = add i32 %p0, i32 1\n  %1 = add i32 %p0, i32 2\n  ret\n}\n";
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("defined twice"));
    }

    #[test]
    fn duplicate_global_is_a_spanned_error() {
        let text = "module \"e\"\nglobal @g : i32 = zero\nglobal @g : i64 = zero\n";
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("global @g defined twice"));
        assert_eq!((err.line, err.col), (3, 8));
    }

    #[test]
    fn duplicate_function_is_a_spanned_error() {
        let text = "module \"e\"\nfunc @f() -> void {\nentry:\n  ret\n}\nfunc @f() -> void {\nentry:\n  ret\n}\n";
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("function @f defined twice"));
        assert_eq!(err.line, 6);
    }

    #[test]
    fn global_function_name_clash_is_an_error() {
        let text = "module \"e\"\nglobal @f : i32 = zero\nfunc @f() -> void {\nentry:\n  ret\n}\n";
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("both a global and a function"));
    }

    #[test]
    fn duplicate_parameter_is_a_spanned_error() {
        let text = "module \"e\"\nfunc @f(i32 %a, i64 %a) -> void {\nentry:\n  ret\n}\n";
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("parameter %a defined twice"));
        assert_eq!((err.line, err.col), (2, 21));
    }

    #[test]
    fn non_finite_floats_round_trip_bit_exactly() {
        use crate::value::ValueDef;
        let text = "module \"f\"\nfunc @f() -> double {\nentry:\n  %0 = fadd double double 0x7ff0000000000000, double 0x7ff8000000000dea\n  ret %0\n}\n";
        let m = parse_module(text).unwrap();
        let printed = print_module(&m);
        assert!(printed.contains("0x7ff0000000000000"));
        assert!(printed.contains("0x7ff8000000000dea"));
        let m2 = parse_module(&printed).unwrap();
        let f = m2.func(m2.func_by_name("f").unwrap());
        let bits: Vec<u64> = (0..f.num_values())
            .filter_map(|i| match f.value(ValueId::from_index(i)) {
                ValueDef::ConstFloat { bits, .. } => Some(*bits),
                _ => None,
            })
            .collect();
        assert!(bits.contains(&0x7ff0000000000000));
        assert!(bits.contains(&0x7ff8000000000dea));
    }

    #[test]
    fn escaped_names_round_trip() {
        let mut m = Module::new("has \"quotes\"\nand newline");
        let ty = m.types.i32();
        m.add_zero_global("weird name/\\", ty);
        let printed = print_module(&m);
        let m2 = parse_module(&printed).expect("escaped output must re-parse");
        assert_eq!(m2.name, m.name);
        assert!(m2.global_by_name("weird name/\\").is_some());
        assert_eq!(printed, print_module(&m2));
    }

    #[test]
    fn struct_and_float_types_parse() {
        let text = "module \"t\"\nglobal @s : { i32, [2 x double] } = zero\n";
        let m = parse_module(text).unwrap();
        let g = m.global(m.global_by_name("s").unwrap());
        assert_eq!(m.types.size_of(g.ty), 24);
    }
}
