//! Tokenizer for the textual IR format.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier (keywords, opcodes, labels, type names).
    Ident(String),
    /// `%name` local value reference.
    Local(String),
    /// `@name` global/function reference.
    Global(String),
    /// Integer literal (possibly negative).
    Int(i64),
    /// Floating-point literal (contains `.`, `e`, `inf`, or `nan`).
    Float(f64),
    /// Double-quoted string.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `->`
    Arrow,
    /// End of line (statement separator).
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Local(s) => write!(f, "%{s}"),
            Token::Global(s) => write!(f, "@{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Colon => write!(f, ":"),
            Token::Eq => write!(f, "="),
            Token::Arrow => write!(f, "->"),
            Token::Newline => write!(f, "<newline>"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line number.
    pub line: u32,
}

/// Lexer error (unexpected character or malformed literal).
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line number.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '.'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// Tokenizes `input`. Consecutive newlines collapse into one
/// [`Token::Newline`]; `//` comments run to end of line.
pub fn lex(input: &str) -> Result<Vec<Spanned>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line: u32 = 1;
    let push = |t: Token, line: u32, tokens: &mut Vec<Spanned>| {
        if t == Token::Newline
            && matches!(
                tokens.last(),
                None | Some(Spanned {
                    token: Token::Newline,
                    ..
                })
            )
        {
            return;
        }
        tokens.push(Spanned { token: t, line });
    };
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                chars.next();
                push(Token::Newline, line, &mut tokens);
                line += 1;
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    while let Some(&c2) = chars.peek() {
                        if c2 == '\n' {
                            break;
                        }
                        chars.next();
                    }
                } else {
                    return Err(LexError {
                        message: "unexpected '/'".into(),
                        line,
                    });
                }
            }
            '(' => {
                chars.next();
                push(Token::LParen, line, &mut tokens);
            }
            ')' => {
                chars.next();
                push(Token::RParen, line, &mut tokens);
            }
            '{' => {
                chars.next();
                push(Token::LBrace, line, &mut tokens);
            }
            '}' => {
                chars.next();
                push(Token::RBrace, line, &mut tokens);
            }
            '[' => {
                chars.next();
                push(Token::LBracket, line, &mut tokens);
            }
            ']' => {
                chars.next();
                push(Token::RBracket, line, &mut tokens);
            }
            ',' => {
                chars.next();
                push(Token::Comma, line, &mut tokens);
            }
            ':' => {
                chars.next();
                push(Token::Colon, line, &mut tokens);
            }
            '=' => {
                chars.next();
                push(Token::Eq, line, &mut tokens);
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    push(Token::Arrow, line, &mut tokens);
                } else {
                    // Negative number.
                    let num = lex_number(&mut chars, true, line)?;
                    push(num, line, &mut tokens);
                }
            }
            '%' => {
                chars.next();
                let mut name = String::new();
                while let Some(&c2) = chars.peek() {
                    if is_ident_continue(c2) {
                        name.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(LexError {
                        message: "empty local name after '%'".into(),
                        line,
                    });
                }
                push(Token::Local(name), line, &mut tokens);
            }
            '@' => {
                chars.next();
                let mut name = String::new();
                while let Some(&c2) = chars.peek() {
                    if is_ident_continue(c2) {
                        name.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(LexError {
                        message: "empty global name after '@'".into(),
                        line,
                    });
                }
                push(Token::Global(name), line, &mut tokens);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(LexError {
                                message: "unterminated string".into(),
                                line,
                            })
                        }
                        Some(c2) => s.push(c2),
                    }
                }
                push(Token::Str(s), line, &mut tokens);
            }
            c if c.is_ascii_digit() => {
                let num = lex_number(&mut chars, false, line)?;
                push(num, line, &mut tokens);
            }
            c if is_ident_start(c) => {
                let mut name = String::new();
                while let Some(&c2) = chars.peek() {
                    if is_ident_continue(c2) {
                        name.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                push(Token::Ident(name), line, &mut tokens);
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line,
                })
            }
        }
    }
    tokens.push(Spanned {
        token: Token::Eof,
        line,
    });
    Ok(tokens)
}

fn lex_number(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    negative: bool,
    line: u32,
) -> Result<Token, LexError> {
    let mut text = String::new();
    if negative {
        text.push('-');
    }
    let mut is_float = false;
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() {
            text.push(c);
            chars.next();
        } else if c == '.' || c == 'e' || c == 'E' {
            is_float = true;
            text.push(c);
            chars.next();
            if (c == 'e' || c == 'E') && (chars.peek() == Some(&'-') || chars.peek() == Some(&'+'))
            {
                text.push(chars.next().unwrap());
            }
        } else {
            break;
        }
    }
    if is_float {
        text.parse::<f64>().map(Token::Float).map_err(|_| LexError {
            message: format!("bad float literal {text:?}"),
            line,
        })
    } else {
        text.parse::<i64>().map(Token::Int).map_err(|_| LexError {
            message: format!("bad int literal {text:?}"),
            line,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("%5 = add i32 %p0, i32 -1"),
            vec![
                Token::Local("5".into()),
                Token::Eq,
                Token::Ident("add".into()),
                Token::Ident("i32".into()),
                Token::Local("p0".into()),
                Token::Comma,
                Token::Ident("i32".into()),
                Token::Int(-1),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn floats_and_strings() {
        assert_eq!(
            toks("double 1.5 \"hi\" 2e3"),
            vec![
                Token::Ident("double".into()),
                Token::Float(1.5),
                Token::Str("hi".into()),
                Token::Float(2000.0),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn newlines_collapse_and_comments_skip() {
        assert_eq!(
            toks("a // comment\n\n\nb"),
            vec![
                Token::Ident("a".into()),
                Token::Newline,
                Token::Ident("b".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn arrow_vs_negative() {
        assert_eq!(
            toks("-> -42"),
            vec![Token::Arrow, Token::Int(-42), Token::Eof]
        );
    }

    #[test]
    fn error_on_bad_char() {
        assert!(lex("$").is_err());
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn line_numbers_advance() {
        let spanned = lex("a\nb\nc").unwrap();
        let lines: Vec<u32> = spanned.iter().map(|s| s.line).collect();
        // a, newline, b, newline, c, eof
        assert_eq!(lines, vec![1, 1, 2, 2, 3, 3]);
    }
}
