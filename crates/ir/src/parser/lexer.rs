//! Tokenizer for the textual IR format.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier (keywords, opcodes, labels, type names).
    Ident(String),
    /// `%name` local value reference.
    Local(String),
    /// `@name` global/function reference.
    Global(String),
    /// Integer literal (possibly negative).
    Int(i64),
    /// Floating-point literal (contains `.` or an exponent).
    Float(f64),
    /// `0x...` hexadecimal bit pattern. Used for bit-exact float constants
    /// (NaN payloads, infinities) that have no decimal spelling.
    HexBits(u64),
    /// Double-quoted string (escapes already decoded).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `->`
    Arrow,
    /// End of line (statement separator).
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Local(s) => write!(f, "%{s}"),
            Token::Global(s) => write!(f, "@{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::HexBits(v) => write!(f, "{v:#x}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Colon => write!(f, ":"),
            Token::Eq => write!(f, "="),
            Token::Arrow => write!(f, "->"),
            Token::Newline => write!(f, "<newline>"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus the 1-based source line and column it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in characters).
    pub col: u32,
}

/// Lexer error (unexpected character or malformed literal).
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at line {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '.'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// True when `name` can be printed bare after `@`/`%` (no quoting needed).
pub fn is_plain_symbol(name: &str) -> bool {
    !name.is_empty() && name.chars().all(is_ident_continue)
}

/// Character cursor tracking 1-based line/column positions.
struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        match c {
            Some('\n') => {
                self.line += 1;
                self.col = 1;
            }
            Some(_) => self.col += 1,
            None => {}
        }
        c
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, LexError> {
        Err(LexError {
            message: message.into(),
            line: self.line,
            col: self.col,
        })
    }

    /// Consumes ident-continue characters into a string.
    fn take_ident(&mut self) -> String {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        name
    }

    /// Consumes a double-quoted string body (opening quote already
    /// consumed), decoding `\"`, `\\`, `\n`, `\t`, `\0` and `\xNN` escapes.
    fn take_string(&mut self) -> Result<String, LexError> {
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('0') => s.push('\0'),
                    Some('x') => {
                        let hi = self.bump();
                        let lo = self.bump();
                        let (Some(hi), Some(lo)) = (
                            hi.and_then(|c| c.to_digit(16)),
                            lo.and_then(|c| c.to_digit(16)),
                        ) else {
                            return self.err("bad \\x escape (expected two hex digits)");
                        };
                        let code = (hi * 16 + lo) as u8;
                        s.push(code as char);
                    }
                    Some(other) => return self.err(format!("unknown escape \\{other}")),
                    None => return self.err("unterminated string"),
                },
                Some('\n') | None => return self.err("unterminated string"),
                Some(c) => s.push(c),
            }
        }
    }

    /// Lexes a symbol name after `@`/`%`: bare identifier or quoted string.
    fn take_symbol(&mut self, sigil: char) -> Result<String, LexError> {
        if self.peek() == Some('"') {
            self.bump();
            return self.take_string();
        }
        let name = self.take_ident();
        if name.is_empty() {
            return self.err(format!("empty name after '{sigil}'"));
        }
        Ok(name)
    }
}

/// Tokenizes `input`. Consecutive newlines collapse into one
/// [`Token::Newline`]; `//` and `;` comments run to end of line (the
/// latter is the LLVM-style spelling the lit golden tests use for their
/// `; RUN:` and `; CHECK:` directives).
pub fn lex(input: &str) -> Result<Vec<Spanned>, LexError> {
    let mut tokens = Vec::new();
    let mut cur = Cursor {
        chars: input.chars().peekable(),
        line: 1,
        col: 1,
    };
    let push = |t: Token, line: u32, col: u32, tokens: &mut Vec<Spanned>| {
        if t == Token::Newline
            && matches!(
                tokens.last(),
                None | Some(Spanned {
                    token: Token::Newline,
                    ..
                })
            )
        {
            return;
        }
        tokens.push(Spanned {
            token: t,
            line,
            col,
        });
    };
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            '\n' => {
                cur.bump();
                push(Token::Newline, line, col, &mut tokens);
            }
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' => {
                cur.bump();
                if cur.peek() == Some('/') {
                    while let Some(c2) = cur.peek() {
                        if c2 == '\n' {
                            break;
                        }
                        cur.bump();
                    }
                } else {
                    return Err(LexError {
                        message: "unexpected '/'".into(),
                        line,
                        col,
                    });
                }
            }
            ';' => {
                while let Some(c2) = cur.peek() {
                    if c2 == '\n' {
                        break;
                    }
                    cur.bump();
                }
            }
            '(' => {
                cur.bump();
                push(Token::LParen, line, col, &mut tokens);
            }
            ')' => {
                cur.bump();
                push(Token::RParen, line, col, &mut tokens);
            }
            '{' => {
                cur.bump();
                push(Token::LBrace, line, col, &mut tokens);
            }
            '}' => {
                cur.bump();
                push(Token::RBrace, line, col, &mut tokens);
            }
            '[' => {
                cur.bump();
                push(Token::LBracket, line, col, &mut tokens);
            }
            ']' => {
                cur.bump();
                push(Token::RBracket, line, col, &mut tokens);
            }
            ',' => {
                cur.bump();
                push(Token::Comma, line, col, &mut tokens);
            }
            ':' => {
                cur.bump();
                push(Token::Colon, line, col, &mut tokens);
            }
            '=' => {
                cur.bump();
                push(Token::Eq, line, col, &mut tokens);
            }
            '-' => {
                cur.bump();
                if cur.peek() == Some('>') {
                    cur.bump();
                    push(Token::Arrow, line, col, &mut tokens);
                } else {
                    // Negative number.
                    let num = lex_number(&mut cur, true)?;
                    push(num, line, col, &mut tokens);
                }
            }
            '%' => {
                cur.bump();
                let name = cur.take_symbol('%')?;
                push(Token::Local(name), line, col, &mut tokens);
            }
            '@' => {
                cur.bump();
                let name = cur.take_symbol('@')?;
                push(Token::Global(name), line, col, &mut tokens);
            }
            '"' => {
                cur.bump();
                let s = cur.take_string()?;
                push(Token::Str(s), line, col, &mut tokens);
            }
            c if c.is_ascii_digit() => {
                let num = lex_number(&mut cur, false)?;
                push(num, line, col, &mut tokens);
            }
            c if is_ident_start(c) => {
                let name = cur.take_ident();
                push(Token::Ident(name), line, col, &mut tokens);
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line,
                    col,
                })
            }
        }
    }
    tokens.push(Spanned {
        token: Token::Eof,
        line: cur.line,
        col: cur.col,
    });
    Ok(tokens)
}

fn lex_number(cur: &mut Cursor<'_>, negative: bool) -> Result<Token, LexError> {
    let mut text = String::new();
    if negative {
        text.push('-');
    } else if cur.peek() == Some('0') {
        // Possible `0x...` bit pattern.
        cur.bump();
        if cur.peek() == Some('x') {
            cur.bump();
            let mut hex = String::new();
            while let Some(c) = cur.peek() {
                if c.is_ascii_hexdigit() {
                    hex.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            return u64::from_str_radix(&hex, 16)
                .map(Token::HexBits)
                .map_err(|_| LexError {
                    message: format!("bad hex literal 0x{hex:?}"),
                    line: cur.line,
                    col: cur.col,
                });
        }
        text.push('0');
    }
    let mut is_float = false;
    while let Some(c) = cur.peek() {
        if c.is_ascii_digit() {
            text.push(c);
            cur.bump();
        } else if c == '.' || c == 'e' || c == 'E' {
            is_float = true;
            text.push(c);
            cur.bump();
            if (c == 'e' || c == 'E') && (cur.peek() == Some('-') || cur.peek() == Some('+')) {
                text.push(cur.bump().unwrap());
            }
        } else {
            break;
        }
    }
    if is_float {
        text.parse::<f64>().map(Token::Float).map_err(|_| LexError {
            message: format!("bad float literal {text:?}"),
            line: cur.line,
            col: cur.col,
        })
    } else {
        text.parse::<i64>().map(Token::Int).map_err(|_| LexError {
            message: format!("bad int literal {text:?}"),
            line: cur.line,
            col: cur.col,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("%5 = add i32 %p0, i32 -1"),
            vec![
                Token::Local("5".into()),
                Token::Eq,
                Token::Ident("add".into()),
                Token::Ident("i32".into()),
                Token::Local("p0".into()),
                Token::Comma,
                Token::Ident("i32".into()),
                Token::Int(-1),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn floats_and_strings() {
        assert_eq!(
            toks("double 1.5 \"hi\" 2e3"),
            vec![
                Token::Ident("double".into()),
                Token::Float(1.5),
                Token::Str("hi".into()),
                Token::Float(2000.0),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn hex_bits_and_plain_zero() {
        assert_eq!(
            toks("0x7ff8000000000000 0 0.5"),
            vec![
                Token::HexBits(0x7ff8000000000000),
                Token::Int(0),
                Token::Float(0.5),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn string_escapes_decode() {
        assert_eq!(
            toks(r#""a\"b\\c\n\x41""#),
            vec![Token::Str("a\"b\\c\nA".into()), Token::Eof]
        );
        assert!(lex(r#""\q""#).is_err());
        assert!(lex(r#""\x4""#).is_err());
    }

    #[test]
    fn quoted_symbol_names() {
        assert_eq!(
            toks(r#"@"odd name" %"x y""#),
            vec![
                Token::Global("odd name".into()),
                Token::Local("x y".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn newlines_collapse_and_comments_skip() {
        assert_eq!(
            toks("a // comment\n\n\nb"),
            vec![
                Token::Ident("a".into()),
                Token::Newline,
                Token::Ident("b".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn semicolon_comments_skip_to_end_of_line() {
        assert_eq!(
            toks("; RUN: rolag\na ; trailing\n; CHECK: b\nb"),
            vec![
                Token::Ident("a".into()),
                Token::Newline,
                Token::Ident("b".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn arrow_vs_negative() {
        assert_eq!(
            toks("-> -42"),
            vec![Token::Arrow, Token::Int(-42), Token::Eof]
        );
    }

    #[test]
    fn error_on_bad_char() {
        assert!(lex("$").is_err());
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn line_and_column_numbers_advance() {
        let spanned = lex("a\nbb cc\nd").unwrap();
        let pos: Vec<(u32, u32)> = spanned.iter().map(|s| (s.line, s.col)).collect();
        // a, newline, bb, cc, newline, d, eof
        assert_eq!(
            pos,
            vec![(1, 1), (1, 2), (2, 1), (2, 4), (2, 6), (3, 1), (3, 2)]
        );
    }
}
