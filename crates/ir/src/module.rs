//! Modules: collections of functions and global variables plus the type
//! store.

use std::collections::HashMap;

use crate::function::{Effects, Function};
use crate::types::{TypeId, TypeStore};
use crate::value::{FuncId, GlobalId};

/// Initializer of a global variable.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum GlobalInit {
    /// Zero-initialized.
    Zero,
    /// An array of integer constants of the given element type. Used by the
    /// loop-rolling code generator for constant mismatch arrays.
    Ints { elem_ty: TypeId, values: Vec<i64> },
    /// Raw bytes.
    Bytes(Vec<u8>),
}

/// A module-level global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalData {
    /// Symbol name, unique within the module.
    pub name: String,
    /// Value type of the global's contents (determines its size).
    pub ty: TypeId,
    /// Initializer.
    pub init: GlobalInit,
    /// True for read-only data (lives in `.rodata` when lowered).
    pub is_const: bool,
}

/// A module: type store, globals, and functions.
#[derive(Debug, Clone)]
pub struct Module {
    /// Module name (used in printouts only).
    pub name: String,
    /// The module's interned types.
    pub types: TypeStore,
    funcs: Vec<Function>,
    globals: Vec<GlobalData>,
    func_map: HashMap<String, FuncId>,
    global_map: HashMap<String, GlobalId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            types: TypeStore::new(),
            funcs: Vec::new(),
            globals: Vec::new(),
            func_map: HashMap::new(),
            global_map: HashMap::new(),
        }
    }

    /// Adds a function (definition or declaration) to the module.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name already exists.
    pub fn add_func(&mut self, func: Function) -> FuncId {
        assert!(
            !self.func_map.contains_key(&func.name),
            "duplicate function {}",
            func.name
        );
        let id = FuncId((self.funcs.len()) as u32);
        self.func_map.insert(func.name.clone(), id);
        self.funcs.push(func);
        id
    }

    /// Convenience: adds an external declaration.
    pub fn declare_func(
        &mut self,
        name: impl Into<String>,
        param_tys: Vec<TypeId>,
        ret_ty: TypeId,
        effects: Effects,
    ) -> FuncId {
        self.add_func(Function::declare(name, param_tys, ret_ty, effects))
    }

    /// Adds a global variable.
    ///
    /// # Panics
    ///
    /// Panics if a global with the same name already exists.
    pub fn add_global(&mut self, global: GlobalData) -> GlobalId {
        assert!(
            !self.global_map.contains_key(&global.name),
            "duplicate global {}",
            global.name
        );
        let id = GlobalId(self.globals.len() as u32);
        self.global_map.insert(global.name.clone(), id);
        self.globals.push(global);
        id
    }

    /// Adds a zero-initialized mutable global of the given type.
    pub fn add_zero_global(&mut self, name: impl Into<String>, ty: TypeId) -> GlobalId {
        self.add_global(GlobalData {
            name: name.into(),
            ty,
            init: GlobalInit::Zero,
            is_const: false,
        })
    }

    /// Returns a fresh global name with the given prefix.
    pub fn fresh_global_name(&self, prefix: &str) -> String {
        let mut i = self.globals.len();
        loop {
            let name = format!("{prefix}.{i}");
            if !self.global_map.contains_key(&name) {
                return name;
            }
            i += 1;
        }
    }

    /// The function with id `id`.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to the function with id `id`.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Replaces the body of an existing function slot (used by the parser,
    /// which pre-registers all function names to allow forward calls).
    ///
    /// # Panics
    ///
    /// Panics if the replacement has a different name.
    pub fn replace_func(&mut self, id: FuncId, func: Function) {
        assert_eq!(
            self.funcs[id.index()].name,
            func.name,
            "replace_func must keep the name"
        );
        self.funcs[id.index()] = func;
    }

    /// Splits the borrow so a function body and the type store can be
    /// mutated together (as transformation passes need).
    pub fn func_and_types_mut(&mut self, id: FuncId) -> (&mut Function, &mut TypeStore) {
        (&mut self.funcs[id.index()], &mut self.types)
    }

    /// Looks a function up by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.func_map.get(name).copied()
    }

    /// All function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.funcs.len() as u32).map(FuncId::from_index_u32)
    }

    /// Number of functions.
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// The global with id `id`.
    pub fn global(&self, id: GlobalId) -> &GlobalData {
        &self.globals[id.index()]
    }

    /// Looks a global up by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.global_map.get(name).copied()
    }

    /// All global ids.
    pub fn global_ids(&self) -> impl Iterator<Item = GlobalId> + '_ {
        (0..self.globals.len() as u32).map(|i| GlobalId::from_index(i as usize))
    }

    /// Number of globals.
    pub fn num_globals(&self) -> usize {
        self.globals.len()
    }

    /// Removes the most recently added global. Used to roll back
    /// speculatively created constant arrays when a transformation is
    /// discarded.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the last global.
    pub fn pop_global(&mut self, id: GlobalId) {
        assert_eq!(
            id.index() + 1,
            self.globals.len(),
            "pop_global must remove the last global"
        );
        let g = self.globals.pop().expect("non-empty globals");
        self.global_map.remove(&g.name);
    }

    /// Byte size of a global's initialized contents.
    pub fn global_size(&self, id: GlobalId) -> u64 {
        let g = self.global(id);
        match &g.init {
            GlobalInit::Bytes(b) => b.len() as u64,
            _ => self.types.size_of(g.ty),
        }
    }
}

impl FuncId {
    fn from_index_u32(i: u32) -> Self {
        FuncId::from_index(i as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_funcs() {
        let mut m = Module::new("test");
        let void = m.types.void();
        let id = m.declare_func("ext", vec![], void, Effects::ReadWrite);
        assert_eq!(m.func_by_name("ext"), Some(id));
        assert_eq!(m.func_by_name("missing"), None);
        assert!(m.func(id).is_declaration);
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut m = Module::new("test");
        let void = m.types.void();
        m.declare_func("f", vec![], void, Effects::ReadWrite);
        m.declare_func("f", vec![], void, Effects::ReadWrite);
    }

    #[test]
    fn globals() {
        let mut m = Module::new("test");
        let arr = m.types.array(m.types.i32(), 8);
        let g = m.add_zero_global("buf", arr);
        assert_eq!(m.global_by_name("buf"), Some(g));
        assert_eq!(m.global_size(g), 32);
        let name = m.fresh_global_name("buf");
        assert_ne!(name, "buf");
    }
}
