//! IR verifier.
//!
//! Checks structural invariants (terminators, phi placement), type
//! correctness of operands, and SSA dominance of definitions over uses.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::block::BlockId;
use crate::function::Function;
use crate::inst::{InstExtra, InstId, Opcode};
use crate::module::Module;
use crate::types::TypeKind;
use crate::value::{ValueDef, ValueId};

/// A single verification failure.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// Function the error occurred in.
    pub func: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in @{}: {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function in `module`.
///
/// # Errors
///
/// Returns all violations found (empty `Ok` means the module is well formed).
pub fn verify_module(module: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    for f in module.func_ids() {
        let func = module.func(f);
        if func.is_declaration {
            continue;
        }
        verify_function(module, func, &mut errors);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Verifies a single function, appending violations to `errors`.
pub fn verify_function(module: &Module, func: &Function, errors: &mut Vec<VerifyError>) {
    let mut err = |message: String| {
        errors.push(VerifyError {
            func: func.name.clone(),
            message,
        })
    };

    if func.num_blocks() == 0 {
        err("definition has no blocks".into());
        return;
    }

    // Structural checks.
    for b in func.block_ids() {
        let block = func.block(b);
        match block.last_inst() {
            None => err(format!("block {} is empty", block.name)),
            Some(last) => {
                if !func.inst(last).opcode.is_terminator() {
                    err(format!("block {} does not end in a terminator", block.name));
                }
            }
        }
        let mut seen_non_phi = false;
        for (pos, &i) in block.insts.iter().enumerate() {
            let data = func.inst(i);
            if data.opcode.is_terminator() && pos + 1 != block.insts.len() {
                err(format!(
                    "terminator {} in the middle of block {}",
                    data.opcode.mnemonic(),
                    block.name
                ));
            }
            if data.opcode == Opcode::Phi {
                if seen_non_phi {
                    err(format!(
                        "phi after non-phi instruction in block {}",
                        block.name
                    ));
                }
            } else {
                seen_non_phi = true;
            }
        }
    }

    // Phi incoming edges must match predecessors.
    let preds = func.predecessors();
    for b in func.block_ids() {
        let pred_set: HashSet<BlockId> = preds[b.index()].iter().copied().collect();
        for &i in &func.block(b).insts {
            let data = func.inst(i);
            if data.opcode != Opcode::Phi {
                continue;
            }
            if let InstExtra::Phi { incoming } = &data.extra {
                if incoming.len() != data.operands.len() {
                    err("phi operand/incoming arity mismatch".into());
                    continue;
                }
                let in_set: HashSet<BlockId> = incoming.iter().copied().collect();
                if in_set != pred_set {
                    err(format!(
                        "phi in block {} incoming blocks do not match predecessors",
                        func.block(b).name
                    ));
                }
            }
        }
    }

    // Type checks.
    for b in func.block_ids() {
        for &i in &func.block(b).insts {
            check_inst_types(module, func, i, &mut err);
        }
    }

    // Dominance: definitions must dominate uses.
    let dom = simple_dominators(func);
    let mut def_pos: HashMap<ValueId, (BlockId, usize)> = HashMap::new();
    for b in func.block_ids() {
        for (pos, &i) in func.block(b).insts.iter().enumerate() {
            def_pos.insert(func.inst_result(i), (b, pos));
        }
    }
    for b in func.block_ids() {
        for (pos, &i) in func.block(b).insts.iter().enumerate() {
            let data = func.inst(i);
            for (op_idx, &op) in data.operands.iter().enumerate() {
                if !matches!(func.value(op), ValueDef::Inst(_)) {
                    continue;
                }
                let Some(&(def_bb, def_pos_in_bb)) = def_pos.get(&op) else {
                    err(format!(
                        "operand of {} refers to a detached instruction",
                        data.opcode.mnemonic()
                    ));
                    continue;
                };
                if data.opcode == Opcode::Phi {
                    // Phi uses must dominate the *incoming edge*, i.e. the
                    // def must dominate the incoming block's terminator.
                    if let InstExtra::Phi { incoming } = &data.extra {
                        let in_bb = incoming[op_idx];
                        if !dominates(&dom, def_bb, in_bb) {
                            err(format!(
                                "phi incoming value does not dominate edge from {}",
                                func.block(in_bb).name
                            ));
                        }
                    }
                } else if def_bb == b {
                    if def_pos_in_bb >= pos {
                        err(format!(
                            "use of value before its definition in block {}",
                            func.block(b).name
                        ));
                    }
                } else if !dominates(&dom, def_bb, b) {
                    err(format!(
                        "definition in {} does not dominate use in {}",
                        func.block(def_bb).name,
                        func.block(b).name
                    ));
                }
            }
        }
    }
}

fn check_inst_types(module: &Module, func: &Function, i: InstId, err: &mut impl FnMut(String)) {
    let types = &module.types;
    let data = func.inst(i);
    let ty_of = |v: ValueId| func.value_ty(v, types);
    match data.opcode {
        op if op.is_binop() => {
            if data.operands.len() != 2 {
                err(format!("{} must have 2 operands", op.mnemonic()));
                return;
            }
            let (a, b) = (ty_of(data.operands[0]), ty_of(data.operands[1]));
            if a != data.ty || b != data.ty {
                err(format!(
                    "{} operand types ({}, {}) do not match result type {}",
                    op.mnemonic(),
                    types.display(a),
                    types.display(b),
                    types.display(data.ty)
                ));
            }
            let ok_class = if op.is_float_binop() {
                types.is_float(data.ty)
            } else {
                types.is_int(data.ty)
            };
            if !ok_class {
                err(format!(
                    "{} on wrong type class {}",
                    op.mnemonic(),
                    types.display(data.ty)
                ));
            }
        }
        Opcode::Icmp | Opcode::Fcmp => {
            if data.operands.len() != 2 {
                err("cmp must have 2 operands".into());
                return;
            }
            if ty_of(data.operands[0]) != ty_of(data.operands[1]) {
                err("cmp operand types differ".into());
            }
        }
        Opcode::Select => {
            if data.operands.len() != 3 {
                err("select must have 3 operands".into());
                return;
            }
            if ty_of(data.operands[0]) != types.i1() {
                err("select condition must be i1".into());
            }
            if ty_of(data.operands[1]) != data.ty || ty_of(data.operands[2]) != data.ty {
                err("select arms must match result type".into());
            }
        }
        Opcode::Load if (data.operands.len() != 1 || !types.is_ptr(ty_of(data.operands[0]))) => {
            err("load needs a single pointer operand".into());
        }
        Opcode::Store if (data.operands.len() != 2 || !types.is_ptr(ty_of(data.operands[1]))) => {
            err("store needs (value, pointer) operands".into());
        }
        Opcode::Gep => {
            if data.operands.is_empty() || !types.is_ptr(ty_of(data.operands[0])) {
                err("gep base must be a pointer".into());
            }
            for &idx in &data.operands[1..] {
                if !types.is_int(ty_of(idx)) {
                    err("gep indices must be integers".into());
                }
            }
        }
        Opcode::Call => {
            if let InstExtra::Call { callee } = &data.extra {
                let callee = module.func(*callee);
                if callee.ret_ty != data.ty {
                    err(format!(
                        "call result type {} does not match @{} return type",
                        types.display(data.ty),
                        callee.name
                    ));
                }
                if callee.param_tys().len() != data.operands.len() {
                    err(format!(
                        "call to @{} has {} args, expected {}",
                        callee.name,
                        data.operands.len(),
                        callee.param_tys().len()
                    ));
                } else {
                    for (k, (&arg, &pty)) in
                        data.operands.iter().zip(callee.param_tys()).enumerate()
                    {
                        if ty_of(arg) != pty {
                            err(format!("call to @{} arg {k} type mismatch", callee.name));
                        }
                    }
                }
            } else {
                err("call without callee".into());
            }
        }
        Opcode::CondBr if (data.operands.len() != 1 || ty_of(data.operands[0]) != types.i1()) => {
            err("condbr condition must be i1".into());
        }
        Opcode::Ret => {
            let want_void = matches!(types.kind(func.ret_ty), TypeKind::Void);
            match (want_void, data.operands.len()) {
                (true, 0) => {}
                (false, 1) => {
                    if ty_of(data.operands[0]) != func.ret_ty {
                        err("ret value type does not match function return type".into());
                    }
                }
                _ => err("ret arity does not match function return type".into()),
            }
        }
        Opcode::Phi => {
            for &op in &data.operands {
                if ty_of(op) != data.ty {
                    err("phi operand type mismatch".into());
                }
            }
        }
        _ => {}
    }
}

/// Computes the dominator sets of each block with the classic iterative
/// dataflow algorithm. Suitable for the small CFGs in this project.
fn simple_dominators(func: &Function) -> Vec<HashSet<BlockId>> {
    let n = func.num_blocks();
    let all: HashSet<BlockId> = func.block_ids().collect();
    let entry = func.entry_block();
    let preds = func.predecessors();
    let mut dom: Vec<HashSet<BlockId>> = vec![all.clone(); n];
    dom[entry.index()] = std::iter::once(entry).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for b in func.block_ids() {
            if b == entry {
                continue;
            }
            let mut new: Option<HashSet<BlockId>> = None;
            for &p in &preds[b.index()] {
                new = Some(match new {
                    None => dom[p.index()].clone(),
                    Some(acc) => acc.intersection(&dom[p.index()]).copied().collect(),
                });
            }
            let mut new = new.unwrap_or_default();
            new.insert(b);
            if new != dom[b.index()] {
                dom[b.index()] = new;
                changed = true;
            }
        }
    }
    dom
}

fn dominates(dom: &[HashSet<BlockId>], a: BlockId, b: BlockId) -> bool {
    dom[b.index()].contains(&a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::{InstData, IntPredicate};
    use crate::module::Module;

    fn check(m: &Module) -> Vec<VerifyError> {
        match verify_module(m) {
            Ok(()) => Vec::new(),
            Err(e) => e,
        }
    }

    #[test]
    fn well_formed_function_passes() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let mut fb = FuncBuilder::new(&mut m, "f", vec![i32t], i32t);
        let a = fb.param(0);
        fb.block("entry");
        fb.ins(|b| {
            let one = b.i32_const(1);
            let s = b.add(a, one);
            b.ret(Some(s));
        });
        fb.finish();
        assert!(check(&m).is_empty());
    }

    #[test]
    fn missing_terminator_is_caught() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let mut fb = FuncBuilder::new(&mut m, "f", vec![i32t], i32t);
        let a = fb.param(0);
        fb.block("entry");
        fb.ins(|b| {
            let one = b.i32_const(1);
            b.add(a, one);
        });
        fb.finish();
        let errs = check(&m);
        assert!(errs.iter().any(|e| e.message.contains("terminator")));
    }

    #[test]
    fn type_mismatch_is_caught() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let mut fb = FuncBuilder::new(&mut m, "f", vec![i32t, i64t], i32t);
        let a = fb.param(0);
        let b64 = fb.param(1);
        fb.block("entry");
        fb.ins(|b| {
            // Manually construct a bad add: i32 result with an i64 operand.
            let (i, v) = b.func.create_inst(InstData {
                opcode: Opcode::Add,
                ty: b.types.i32(),
                operands: vec![a, b64],
                block: b.current(),
                extra: InstExtra::None,
            });
            b.func.append_inst(b.current(), i);
            b.ret(Some(v));
        });
        fb.finish();
        let errs = check(&m);
        assert!(errs.iter().any(|e| e.message.contains("do not match")));
    }

    #[test]
    fn use_before_def_is_caught() {
        let text = "module \"t\"\nfunc @f(i32 %p0) -> i32 {\nentry:\n  %1 = add i32 %2, i32 1\n  %2 = add i32 %p0, i32 1\n  ret %2\n}\n";
        let m = crate::parser::parse_module(text).unwrap();
        let errs = check(&m);
        assert!(errs
            .iter()
            .any(|e| e.message.contains("before its definition")));
    }

    #[test]
    fn phi_predecessor_mismatch_is_caught() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let mut fb = FuncBuilder::new(&mut m, "f", vec![i32t], i32t);
        let a = fb.param(0);
        let entry = fb.block("entry");
        fb.ins(|b| {
            let exit = b.func.add_block("exit");
            b.br(exit);
            b.switch_to(exit);
            // Phi claims an incoming edge from "exit", which is not a pred.
            let bad = b.phi(b.types.i32(), &[(a, exit)]);
            b.ret(Some(bad));
        });
        fb.finish();
        let _ = entry;
        let errs = check(&m);
        assert!(errs
            .iter()
            .any(|e| e.message.contains("incoming blocks do not match")));
    }

    #[test]
    fn cross_block_dominance() {
        // A value defined in a branch arm used in the join must fail;
        // the same value routed through a phi must pass.
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let i1t = m.types.i1();
        let mut fb = FuncBuilder::new(&mut m, "f", vec![i32t, i1t], i32t);
        let a = fb.param(0);
        let c = fb.param(1);
        fb.block("entry");
        fb.ins(|b| {
            let then_bb = b.func.add_block("then");
            let join = b.func.add_block("join");
            b.cond_br(c, then_bb, join);
            b.switch_to(then_bb);
            let one = b.i32_const(1);
            let t = b.add(a, one);
            b.br(join);
            b.switch_to(join);
            let cmp = b.icmp(IntPredicate::Eq, t, a); // bad use of t
            let z = b.select(cmp, t, a);
            b.ret(Some(z));
        });
        fb.finish();
        let errs = check(&m);
        assert!(errs.iter().any(|e| e.message.contains("does not dominate")));
    }
}
