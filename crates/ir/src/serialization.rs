//! Compact binary module serialization.
//!
//! The format is an arena dump: the type store, the globals, and every
//! function's value/instruction/block arenas verbatim, so a decoded module
//! is slot-for-slot identical to the encoded one — `print_module(decode(
//! encode(m)))` equals `print_module(m)` byte-for-byte (ids are arena
//! indices and the printer walks arenas in order). Derived structures
//! (constant-interning maps, per-instruction result values, name lookup
//! maps) are rebuilt on decode rather than stored.
//!
//! Layout: after a fixed 6-byte header, every integer is an unsigned
//! LEB128 varint (signed constants zigzag-mapped first) and strings are
//! length-prefixed UTF-8 — arena ids and counts are almost always small,
//! which is what makes the format compact:
//!
//! ```text
//! magic   "RLIR"            4 bytes
//! version u16               little-endian, currently 1
//! types   count, then tagged [`TypeKind`] records in slot order
//! name    str               module name
//! globals count, then (name, ty, is_const, tagged init) records
//! funcs   count, then per function:
//!         name, param types, ret type, is_declaration, effects,
//!         values  (tagged [`ValueDef`] records),
//!         insts   (opcode, ty, operands, block, tagged extra),
//!         live    (bit-packed),
//!         blocks  (name, instruction list),
//!         params  (value ids)
//! ```
//!
//! Decoding is fuzz-safe: every read is bounds-checked against the buffer,
//! element counts are validated against the bytes that remain (a hostile
//! count cannot force a huge allocation), and every cross-arena id is
//! range-checked before the module is assembled. Corrupted input yields a
//! [`DecodeError`], never a panic.

use crate::block::{BlockData, BlockId};
use crate::function::{Effects, Function};
use crate::inst::{FloatPredicate, InstData, InstExtra, InstId, IntPredicate, Opcode};
use crate::module::{GlobalData, GlobalInit, Module};
use crate::types::{TypeId, TypeKind, TypeStore};
use crate::value::{FuncId, GlobalId, ValueDef, ValueId};

/// File magic, `b"RLIR"`.
pub const MAGIC: [u8; 4] = *b"RLIR";
/// Current format version.
pub const VERSION: u16 = 1;

/// Why a byte buffer failed to decode as a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The version field is newer than [`VERSION`].
    UnsupportedVersion(u16),
    /// The buffer ended inside a record.
    Truncated,
    /// A tag byte has no corresponding variant.
    BadTag(&'static str, u8),
    /// A string is not valid UTF-8.
    BadString,
    /// An id points outside its arena.
    IdOutOfRange(&'static str),
    /// A structural invariant failed (duplicate or missing instruction
    /// result, liveness length mismatch, type-store prelude mismatch).
    Malformed(&'static str),
    /// Trailing bytes after the module.
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a RLIR file (bad magic)"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported RLIR version {v}"),
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::BadTag(what, t) => write!(f, "invalid {what} tag {t}"),
            DecodeError::BadString => write!(f, "invalid UTF-8 string"),
            DecodeError::IdOutOfRange(what) => write!(f, "{what} id out of range"),
            DecodeError::Malformed(what) => write!(f, "malformed module: {what}"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after module"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Opcodes in declaration order; the wire tag is the index. A unit test
/// pins the table against `opcode as u8`.
const OPCODES: [Opcode; 40] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::SDiv,
    Opcode::UDiv,
    Opcode::SRem,
    Opcode::URem,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::LShr,
    Opcode::AShr,
    Opcode::FAdd,
    Opcode::FSub,
    Opcode::FMul,
    Opcode::FDiv,
    Opcode::Icmp,
    Opcode::Fcmp,
    Opcode::Select,
    Opcode::Trunc,
    Opcode::ZExt,
    Opcode::SExt,
    Opcode::Bitcast,
    Opcode::PtrToInt,
    Opcode::IntToPtr,
    Opcode::FpToSi,
    Opcode::SiToFp,
    Opcode::FpExt,
    Opcode::FpTrunc,
    Opcode::Alloca,
    Opcode::Load,
    Opcode::Store,
    Opcode::Gep,
    Opcode::Call,
    Opcode::Phi,
    Opcode::Br,
    Opcode::CondBr,
    Opcode::Ret,
    Opcode::Unreachable,
];

const INT_PREDS: [IntPredicate; 10] = [
    IntPredicate::Eq,
    IntPredicate::Ne,
    IntPredicate::Slt,
    IntPredicate::Sle,
    IntPredicate::Sgt,
    IntPredicate::Sge,
    IntPredicate::Ult,
    IntPredicate::Ule,
    IntPredicate::Ugt,
    IntPredicate::Uge,
];

const FLOAT_PREDS: [FloatPredicate; 6] = [
    FloatPredicate::Oeq,
    FloatPredicate::One,
    FloatPredicate::Olt,
    FloatPredicate::Ole,
    FloatPredicate::Ogt,
    FloatPredicate::Oge,
];

// ---- encoding --------------------------------------------------------------

struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    /// Unsigned LEB128 — ids, counts, and magnitudes are almost always
    /// small, so variable-length integers are what makes the format
    /// compact (fixed 4-byte ids made the binary *larger* than the text).
    fn vu(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.out.push(b);
                return;
            }
            self.out.push(b | 0x80);
        }
    }
    fn u16(&mut self, v: u16) {
        self.vu(v as u64);
    }
    fn u32(&mut self, v: u32) {
        self.vu(v as u64);
    }
    fn u64(&mut self, v: u64) {
        self.vu(v);
    }
    /// Zigzag-mapped LEB128, so small negative constants stay short.
    fn i64(&mut self, v: i64) {
        self.vu(((v << 1) ^ (v >> 63)) as u64);
    }
    fn len(&mut self, v: usize) {
        self.vu(v as u64);
    }
    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.out.extend_from_slice(s.as_bytes());
    }
}

fn encode_type(e: &mut Encoder, kind: &TypeKind) {
    match kind {
        TypeKind::Void => e.u8(0),
        TypeKind::Int(bits) => {
            e.u8(1);
            e.u16(*bits);
        }
        TypeKind::Float => e.u8(2),
        TypeKind::Double => e.u8(3),
        TypeKind::Ptr => e.u8(4),
        TypeKind::Array { elem, len } => {
            e.u8(5);
            e.u32(elem.index() as u32);
            e.u64(*len);
        }
        TypeKind::Struct { fields } => {
            e.u8(6);
            e.len(fields.len());
            for f in fields {
                e.u32(f.index() as u32);
            }
        }
        TypeKind::Func { ret, params } => {
            e.u8(7);
            e.u32(ret.index() as u32);
            e.len(params.len());
            for p in params {
                e.u32(p.index() as u32);
            }
        }
    }
}

fn encode_global(e: &mut Encoder, g: &GlobalData) {
    e.str(&g.name);
    e.u32(g.ty.index() as u32);
    e.u8(g.is_const as u8);
    match &g.init {
        GlobalInit::Zero => e.u8(0),
        GlobalInit::Ints { elem_ty, values } => {
            e.u8(1);
            e.u32(elem_ty.index() as u32);
            e.len(values.len());
            for &v in values {
                e.i64(v);
            }
        }
        GlobalInit::Bytes(bytes) => {
            e.u8(2);
            e.len(bytes.len());
            e.out.extend_from_slice(bytes);
        }
    }
}

fn encode_value(e: &mut Encoder, def: &ValueDef) {
    match def {
        ValueDef::Inst(i) => {
            e.u8(0);
            e.u32(i.index() as u32);
        }
        ValueDef::Param { index, ty } => {
            e.u8(1);
            e.u32(*index);
            e.u32(ty.index() as u32);
        }
        ValueDef::ConstInt { ty, value } => {
            e.u8(2);
            e.u32(ty.index() as u32);
            e.i64(*value);
        }
        ValueDef::ConstFloat { ty, bits } => {
            e.u8(3);
            e.u32(ty.index() as u32);
            e.u64(*bits);
        }
        ValueDef::GlobalAddr(g) => {
            e.u8(4);
            e.u32(g.index() as u32);
        }
        ValueDef::FuncAddr(f) => {
            e.u8(5);
            e.u32(f.index() as u32);
        }
        ValueDef::Undef(ty) => {
            e.u8(6);
            e.u32(ty.index() as u32);
        }
    }
}

fn encode_inst(e: &mut Encoder, inst: &InstData) {
    e.u8(inst.opcode as u8);
    e.u32(inst.ty.index() as u32);
    e.len(inst.operands.len());
    for op in &inst.operands {
        e.u32(op.index() as u32);
    }
    e.u32(inst.block.index() as u32);
    match &inst.extra {
        InstExtra::None => e.u8(0),
        InstExtra::Icmp(p) => {
            e.u8(1);
            e.u8(*p as u8);
        }
        InstExtra::Fcmp(p) => {
            e.u8(2);
            e.u8(*p as u8);
        }
        InstExtra::Gep { elem_ty } => {
            e.u8(3);
            e.u32(elem_ty.index() as u32);
        }
        InstExtra::Call { callee } => {
            e.u8(4);
            e.u32(callee.index() as u32);
        }
        InstExtra::Phi { incoming } => {
            e.u8(5);
            e.len(incoming.len());
            for b in incoming {
                e.u32(b.index() as u32);
            }
        }
        InstExtra::Br { dest } => {
            e.u8(6);
            e.u32(dest.index() as u32);
        }
        InstExtra::CondBr {
            then_dest,
            else_dest,
        } => {
            e.u8(7);
            e.u32(then_dest.index() as u32);
            e.u32(else_dest.index() as u32);
        }
        InstExtra::Alloca { elem_ty } => {
            e.u8(8);
            e.u32(elem_ty.index() as u32);
        }
    }
}

fn encode_function(e: &mut Encoder, f: &Function) {
    e.str(&f.name);
    e.len(f.param_tys().len());
    for ty in f.param_tys() {
        e.u32(ty.index() as u32);
    }
    e.u32(f.ret_ty.index() as u32);
    e.u8(f.is_declaration as u8);
    e.u8(match f.effects {
        Effects::ReadNone => 0,
        Effects::ReadOnly => 1,
        Effects::ReadWrite => 2,
    });
    let values = f.raw_values();
    e.len(values.len());
    for def in values {
        encode_value(e, def);
    }
    let insts = f.raw_insts();
    e.len(insts.len());
    for inst in insts {
        encode_inst(e, inst);
    }
    // Liveness, bit-packed (length implied by the instruction count).
    let live = f.raw_live();
    let mut byte = 0u8;
    for (i, &l) in live.iter().enumerate() {
        if l {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            e.u8(byte);
            byte = 0;
        }
    }
    if !live.len().is_multiple_of(8) {
        e.u8(byte);
    }
    let blocks = f.raw_blocks();
    e.len(blocks.len());
    for b in blocks {
        e.str(&b.name);
        e.len(b.insts.len());
        for i in &b.insts {
            e.u32(i.index() as u32);
        }
    }
    e.len(f.params().len());
    for p in f.params() {
        e.u32(p.index() as u32);
    }
}

/// Encodes `module` into the compact binary format.
pub fn encode_module(module: &Module) -> Vec<u8> {
    let mut e = Encoder { out: Vec::new() };
    e.out.extend_from_slice(&MAGIC);
    // The version is fixed-width (not a varint) so the 6-byte header is
    // stable across versions.
    e.out.extend_from_slice(&VERSION.to_le_bytes());
    e.len(module.types.num_types());
    for i in 0..module.types.num_types() {
        encode_type(&mut e, module.types.kind(TypeId(i as u32)));
    }
    e.str(&module.name);
    e.len(module.num_globals());
    for g in module.global_ids() {
        encode_global(&mut e, module.global(g));
    }
    e.len(module.num_funcs());
    for id in module.func_ids() {
        encode_function(&mut e, module.func(id));
    }
    e.out
}

// ---- decoding --------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    /// The fixed-width version field; everything after the header is a
    /// varint.
    fn fixed_u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    /// Unsigned LEB128, capped at 10 bytes / 64 bits.
    fn vu(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(DecodeError::Malformed("varint overflow"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError::Malformed("varint overflow"));
            }
        }
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        u16::try_from(self.vu()?).map_err(|_| DecodeError::Malformed("u16 overflow"))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        u32::try_from(self.vu()?).map_err(|_| DecodeError::Malformed("u32 overflow"))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        self.vu()
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        let z = self.vu()?;
        Ok((z >> 1) as i64 ^ -((z & 1) as i64))
    }
    /// An element count, validated against the bytes that remain: every
    /// element occupies at least `min_elem_bytes`, so a count larger than
    /// the remainder allows is corrupt — rejecting it here means a hostile
    /// count can never force a huge allocation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(DecodeError::Truncated);
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadString)
    }
}

fn type_id(c: &mut Cursor<'_>, num_types: usize) -> Result<TypeId, DecodeError> {
    let i = c.u32()? as usize;
    if i >= num_types {
        return Err(DecodeError::IdOutOfRange("type"));
    }
    Ok(TypeId(i as u32))
}

fn decode_type(c: &mut Cursor<'_>, defined_so_far: usize) -> Result<TypeKind, DecodeError> {
    // Aggregate types may only reference earlier slots (the store interns
    // components before aggregates), which also rules out cycles.
    Ok(match c.u8()? {
        0 => TypeKind::Void,
        1 => TypeKind::Int(c.u16()?),
        2 => TypeKind::Float,
        3 => TypeKind::Double,
        4 => TypeKind::Ptr,
        5 => TypeKind::Array {
            elem: type_id(c, defined_so_far)?,
            len: c.u64()?,
        },
        6 => {
            let n = c.count(1)?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                fields.push(type_id(c, defined_so_far)?);
            }
            TypeKind::Struct { fields }
        }
        7 => {
            let ret = type_id(c, defined_so_far)?;
            let n = c.count(1)?;
            let mut params = Vec::with_capacity(n);
            for _ in 0..n {
                params.push(type_id(c, defined_so_far)?);
            }
            TypeKind::Func { ret, params }
        }
        t => return Err(DecodeError::BadTag("type", t)),
    })
}

struct Limits {
    num_types: usize,
    num_globals: usize,
    num_funcs: usize,
}

fn decode_global(c: &mut Cursor<'_>, lim: &Limits) -> Result<GlobalData, DecodeError> {
    let name = c.str()?;
    let ty = type_id(c, lim.num_types)?;
    let is_const = match c.u8()? {
        0 => false,
        1 => true,
        t => return Err(DecodeError::BadTag("bool", t)),
    };
    let init = match c.u8()? {
        0 => GlobalInit::Zero,
        1 => {
            let elem_ty = type_id(c, lim.num_types)?;
            let n = c.count(1)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(c.i64()?);
            }
            GlobalInit::Ints { elem_ty, values }
        }
        2 => {
            let n = c.count(1)?;
            GlobalInit::Bytes(c.take(n)?.to_vec())
        }
        t => return Err(DecodeError::BadTag("global init", t)),
    };
    Ok(GlobalData {
        name,
        ty,
        init,
        is_const,
    })
}

fn decode_value(
    c: &mut Cursor<'_>,
    lim: &Limits,
    num_insts: usize,
) -> Result<ValueDef, DecodeError> {
    Ok(match c.u8()? {
        0 => {
            let i = c.u32()? as usize;
            if i >= num_insts {
                return Err(DecodeError::IdOutOfRange("instruction"));
            }
            ValueDef::Inst(InstId(i as u32))
        }
        1 => ValueDef::Param {
            index: c.u32()?,
            ty: type_id(c, lim.num_types)?,
        },
        2 => ValueDef::ConstInt {
            ty: type_id(c, lim.num_types)?,
            value: c.i64()?,
        },
        3 => ValueDef::ConstFloat {
            ty: type_id(c, lim.num_types)?,
            bits: c.u64()?,
        },
        4 => {
            let g = c.u32()? as usize;
            if g >= lim.num_globals {
                return Err(DecodeError::IdOutOfRange("global"));
            }
            ValueDef::GlobalAddr(GlobalId(g as u32))
        }
        5 => {
            let f = c.u32()? as usize;
            if f >= lim.num_funcs {
                return Err(DecodeError::IdOutOfRange("function"));
            }
            ValueDef::FuncAddr(FuncId(f as u32))
        }
        6 => ValueDef::Undef(type_id(c, lim.num_types)?),
        t => return Err(DecodeError::BadTag("value", t)),
    })
}

fn block_id(c: &mut Cursor<'_>, num_blocks: usize) -> Result<BlockId, DecodeError> {
    let b = c.u32()? as usize;
    if b >= num_blocks {
        return Err(DecodeError::IdOutOfRange("block"));
    }
    Ok(BlockId(b as u32))
}

fn decode_inst(
    c: &mut Cursor<'_>,
    lim: &Limits,
    num_values: usize,
    num_blocks: usize,
) -> Result<InstData, DecodeError> {
    let op = c.u8()?;
    let opcode = *OPCODES
        .get(op as usize)
        .ok_or(DecodeError::BadTag("opcode", op))?;
    let ty = type_id(c, lim.num_types)?;
    let n = c.count(1)?;
    let mut operands = Vec::with_capacity(n);
    for _ in 0..n {
        let v = c.u32()? as usize;
        if v >= num_values {
            return Err(DecodeError::IdOutOfRange("value"));
        }
        operands.push(ValueId(v as u32));
    }
    let block = block_id(c, num_blocks)?;
    let extra = match c.u8()? {
        0 => InstExtra::None,
        1 => {
            let p = c.u8()?;
            InstExtra::Icmp(
                *INT_PREDS
                    .get(p as usize)
                    .ok_or(DecodeError::BadTag("int predicate", p))?,
            )
        }
        2 => {
            let p = c.u8()?;
            InstExtra::Fcmp(
                *FLOAT_PREDS
                    .get(p as usize)
                    .ok_or(DecodeError::BadTag("float predicate", p))?,
            )
        }
        3 => InstExtra::Gep {
            elem_ty: type_id(c, lim.num_types)?,
        },
        4 => {
            let f = c.u32()? as usize;
            if f >= lim.num_funcs {
                return Err(DecodeError::IdOutOfRange("function"));
            }
            InstExtra::Call {
                callee: FuncId(f as u32),
            }
        }
        5 => {
            let n = c.count(1)?;
            let mut incoming = Vec::with_capacity(n);
            for _ in 0..n {
                incoming.push(block_id(c, num_blocks)?);
            }
            InstExtra::Phi { incoming }
        }
        6 => InstExtra::Br {
            dest: block_id(c, num_blocks)?,
        },
        7 => InstExtra::CondBr {
            then_dest: block_id(c, num_blocks)?,
            else_dest: block_id(c, num_blocks)?,
        },
        8 => InstExtra::Alloca {
            elem_ty: type_id(c, lim.num_types)?,
        },
        t => return Err(DecodeError::BadTag("inst extra", t)),
    };
    Ok(InstData {
        opcode,
        ty,
        operands,
        block,
        extra,
    })
}

fn decode_function(c: &mut Cursor<'_>, lim: &Limits) -> Result<Function, DecodeError> {
    let name = c.str()?;
    let n = c.count(1)?;
    let mut param_tys = Vec::with_capacity(n);
    for _ in 0..n {
        param_tys.push(type_id(c, lim.num_types)?);
    }
    let ret_ty = type_id(c, lim.num_types)?;
    let is_declaration = match c.u8()? {
        0 => false,
        1 => true,
        t => return Err(DecodeError::BadTag("bool", t)),
    };
    let effects = match c.u8()? {
        0 => Effects::ReadNone,
        1 => Effects::ReadOnly,
        2 => Effects::ReadWrite,
        t => return Err(DecodeError::BadTag("effects", t)),
    };

    // Values reference instruction ids and instructions reference block
    // ids, but each arena's size only becomes known when its section is
    // reached. Forward references are decoded with a permissive bound and
    // re-checked once the referenced arena's size is read.
    let num_values = c.count(2)?;
    let mut values = Vec::with_capacity(num_values.min(1 << 20));
    for _ in 0..num_values {
        values.push(decode_value(c, lim, u32::MAX as usize)?);
    }
    let num_insts = c.count(5)?;
    // Re-check instruction references now that the arena size is known.
    for def in &values {
        if let ValueDef::Inst(i) = def {
            if i.index() >= num_insts {
                return Err(DecodeError::IdOutOfRange("instruction"));
            }
        }
    }
    // Blocks are decoded after instructions; their count is unknown here.
    // Instructions are decoded with a permissive block bound and re-checked
    // below once the block arena is read.
    let mut insts = Vec::with_capacity(num_insts.min(1 << 20));
    for _ in 0..num_insts {
        insts.push(decode_inst(c, lim, num_values, u32::MAX as usize)?);
    }
    let live_bytes = c.take(num_insts.div_ceil(8))?;
    let live: Vec<bool> = (0..num_insts)
        .map(|i| live_bytes[i / 8] & (1 << (i % 8)) != 0)
        .collect();
    let num_blocks = c.count(2)?;
    let mut blocks = Vec::with_capacity(num_blocks.min(1 << 20));
    for _ in 0..num_blocks {
        let name = c.str()?;
        let n = c.count(1)?;
        let mut block_insts = Vec::with_capacity(n);
        for _ in 0..n {
            let i = c.u32()? as usize;
            if i >= num_insts {
                return Err(DecodeError::IdOutOfRange("instruction"));
            }
            block_insts.push(InstId(i as u32));
        }
        blocks.push(BlockData {
            name,
            insts: block_insts,
        });
    }
    for inst in &insts {
        if inst.block.index() >= num_blocks {
            return Err(DecodeError::IdOutOfRange("block"));
        }
        let out_of_range = match &inst.extra {
            InstExtra::Phi { incoming } => incoming.iter().any(|b| b.index() >= num_blocks),
            InstExtra::Br { dest } => dest.index() >= num_blocks,
            InstExtra::CondBr {
                then_dest,
                else_dest,
            } => then_dest.index() >= num_blocks || else_dest.index() >= num_blocks,
            _ => false,
        };
        if out_of_range {
            return Err(DecodeError::IdOutOfRange("block"));
        }
    }
    let n = c.count(1)?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        let v = c.u32()? as usize;
        if v >= num_values {
            return Err(DecodeError::IdOutOfRange("value"));
        }
        params.push(ValueId(v as u32));
    }

    Function::from_raw_parts(
        name,
        param_tys,
        ret_ty,
        is_declaration,
        effects,
        values,
        insts,
        live,
        blocks,
        params,
    )
    .ok_or(DecodeError::Malformed("instruction results"))
}

/// Decodes a module from the compact binary format. Inverse of
/// [`encode_module`]: the decoded module's arenas are slot-identical to the
/// encoded one's, so the printed text matches byte-for-byte. Corrupted or
/// truncated input returns a [`DecodeError`]; decoding never panics and
/// never allocates more than the input size warrants.
pub fn decode_module(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if c.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = c.fixed_u16()?;
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let num_types = c.count(1)?;
    let mut types = TypeStore::new();
    let prelude = types.num_types();
    if num_types < prelude {
        return Err(DecodeError::Malformed("type store prelude"));
    }
    for idx in 0..num_types {
        let kind = decode_type(&mut c, idx)?;
        let id = types.intern(kind);
        // The first records must replay the standard prelude (interning
        // them is a no-op hitting the existing slot) and later records
        // must land on their own index, or every stored type id is off.
        if id.index() != idx {
            return Err(DecodeError::Malformed("type store prelude"));
        }
    }
    let name = c.str()?;
    let num_globals = c.count(4)?;
    let mut globals = Vec::with_capacity(num_globals.min(1 << 20));
    let glim = Limits {
        num_types,
        num_globals: 0,
        num_funcs: 0,
    };
    for _ in 0..num_globals {
        globals.push(decode_global(&mut c, &glim)?);
    }
    let num_funcs = c.count(8)?;
    let lim = Limits {
        num_types,
        num_globals,
        num_funcs,
    };
    let mut module = Module::new(name);
    module.types = types;
    for g in globals {
        module.add_global(g);
    }
    for _ in 0..num_funcs {
        module.add_func(decode_function(&mut c, &lim)?);
    }
    if c.pos != bytes.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;
    use crate::printer::print_module;

    fn sample() -> Module {
        parse_module(
            r#"
module "roundtrip"
global @a : [8 x i32] = zero
global @tab : [4 x i64] = ints i64 [1, -2, 3, -4]
global @msg : [3 x i8] = bytes [104, 105, 0]
declare @ext(i32 %p0) -> i32 readonly
func @f(i64 %p0, double %p1) -> i32 {
entry:
  %p = gep i32, @a, i64 0
  %x = load i32, %p
  %c = icmp slt %x, i32 10
  condbr %c, then, done
then:
  %y = call i32 @ext(%x)
  br done
done:
  %m = phi i32 [ %x, entry ], [ %y, then ]
  ret %m
}
"#,
        )
        .unwrap()
    }

    #[test]
    fn wire_tags_match_declaration_order() {
        for (i, &op) in OPCODES.iter().enumerate() {
            assert_eq!(op as usize, i, "opcode table out of order at {op:?}");
        }
        for (i, &p) in INT_PREDS.iter().enumerate() {
            assert_eq!(p as usize, i);
        }
        for (i, &p) in FLOAT_PREDS.iter().enumerate() {
            assert_eq!(p as usize, i);
        }
    }

    #[test]
    fn roundtrip_is_print_identical() {
        let m = sample();
        let bytes = encode_module(&m);
        let decoded = decode_module(&bytes).expect("decodes");
        assert_eq!(print_module(&m), print_module(&decoded));
    }

    #[test]
    fn decode_rejects_bad_magic_and_version() {
        let mut bytes = encode_module(&sample());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode_module(&bad).err(), Some(DecodeError::BadMagic));
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        assert_eq!(
            decode_module(&bytes).err(),
            Some(DecodeError::UnsupportedVersion(0xFFFF))
        );
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let bytes = encode_module(&sample());
        for len in 0..bytes.len() {
            assert!(
                decode_module(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn decode_survives_single_byte_corruption() {
        // Every single-byte corruption either decodes to *some* module or
        // errors — it must never panic. (Printing the result must not
        // panic either: ids were range-checked.)
        let bytes = encode_module(&sample());
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x41;
            if let Ok(m) = decode_module(&bad) {
                let _ = print_module(&m);
            }
        }
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A header claiming 2^32-1 types in a 32-byte buffer must be
        // rejected by the remaining-bytes check, not attempted.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_module(&bytes).err(), Some(DecodeError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_module(&sample());
        bytes.push(0);
        assert_eq!(
            decode_module(&bytes).err(),
            Some(DecodeError::TrailingBytes)
        );
    }
}
