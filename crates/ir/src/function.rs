//! Functions: arenas of values, instructions, and blocks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide revision source. Revisions are cache keys, never printed,
/// so a global atomic keeps them unique across threads (the parallel
/// driver mutates function clones concurrently) without any coordination.
static REVISION_COUNTER: AtomicU64 = AtomicU64::new(1);

fn next_revision() -> u64 {
    REVISION_COUNTER.fetch_add(1, Ordering::Relaxed)
}

use crate::block::{BlockData, BlockId};
use crate::inst::{InstData, InstId, Opcode};
use crate::types::{TypeId, TypeStore};
use crate::value::{ConstKey, FuncId, GlobalId, ValueDef, ValueId};

/// Memory-effect annotation, used for call reordering decisions.
///
/// Definitions default to [`Effects::ReadWrite`]; declarations carry the
/// annotation explicitly, like LLVM's `readnone`/`readonly` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Effects {
    /// Neither reads nor writes memory; a pure function of its arguments.
    ReadNone,
    /// May read but not write memory.
    ReadOnly,
    /// May read and write memory (the conservative default).
    #[default]
    ReadWrite,
}

impl Effects {
    /// Printer mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Effects::ReadNone => "readnone",
            Effects::ReadOnly => "readonly",
            Effects::ReadWrite => "readwrite",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(name: &str) -> Option<Self> {
        Some(match name {
            "readnone" => Effects::ReadNone,
            "readonly" => Effects::ReadOnly,
            "readwrite" => Effects::ReadWrite,
            _ => return None,
        })
    }
}

/// A function definition or declaration.
///
/// All values, instructions, and blocks of the function live in arenas owned
/// by the function and are referred to by ids, so cloning a function (for
/// speculative transformation) is a plain deep copy — but speculative
/// rewrites should not clone at all: [`Function::snapshot`] opens a
/// journaled speculation window whose [`Function::rollback`] restores the
/// pre-speculation state in O(touched).
#[derive(Debug)]
pub struct Function {
    /// Symbol name, unique within the module.
    pub name: String,
    param_tys: Vec<TypeId>,
    /// Return type.
    pub ret_ty: TypeId,
    /// True if this function has no body.
    pub is_declaration: bool,
    /// Memory-effect annotation (meaningful mostly for declarations).
    pub effects: Effects,
    values: Vec<ValueDef>,
    insts: Vec<InstData>,
    inst_results: Vec<ValueId>,
    live: Vec<bool>,
    blocks: Vec<BlockData>,
    params: Vec<ValueId>,
    const_map: HashMap<ConstKey, ValueId>,
    /// Structural revision, used by analysis caches as a validity key.
    /// Assigned from a process-wide counter on creation and re-assigned by
    /// every mutator that can change the arenas, so two functions carrying
    /// the same revision are clones with identical arenas. Cloning keeps
    /// the revision (a clone *is* the same structure), which lets an
    /// analysis computed on one clone serve the other — ids are arena
    /// indices and line up exactly.
    ///
    /// The plain metadata fields (`name`, `effects`, …) do not bump the
    /// revision; revision-keyed caches must only hold analyses derived
    /// from the arenas (CFG, instructions, values).
    revision: u64,
    /// Active speculation journal (see [`Function::snapshot`]), boxed so
    /// the common non-speculating function stays one pointer wider.
    journal: Option<Box<Journal>>,
}

/// Undo journal for one speculation window. Arenas are append-only, so the
/// window is fully described by the base arena lengths plus the *first
/// touched* state of every pre-existing instruction and block the window
/// mutated, and the constant keys it interned.
#[derive(Debug)]
struct Journal {
    /// Revision at `snapshot()`, restored by `rollback` (the restored
    /// arenas are bit-identical to that revision's, and the global counter
    /// guarantees retired speculation-era revisions never collide).
    base_revision: u64,
    base_values: usize,
    base_insts: usize,
    base_blocks: usize,
    /// Per-instruction first-touch state is split into two facets so the
    /// hot paths stay allocation-free. The bitmaps make the first-touch
    /// check a test-and-set instead of a hash probe — the journal sits on
    /// every mutator, and a speculative rewrite touches most of a block,
    /// so per-touch overhead decides whether speculating in place beats
    /// the clone it replaced.
    ///
    /// *Placement* facet: block membership + liveness, the only state the
    /// detach/attach mutators change. Saving it is a 12-byte push, which
    /// matters because codegen tears down and rebuilds whole blocks.
    placement_bits: Vec<u64>,
    /// `(index, pre-window block, pre-window live)`, in touch order
    /// (`index < base_insts` only; new instructions are covered by arena
    /// truncation).
    saved_placements: Vec<(u32, BlockId, bool)>,
    /// *Payload* facet: the full pre-mutation [`InstData`] for
    /// instructions whose body may change (operand rewrites, phi
    /// patching via `inst_mut`).
    payload_bits: Vec<u64>,
    /// `(index, pre-window data)`, in touch order (`index < base_insts`).
    saved_payloads: Vec<(u32, InstData)>,
    /// One bit per pre-existing block, set once saved.
    block_saved_bits: Vec<u64>,
    /// First-touch copies of mutated pre-existing blocks
    /// (`index < base_blocks`), in touch order.
    saved_blocks: Vec<(u32, BlockData)>,
    /// Constant keys interned during the window, removed on rollback.
    interned: Vec<ConstKey>,
}

/// Proof that a speculation window is open; returned by
/// [`Function::snapshot`] and consumed by [`Function::rollback`] or
/// [`Function::commit`].
#[derive(Debug)]
#[must_use = "a snapshot must be resolved by rollback() or commit()"]
pub struct SnapshotToken {
    revision: u64,
}

/// What a committed speculation window changed, in arena terms. Lets a
/// clone that still holds the pre-window state catch up in O(touched) via
/// [`Function::apply_log`], instead of re-cloning the whole function.
#[derive(Debug, Clone)]
pub struct SpeculationLog {
    base_values: usize,
    base_insts: usize,
    base_blocks: usize,
    /// Pre-existing instructions the window touched (sorted).
    touched_insts: Vec<u32>,
    /// Pre-existing blocks the window touched (sorted).
    touched_blocks: Vec<u32>,
}

impl Clone for Function {
    /// A deep copy of the current arena state. Any active speculation
    /// journal stays with the original: the clone is a copy of the state,
    /// not of the speculation window, so it starts with no snapshot open.
    fn clone(&self) -> Self {
        Function {
            name: self.name.clone(),
            param_tys: self.param_tys.clone(),
            ret_ty: self.ret_ty,
            is_declaration: self.is_declaration,
            effects: self.effects,
            values: self.values.clone(),
            insts: self.insts.clone(),
            inst_results: self.inst_results.clone(),
            live: self.live.clone(),
            blocks: self.blocks.clone(),
            params: self.params.clone(),
            const_map: self.const_map.clone(),
            revision: self.revision,
            journal: None,
        }
    }
}

impl Function {
    /// Creates an empty function *definition* with the given signature.
    /// Parameters are materialized as values immediately.
    pub fn new(name: impl Into<String>, param_tys: Vec<TypeId>, ret_ty: TypeId) -> Self {
        let mut f = Function {
            name: name.into(),
            param_tys: param_tys.clone(),
            ret_ty,
            is_declaration: false,
            effects: Effects::ReadWrite,
            values: Vec::new(),
            insts: Vec::new(),
            inst_results: Vec::new(),
            live: Vec::new(),
            blocks: Vec::new(),
            params: Vec::new(),
            const_map: HashMap::new(),
            revision: next_revision(),
            journal: None,
        };
        for (i, &ty) in param_tys.iter().enumerate() {
            let v = f.push_value(ValueDef::Param {
                index: i as u32,
                ty,
            });
            f.params.push(v);
        }
        f
    }

    /// Creates a function *declaration* (no body) with the given effects.
    pub fn declare(
        name: impl Into<String>,
        param_tys: Vec<TypeId>,
        ret_ty: TypeId,
        effects: Effects,
    ) -> Self {
        let mut f = Function::new(name, param_tys, ret_ty);
        f.is_declaration = true;
        f.effects = effects;
        f
    }

    /// Current structural revision. Two functions with equal revisions are
    /// clones of the same state: analyses computed against one are valid
    /// for the other. Any arena mutation assigns a globally fresh value,
    /// so a stale cache entry can never collide with a new state.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Marks the arenas as changed by taking a fresh global revision.
    fn bump_revision(&mut self) {
        self.revision = next_revision();
    }

    // ---- generational snapshots -------------------------------------------

    /// Opens a speculation window: subsequent mutations are journaled so
    /// [`Function::rollback`] can restore the exact pre-snapshot state in
    /// O(touched), without the caller ever cloning the body. The window is
    /// closed by `rollback` (discard) or [`Function::commit`] (keep).
    ///
    /// # Panics
    ///
    /// Panics if a window is already open; windows do not nest.
    pub fn snapshot(&mut self) -> SnapshotToken {
        assert!(
            self.journal.is_none(),
            "speculation snapshots do not nest ({})",
            self.name
        );
        self.journal = Some(Box::new(Journal {
            base_revision: self.revision,
            base_values: self.values.len(),
            base_insts: self.insts.len(),
            base_blocks: self.blocks.len(),
            placement_bits: vec![0; self.insts.len().div_ceil(64)],
            saved_placements: Vec::new(),
            payload_bits: vec![0; self.insts.len().div_ceil(64)],
            saved_payloads: Vec::new(),
            block_saved_bits: vec![0; self.blocks.len().div_ceil(64)],
            saved_blocks: Vec::new(),
            interned: Vec::new(),
        }));
        SnapshotToken {
            revision: self.revision,
        }
    }

    /// True while a speculation window is open.
    pub fn in_speculation(&self) -> bool {
        self.journal.is_some()
    }

    /// Discards the speculation window: every journaled mutation is undone,
    /// the arenas are truncated back to their snapshot lengths, interned
    /// constants are un-interned, and the revision returns to the token's.
    /// The restored state is bit-identical to the snapshot state, so
    /// reusing its revision is sound — analyses cached against it stay
    /// valid, and the speculation-era revisions are globally retired.
    ///
    /// Cost is O(touched): proportional to what the window mutated, not to
    /// the function size.
    ///
    /// # Panics
    ///
    /// Panics if no window is open or `token` is not the window's token.
    pub fn rollback(&mut self, token: SnapshotToken) {
        let j = self
            .journal
            .take()
            .expect("rollback without an open snapshot");
        assert_eq!(token.revision, j.base_revision, "stale snapshot token");
        // Entries are first-touch copies, each index saved at most once per
        // facet. Payload restores first: a payload snapshot taken after a
        // placement move carries that moved `block` field, so the placement
        // restore (which holds the true pre-window placement) must win.
        // Moving the saved data back avoids a second clone.
        for (idx, data) in j.saved_payloads {
            self.insts[idx as usize] = data;
        }
        for (idx, block, live) in j.saved_placements {
            self.insts[idx as usize].block = block;
            self.live[idx as usize] = live;
        }
        for (idx, data) in j.saved_blocks {
            self.blocks[idx as usize] = data;
        }
        self.values.truncate(j.base_values);
        self.insts.truncate(j.base_insts);
        self.inst_results.truncate(j.base_insts);
        self.live.truncate(j.base_insts);
        self.blocks.truncate(j.base_blocks);
        for key in &j.interned {
            self.const_map.remove(key);
        }
        self.revision = j.base_revision;
    }

    /// Keeps the speculation window's mutations and closes it, returning a
    /// [`SpeculationLog`] describing the touched arena entries (for
    /// [`Function::apply_log`] on a pre-window clone).
    ///
    /// The revision is left bumped exactly when observable state changed:
    /// if every journaled entry still equals its saved copy and no
    /// instructions or blocks were added, the base revision is restored, so
    /// revision-keyed caches are not invalidated by a no-op window. (Pure
    /// constant interning grows the value arena without counting as a
    /// structural change, matching the non-speculative interning contract.)
    ///
    /// # Panics
    ///
    /// Panics if no window is open or `token` is not the window's token.
    pub fn commit(&mut self, token: SnapshotToken) -> SpeculationLog {
        let j = self
            .journal
            .take()
            .expect("commit without an open snapshot");
        assert_eq!(token.revision, j.base_revision, "stale snapshot token");
        let grew = self.insts.len() > j.base_insts || self.blocks.len() > j.base_blocks;
        let changed = grew
            || j.saved_payloads
                .iter()
                .any(|(idx, data)| self.insts[*idx as usize] != *data)
            || j.saved_placements.iter().any(|(idx, block, live)| {
                self.insts[*idx as usize].block != *block || self.live[*idx as usize] != *live
            })
            || j.saved_blocks
                .iter()
                .any(|(idx, data)| self.blocks[*idx as usize] != *data);
        if !changed {
            self.revision = j.base_revision;
        }
        let mut touched_insts: Vec<u32> = j
            .saved_placements
            .iter()
            .map(|(idx, ..)| *idx)
            .chain(j.saved_payloads.iter().map(|(idx, _)| *idx))
            .collect();
        touched_insts.sort_unstable();
        touched_insts.dedup();
        let mut touched_blocks: Vec<u32> = j.saved_blocks.iter().map(|(idx, _)| *idx).collect();
        touched_blocks.sort_unstable();
        SpeculationLog {
            base_values: j.base_values,
            base_insts: j.base_insts,
            base_blocks: j.base_blocks,
            touched_insts,
            touched_blocks,
        }
    }

    /// Brings a clone holding the pre-window state up to the committed
    /// state in O(touched): copies the touched pre-existing entries from
    /// `src`, appends the new arena tail, re-interns the new constants, and
    /// adopts `src`'s revision. After this, `self` and `src` are clones.
    ///
    /// # Panics
    ///
    /// Panics if `self` has an open window or its arena lengths do not
    /// match the log's snapshot lengths (i.e. it is not a pre-window clone).
    pub fn apply_log(&mut self, src: &Function, log: &SpeculationLog) {
        assert!(self.journal.is_none(), "apply_log during open snapshot");
        assert_eq!(self.values.len(), log.base_values, "not a pre-window clone");
        assert_eq!(self.insts.len(), log.base_insts, "not a pre-window clone");
        assert_eq!(self.blocks.len(), log.base_blocks, "not a pre-window clone");
        for &idx in &log.touched_insts {
            self.insts[idx as usize] = src.insts[idx as usize].clone();
            self.live[idx as usize] = src.live[idx as usize];
        }
        for &idx in &log.touched_blocks {
            self.blocks[idx as usize] = src.blocks[idx as usize].clone();
        }
        self.values
            .extend(src.values[log.base_values..].iter().cloned());
        self.insts
            .extend(src.insts[log.base_insts..].iter().cloned());
        self.inst_results
            .extend_from_slice(&src.inst_results[log.base_insts..]);
        self.live.extend_from_slice(&src.live[log.base_insts..]);
        self.blocks
            .extend(src.blocks[log.base_blocks..].iter().cloned());
        for idx in log.base_values..self.values.len() {
            if let Some(key) = const_key_of(&self.values[idx]) {
                self.const_map.insert(key, ValueId(idx as u32));
            }
        }
        self.revision = src.revision;
    }

    /// Blocks the open speculation window may have changed: every saved
    /// pre-existing block, the old and current blocks of every saved
    /// instruction, and all blocks added since the snapshot. A superset of
    /// the truly changed blocks (sorted, deduplicated); the caller filters
    /// with a content compare.
    ///
    /// # Panics
    ///
    /// Panics if no window is open.
    pub fn speculated_blocks(&self) -> Vec<BlockId> {
        let j = self
            .journal
            .as_deref()
            .expect("speculated_blocks without an open snapshot");
        let mut set: Vec<u32> = j.saved_blocks.iter().map(|(idx, _)| *idx).collect();
        for (idx, block, _) in &j.saved_placements {
            set.push(block.0);
            set.push(self.insts[*idx as usize].block.0);
        }
        for (idx, data) in &j.saved_payloads {
            set.push(data.block.0);
            set.push(self.insts[*idx as usize].block.0);
        }
        set.extend(j.base_blocks as u32..self.blocks.len() as u32);
        set.sort_unstable();
        set.dedup();
        set.into_iter().map(BlockId).collect()
    }

    /// Catches a clone up with constants `src` interned since the clone was
    /// taken. Outside of interning the two must still be clones (same
    /// revision, same instruction arena); afterwards they are clones again.
    /// Interning never counts as a structural change, so no revision moves.
    pub fn absorb_interned_values(&mut self, src: &Function) {
        debug_assert_eq!(self.revision, src.revision, "not clones");
        assert_eq!(self.insts.len(), src.insts.len(), "not clones");
        assert!(self.values.len() <= src.values.len());
        for idx in self.values.len()..src.values.len() {
            let def = src.values[idx].clone();
            let key = const_key_of(&def)
                .expect("absorb_interned_values: appended value is not an interned constant");
            self.const_map.insert(key, ValueId(idx as u32));
            self.values.push(def);
        }
    }

    // ---- raw arena access for the binary serializer -----------------------

    /// The value arena, in slot order.
    pub(crate) fn raw_values(&self) -> &[ValueDef] {
        &self.values
    }

    /// The instruction arena, in slot order (including detached slots).
    pub(crate) fn raw_insts(&self) -> &[InstData] {
        &self.insts
    }

    /// The per-instruction liveness flags.
    pub(crate) fn raw_live(&self) -> &[bool] {
        &self.live
    }

    /// The block arena, in layout order.
    pub(crate) fn raw_blocks(&self) -> &[BlockData] {
        &self.blocks
    }

    /// Reassembles a function from decoded arenas. The constant-interning
    /// map and per-instruction result values are derived (every instruction
    /// slot must have exactly one `ValueDef::Inst` result in `values`); the
    /// revision is freshly minted — a decoded function is a new structure.
    ///
    /// Returns `None` when an instruction slot has no result value, a
    /// second result value, or `live`'s length disagrees with the arena.
    #[allow(clippy::too_many_arguments)] // one slot per serialized section
    pub(crate) fn from_raw_parts(
        name: String,
        param_tys: Vec<TypeId>,
        ret_ty: TypeId,
        is_declaration: bool,
        effects: Effects,
        values: Vec<ValueDef>,
        insts: Vec<InstData>,
        live: Vec<bool>,
        blocks: Vec<BlockData>,
        params: Vec<ValueId>,
    ) -> Option<Self> {
        if live.len() != insts.len() {
            return None;
        }
        let mut inst_results = vec![ValueId(u32::MAX); insts.len()];
        for (idx, def) in values.iter().enumerate() {
            if let ValueDef::Inst(i) = def {
                let slot = inst_results.get_mut(i.index())?;
                if *slot != ValueId(u32::MAX) {
                    return None;
                }
                *slot = ValueId(idx as u32);
            }
        }
        if inst_results.contains(&ValueId(u32::MAX)) {
            return None;
        }
        let mut f = Function {
            name,
            param_tys,
            ret_ty,
            is_declaration,
            effects,
            values,
            insts,
            inst_results,
            live,
            blocks,
            params,
            const_map: HashMap::new(),
            revision: next_revision(),
            journal: None,
        };
        f.rebuild_const_map();
        Some(f)
    }

    /// Journals the pre-mutation placement (block membership + liveness)
    /// of instruction `idx` (first touch only; new instructions are
    /// covered by arena truncation). Allocation-free — this is the hot
    /// save on the codegen teardown/rebuild path.
    fn journal_save_placement(&mut self, idx: usize) {
        if let Some(j) = self.journal.as_deref_mut() {
            if idx < j.base_insts {
                let bit = 1u64 << (idx % 64);
                let word = &mut j.placement_bits[idx / 64];
                if *word & bit == 0 {
                    *word |= bit;
                    j.saved_placements
                        .push((idx as u32, self.insts[idx].block, self.live[idx]));
                }
            }
        }
    }

    /// Journals the full pre-mutation [`InstData`] of instruction `idx`
    /// (first touch only), for mutators that hand out or rewrite the
    /// instruction body.
    fn journal_save_payload(&mut self, idx: usize) {
        if let Some(j) = self.journal.as_deref_mut() {
            if idx < j.base_insts {
                let bit = 1u64 << (idx % 64);
                let word = &mut j.payload_bits[idx / 64];
                if *word & bit == 0 {
                    *word |= bit;
                    j.saved_payloads.push((idx as u32, self.insts[idx].clone()));
                }
            }
        }
    }

    /// Journals the pre-mutation state of block `idx` (first touch only;
    /// new blocks are covered by arena truncation).
    fn journal_save_block(&mut self, idx: usize) {
        if let Some(j) = self.journal.as_deref_mut() {
            if idx < j.base_blocks {
                let bit = 1u64 << (idx % 64);
                let word = &mut j.block_saved_bits[idx / 64];
                if *word & bit == 0 {
                    *word |= bit;
                    j.saved_blocks.push((idx as u32, self.blocks[idx].clone()));
                }
            }
        }
    }

    /// Records a constant key newly interned during the window.
    fn journal_note_interned(&mut self, key: ConstKey) {
        if let Some(j) = self.journal.as_deref_mut() {
            j.interned.push(key);
        }
    }

    /// Parameter types.
    pub fn param_tys(&self) -> &[TypeId] {
        &self.param_tys
    }

    /// Parameter values, in order.
    pub fn params(&self) -> &[ValueId] {
        &self.params
    }

    /// The `index`-th parameter value.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn param(&self, index: usize) -> ValueId {
        self.params[index]
    }

    fn push_value(&mut self, def: ValueDef) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(def);
        id
    }

    /// Definition of value `v`.
    pub fn value(&self, v: ValueId) -> &ValueDef {
        &self.values[v.index()]
    }

    /// Number of value slots (including interned constants).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Number of instruction slots (including dead ones).
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Data of instruction `i`.
    pub fn inst(&self, i: InstId) -> &InstData {
        &self.insts[i.index()]
    }

    /// Mutable data of instruction `i`. Conservatively counts as a
    /// structural mutation (the caller may rewrite operands or the
    /// terminator), so it bumps the revision.
    pub fn inst_mut(&mut self, i: InstId) -> &mut InstData {
        // Both facets: the returned reference can rewrite the body *and*
        // the `block` field, and a pristine placement snapshot must exist
        // before any such move (rollback restores placement last).
        self.journal_save_payload(i.index());
        self.journal_save_placement(i.index());
        self.bump_revision();
        &mut self.insts[i.index()]
    }

    /// The SSA value produced by instruction `i`.
    pub fn inst_result(&self, i: InstId) -> ValueId {
        self.inst_results[i.index()]
    }

    /// Whether instruction `i` is still attached to a block.
    pub fn is_live(&self, i: InstId) -> bool {
        self.live[i.index()]
    }

    /// Interns an integer constant.
    pub fn const_int(&mut self, ty: TypeId, value: i64) -> ValueId {
        let key = ConstKey::Int(ty, value);
        if let Some(&v) = self.const_map.get(&key) {
            return v;
        }
        let v = self.push_value(ValueDef::ConstInt { ty, value });
        self.const_map.insert(key.clone(), v);
        self.journal_note_interned(key);
        v
    }

    /// Interns a floating-point constant (stored as `f64` bits).
    pub fn const_float(&mut self, ty: TypeId, value: f64) -> ValueId {
        self.const_float_bits(ty, value.to_bits())
    }

    /// Interns a floating-point constant from its exact `f64` bit pattern.
    /// Needed to round-trip NaN payloads, which `f64` arithmetic would not
    /// preserve.
    pub fn const_float_bits(&mut self, ty: TypeId, bits: u64) -> ValueId {
        let key = ConstKey::Float(ty, bits);
        if let Some(&v) = self.const_map.get(&key) {
            return v;
        }
        let v = self.push_value(ValueDef::ConstFloat { ty, bits });
        self.const_map.insert(key.clone(), v);
        self.journal_note_interned(key);
        v
    }

    /// Interns the address of a module global.
    pub fn global_addr(&mut self, g: GlobalId) -> ValueId {
        let key = ConstKey::Global(g);
        if let Some(&v) = self.const_map.get(&key) {
            return v;
        }
        let v = self.push_value(ValueDef::GlobalAddr(g));
        self.const_map.insert(key.clone(), v);
        self.journal_note_interned(key);
        v
    }

    /// Interns the address of a module function.
    pub fn func_addr(&mut self, f: FuncId) -> ValueId {
        let key = ConstKey::Func(f);
        if let Some(&v) = self.const_map.get(&key) {
            return v;
        }
        let v = self.push_value(ValueDef::FuncAddr(f));
        self.const_map.insert(key.clone(), v);
        self.journal_note_interned(key);
        v
    }

    /// Interns an `undef` of the given type.
    pub fn undef(&mut self, ty: TypeId) -> ValueId {
        let key = ConstKey::Undef(ty);
        if let Some(&v) = self.const_map.get(&key) {
            return v;
        }
        let v = self.push_value(ValueDef::Undef(ty));
        self.const_map.insert(key.clone(), v);
        self.journal_note_interned(key);
        v
    }

    /// The type of a value.
    pub fn value_ty(&self, v: ValueId, types: &TypeStore) -> TypeId {
        match self.value(v) {
            ValueDef::Inst(i) => self.inst(*i).ty,
            ValueDef::Param { ty, .. } => *ty,
            ValueDef::ConstInt { ty, .. } => *ty,
            ValueDef::ConstFloat { ty, .. } => *ty,
            ValueDef::GlobalAddr(_) | ValueDef::FuncAddr(_) => types.ptr(),
            ValueDef::Undef(ty) => *ty,
        }
    }

    /// Appends a new empty block.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.bump_revision();
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockData::new(name));
        id
    }

    /// Block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Data of block `b`.
    pub fn block(&self, b: BlockId) -> &BlockData {
        &self.blocks[b.index()]
    }

    /// Mutable data of block `b`. Conservatively counts as a structural
    /// mutation (the caller may edit the instruction list), so it bumps
    /// the revision.
    pub fn block_mut(&mut self, b: BlockId) -> &mut BlockData {
        self.journal_save_block(b.index());
        self.bump_revision();
        &mut self.blocks[b.index()]
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks (e.g. a declaration).
    pub fn entry_block(&self) -> BlockId {
        assert!(!self.blocks.is_empty(), "function has no blocks");
        BlockId(0)
    }

    /// Finds a block by label.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.name == name)
            .map(|i| BlockId(i as u32))
    }

    /// Creates a detached instruction and its result value. The caller must
    /// attach it to a block with [`Function::append_inst`] or
    /// [`Function::insert_inst`].
    pub fn create_inst(&mut self, data: InstData) -> (InstId, ValueId) {
        self.bump_revision();
        let id = InstId(self.insts.len() as u32);
        self.insts.push(data);
        self.live.push(false);
        let v = self.push_value(ValueDef::Inst(id));
        self.inst_results.push(v);
        (id, v)
    }

    /// Appends an instruction to the end of `block`.
    pub fn append_inst(&mut self, block: BlockId, inst: InstId) {
        self.journal_save_placement(inst.index());
        self.journal_save_block(block.index());
        self.bump_revision();
        self.insts[inst.index()].block = block;
        self.live[inst.index()] = true;
        self.blocks[block.index()].insts.push(inst);
    }

    /// Inserts an instruction at position `pos` inside `block`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is past the end of the block.
    pub fn insert_inst(&mut self, block: BlockId, pos: usize, inst: InstId) {
        self.journal_save_placement(inst.index());
        self.journal_save_block(block.index());
        self.bump_revision();
        self.insts[inst.index()].block = block;
        self.live[inst.index()] = true;
        self.blocks[block.index()].insts.insert(pos, inst);
    }

    /// Detaches an instruction from its block. Its value slot remains but
    /// must no longer be referenced by live instructions.
    pub fn remove_inst(&mut self, inst: InstId) {
        if !self.live[inst.index()] {
            return;
        }
        let block = self.insts[inst.index()].block;
        self.journal_save_placement(inst.index());
        self.journal_save_block(block.index());
        self.bump_revision();
        let list = &mut self.blocks[block.index()].insts;
        if let Some(pos) = list.iter().position(|&i| i == inst) {
            list.remove(pos);
        }
        self.live[inst.index()] = false;
    }

    /// Position of `inst` within its block, or `None` if detached.
    pub fn position_in_block(&self, inst: InstId) -> Option<usize> {
        if !self.live[inst.index()] {
            return None;
        }
        let block = self.insts[inst.index()].block;
        self.blocks[block.index()]
            .insts
            .iter()
            .position(|&i| i == inst)
    }

    /// Replaces every use of `old` with `new` across all live instructions.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        self.bump_revision();
        for idx in 0..self.insts.len() {
            if !self.live[idx] {
                continue;
            }
            if !self.insts[idx].operands.contains(&old) {
                continue;
            }
            self.journal_save_payload(idx);
            for op in self.insts[idx].operands.iter_mut() {
                if *op == old {
                    *op = new;
                }
            }
        }
    }

    /// Computes the def-use map: for every value, the list of
    /// `(user instruction, operand index)` pairs among live instructions.
    pub fn compute_uses(&self) -> UseMap {
        let mut uses: Vec<Vec<(InstId, usize)>> = vec![Vec::new(); self.values.len()];
        for b in self.block_ids() {
            for &i in &self.block(b).insts {
                for (op_idx, &op) in self.inst(i).operands.iter().enumerate() {
                    uses[op.index()].push((i, op_idx));
                }
            }
        }
        UseMap { uses }
    }

    /// Iterates over all live instructions in layout order.
    pub fn live_insts(&self) -> impl Iterator<Item = InstId> + '_ {
        self.block_ids()
            .flat_map(move |b| self.block(b).insts.iter().copied())
    }

    /// The terminator of `block`, if the block is non-empty and ends with one.
    pub fn terminator(&self, block: BlockId) -> Option<InstId> {
        let last = self.block(block).last_inst()?;
        if self.inst(last).opcode.is_terminator() {
            Some(last)
        } else {
            None
        }
    }

    /// CFG successors of `block`.
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        match self.terminator(block) {
            Some(t) => self.inst(t).successors(),
            None => Vec::new(),
        }
    }

    /// CFG predecessor map for all blocks.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.successors(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// Total number of live instructions.
    pub fn num_live_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// True if `v` is a phi instruction result.
    pub fn is_phi(&self, v: ValueId) -> bool {
        match self.value(v) {
            ValueDef::Inst(i) => self.inst(*i).opcode == Opcode::Phi,
            _ => false,
        }
    }

    /// Rewrites every [`TypeId`] stored in this function through `map`.
    ///
    /// Covers the signature, value definitions, instruction result types,
    /// and the `gep`/`alloca` element-type payloads, then rebuilds the
    /// constant-interning map (whose keys embed type ids). Used when a
    /// function is transplanted between modules whose type stores interned
    /// types in a different order.
    pub fn remap_types(&mut self, map: impl Fn(TypeId) -> TypeId) {
        assert!(self.journal.is_none(), "remap during open snapshot");
        self.bump_revision();
        for ty in self.param_tys.iter_mut() {
            *ty = map(*ty);
        }
        self.ret_ty = map(self.ret_ty);
        for def in self.values.iter_mut() {
            match def {
                ValueDef::Param { ty, .. }
                | ValueDef::ConstInt { ty, .. }
                | ValueDef::Undef(ty) => *ty = map(*ty),
                ValueDef::ConstFloat { ty, .. } => *ty = map(*ty),
                ValueDef::Inst(_) | ValueDef::GlobalAddr(_) | ValueDef::FuncAddr(_) => {}
            }
        }
        for inst in self.insts.iter_mut() {
            inst.ty = map(inst.ty);
            match &mut inst.extra {
                crate::inst::InstExtra::Gep { elem_ty }
                | crate::inst::InstExtra::Alloca { elem_ty } => *elem_ty = map(*elem_ty),
                _ => {}
            }
        }
        self.rebuild_const_map();
    }

    /// Rewrites every [`GlobalId`] referenced by this function through
    /// `map`, then rebuilds the constant-interning map.
    pub fn remap_globals(&mut self, map: impl Fn(GlobalId) -> GlobalId) {
        assert!(self.journal.is_none(), "remap during open snapshot");
        self.bump_revision();
        for def in self.values.iter_mut() {
            if let ValueDef::GlobalAddr(g) = def {
                *g = map(*g);
            }
        }
        self.rebuild_const_map();
    }

    /// Rewrites every [`FuncId`] referenced by this function (direct call
    /// callees and function-address constants) through `map`, then rebuilds
    /// the constant-interning map.
    pub fn remap_funcs(&mut self, map: impl Fn(FuncId) -> FuncId) {
        assert!(self.journal.is_none(), "remap during open snapshot");
        self.bump_revision();
        for def in self.values.iter_mut() {
            if let ValueDef::FuncAddr(f) = def {
                *f = map(*f);
            }
        }
        for inst in self.insts.iter_mut() {
            if let crate::inst::InstExtra::Call { callee } = &mut inst.extra {
                *callee = map(*callee);
            }
        }
        self.rebuild_const_map();
    }

    /// Recomputes the constant-interning map from the value table. Needed
    /// after a remap rewrites ids that appear inside [`ConstKey`]s.
    ///
    /// If a remap made two previously distinct constants identical, the
    /// later value slot wins future interning lookups; existing operands
    /// keep referring to their original slots, which stay valid.
    fn rebuild_const_map(&mut self) {
        self.const_map.clear();
        for (idx, def) in self.values.iter().enumerate() {
            let key = match def {
                ValueDef::ConstInt { ty, value } => ConstKey::Int(*ty, *value),
                ValueDef::ConstFloat { ty, bits } => ConstKey::Float(*ty, *bits),
                ValueDef::GlobalAddr(g) => ConstKey::Global(*g),
                ValueDef::FuncAddr(f) => ConstKey::Func(*f),
                ValueDef::Undef(ty) => ConstKey::Undef(*ty),
                ValueDef::Inst(_) | ValueDef::Param { .. } => continue,
            };
            self.const_map.insert(key, ValueId(idx as u32));
        }
    }
}

/// The interning key a constant value definition corresponds to, or `None`
/// for instruction results and parameters.
fn const_key_of(def: &ValueDef) -> Option<ConstKey> {
    Some(match def {
        ValueDef::ConstInt { ty, value } => ConstKey::Int(*ty, *value),
        ValueDef::ConstFloat { ty, bits } => ConstKey::Float(*ty, *bits),
        ValueDef::GlobalAddr(g) => ConstKey::Global(*g),
        ValueDef::FuncAddr(f) => ConstKey::Func(*f),
        ValueDef::Undef(ty) => ConstKey::Undef(*ty),
        ValueDef::Inst(_) | ValueDef::Param { .. } => return None,
    })
}

/// Def-use information computed by [`Function::compute_uses`].
#[derive(Debug, Clone)]
pub struct UseMap {
    uses: Vec<Vec<(InstId, usize)>>,
}

impl UseMap {
    /// Users of value `v` as `(instruction, operand index)` pairs.
    pub fn of(&self, v: ValueId) -> &[(InstId, usize)] {
        &self.uses[v.index()]
    }

    /// Number of uses of `v`.
    pub fn count(&self, v: ValueId) -> usize {
        self.uses[v.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeStore;

    fn sample() -> (TypeStore, Function) {
        let types = TypeStore::new();
        let f = Function::new("f", vec![types.i32(), types.i32()], types.i32());
        (types, f)
    }

    #[test]
    fn params_are_materialized() {
        let (types, f) = sample();
        assert_eq!(f.params().len(), 2);
        assert_eq!(f.value_ty(f.param(0), &types), types.i32());
    }

    #[test]
    fn constant_interning() {
        let (types, mut f) = sample();
        let a = f.const_int(types.i32(), 7);
        let b = f.const_int(types.i32(), 7);
        let c = f.const_int(types.i64(), 7);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let x = f.const_float(types.double(), 1.5);
        let y = f.const_float(types.double(), 1.5);
        assert_eq!(x, y);
    }

    #[test]
    fn inst_lifecycle() {
        let (types, mut f) = sample();
        let bb = f.add_block("entry");
        let a = f.param(0);
        let b = f.param(1);
        let (i, v) = f.create_inst(InstData {
            opcode: Opcode::Add,
            ty: types.i32(),
            operands: vec![a, b],
            block: bb,
            extra: crate::inst::InstExtra::None,
        });
        assert!(!f.is_live(i));
        f.append_inst(bb, i);
        assert!(f.is_live(i));
        assert_eq!(f.position_in_block(i), Some(0));
        assert_eq!(f.inst_result(i), v);
        assert_eq!(f.value_ty(v, &types), types.i32());

        f.remove_inst(i);
        assert!(!f.is_live(i));
        assert_eq!(f.block(bb).insts.len(), 0);
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let (types, mut f) = sample();
        let bb = f.add_block("entry");
        let a = f.param(0);
        let b = f.param(1);
        let (i, v1) = f.create_inst(InstData {
            opcode: Opcode::Add,
            ty: types.i32(),
            operands: vec![a, b],
            block: bb,
            extra: crate::inst::InstExtra::None,
        });
        f.append_inst(bb, i);
        let c = f.const_int(types.i32(), 3);
        f.replace_all_uses(a, c);
        assert_eq!(f.inst(i).operands[0], c);
        assert_eq!(f.inst(i).operands[1], b);
        let _ = v1;
    }

    #[test]
    fn remaps_rewrite_ids_and_rebuild_interning() {
        let (types, mut f) = sample();
        let bb = f.add_block("entry");
        let g = GlobalId::from_index(2);
        let callee = FuncId::from_index(1);
        let c = f.const_int(types.i32(), 5);
        let ga = f.global_addr(g);
        let (i, _) = f.create_inst(InstData {
            opcode: Opcode::Call,
            ty: types.i32(),
            operands: vec![c, ga],
            block: bb,
            extra: crate::inst::InstExtra::Call { callee },
        });
        f.append_inst(bb, i);

        f.remap_globals(|old| GlobalId::from_index(old.index() + 10));
        f.remap_funcs(|old| FuncId::from_index(old.index() + 10));
        let shifted = GlobalId::from_index(12);
        assert_eq!(f.value(ga), &ValueDef::GlobalAddr(shifted));
        match &f.inst(i).extra {
            crate::inst::InstExtra::Call { callee } => {
                assert_eq!(*callee, FuncId::from_index(11));
            }
            other => panic!("unexpected extra {other:?}"),
        }
        // The rebuilt interning map resolves the *new* ids to the same slots.
        assert_eq!(f.global_addr(shifted), ga);
        assert_eq!(f.const_int(types.i32(), 5), c);

        // Type remap rewrites result types, signature, and const keys.
        let bump = |t: TypeId| TypeId(t.0 + 1);
        let old_ret = f.ret_ty;
        f.remap_types(bump);
        assert_eq!(f.ret_ty, bump(old_ret));
        assert_eq!(f.inst(i).ty, bump(types.i32()));
        assert_eq!(f.const_int(bump(types.i32()), 5), c);
    }

    #[test]
    fn revisions_track_structural_mutation() {
        let (types, mut f) = sample();
        let r0 = f.revision();

        // A clone is the same structure: identical revision.
        let clone = f.clone();
        assert_eq!(clone.revision(), r0);

        // Reading never bumps.
        let _ = f.params();
        let _ = f.num_values();
        assert_eq!(f.revision(), r0);

        // Every structural mutation takes a globally fresh revision.
        let bb = f.add_block("entry");
        let r1 = f.revision();
        assert_ne!(r1, r0);
        let (i, v) = f.create_inst(InstData {
            opcode: Opcode::Add,
            ty: types.i32(),
            operands: vec![f.param(0), f.param(1)],
            block: bb,
            extra: crate::inst::InstExtra::None,
        });
        f.append_inst(bb, i);
        let r2 = f.revision();
        assert_ne!(r2, r1);
        f.replace_all_uses(v, f.param(0));
        assert_ne!(f.revision(), r2);
        let r3 = f.revision();
        f.remove_inst(i);
        assert_ne!(f.revision(), r3);

        // Removing an already-detached instruction is a no-op.
        let r4 = f.revision();
        f.remove_inst(i);
        assert_eq!(f.revision(), r4);

        // The untouched clone still carries the original revision, and a
        // mutation on it diverges to a value the original never had.
        let mut clone = clone;
        assert_eq!(clone.revision(), r0);
        clone.add_block("entry");
        assert_ne!(clone.revision(), f.revision());
    }

    /// Builds a one-block function `entry: %v = add %a, %b; ret` for the
    /// speculation tests.
    fn speculation_sample() -> (TypeStore, Function, InstId, ValueId) {
        let (types, mut f) = sample();
        let bb = f.add_block("entry");
        let (i, v) = f.create_inst(InstData {
            opcode: Opcode::Add,
            ty: types.i32(),
            operands: vec![f.param(0), f.param(1)],
            block: bb,
            extra: crate::inst::InstExtra::None,
        });
        f.append_inst(bb, i);
        (types, f, i, v)
    }

    /// Captures every observable facet of a function for equality checks.
    fn fingerprint(f: &Function) -> (u64, usize, usize, usize, Vec<String>, Vec<Vec<InstId>>) {
        (
            f.revision(),
            f.num_values(),
            f.num_insts(),
            f.num_blocks(),
            f.block_ids().map(|b| f.block(b).name.clone()).collect(),
            f.block_ids().map(|b| f.block(b).insts.clone()).collect(),
        )
    }

    #[test]
    fn rollback_restores_the_exact_presnapshot_state() {
        let (types, mut f, i, v) = speculation_sample();
        let before_const = f.const_int(types.i32(), 1); // pre-existing intern
        let before = fingerprint(&f);

        let token = f.snapshot();
        assert!(f.in_speculation());
        // Mutate everything a speculative rewrite would: detach, rewrite
        // operands, add blocks/instructions, intern constants.
        let bb = f.entry_block();
        f.remove_inst(i);
        let nb = f.add_block("spec");
        let c = f.const_int(types.i32(), 42);
        assert_ne!(c, before_const);
        let (ni, nv) = f.create_inst(InstData {
            opcode: Opcode::Mul,
            ty: types.i32(),
            operands: vec![f.param(0), c],
            block: nb,
            extra: crate::inst::InstExtra::None,
        });
        f.append_inst(nb, ni);
        f.replace_all_uses(v, nv);
        f.inst_mut(ni).operands[0] = f.param(1);
        f.block_mut(bb).name = "renamed".into();
        assert_ne!(f.revision(), before.0);

        f.rollback(token);
        assert!(!f.in_speculation());
        assert_eq!(fingerprint(&f), before);
        assert!(f.is_live(i));
        // The speculative intern was removed; re-interning 42 takes a fresh
        // slot while the pre-existing constant still hits its old slot.
        assert_eq!(f.const_int(types.i32(), 1), before_const);
        assert_eq!(f.const_int(types.i32(), 42).index(), f.num_values() - 1);
    }

    #[test]
    fn commit_keeps_changes_and_apply_log_syncs_a_clone() {
        let (types, mut f, i, _v) = speculation_sample();
        let mut shadow = f.clone();
        let r0 = f.revision();

        let token = f.snapshot();
        let bb = f.entry_block();
        f.remove_inst(i);
        let nb = f.add_block("spec");
        let c = f.const_int(types.i32(), 7);
        let (ni, _nv) = f.create_inst(InstData {
            opcode: Opcode::Sub,
            ty: types.i32(),
            operands: vec![f.param(0), c],
            block: nb,
            extra: crate::inst::InstExtra::None,
        });
        f.append_inst(nb, ni);
        let _ = bb;
        let log = f.commit(token);
        assert_ne!(f.revision(), r0, "observable change must keep the bump");

        shadow.apply_log(&f, &log);
        assert_eq!(fingerprint(&shadow), fingerprint(&f));
        // The clone's interning map learned the committed constant.
        assert_eq!(shadow.const_int(types.i32(), 7), c);
    }

    #[test]
    fn commit_of_a_noop_window_restores_the_base_revision() {
        let (types, mut f, i, _v) = speculation_sample();
        let r0 = f.revision();

        // Detach and re-attach at the same position: revision bumps happen
        // inside the window, but the net state is unchanged.
        let token = f.snapshot();
        let bb = f.inst(i).block;
        let pos = f.position_in_block(i).unwrap();
        f.remove_inst(i);
        f.insert_inst(bb, pos, i);
        // Interning alone is also not an observable structural change.
        let _ = f.const_int(types.i32(), 99);
        let log = f.commit(token);
        assert_eq!(f.revision(), r0, "no-op window must restore the revision");
        assert!(log.touched_insts.contains(&(i.index() as u32)));

        // A window that does change state keeps its bumped revision.
        let token = f.snapshot();
        f.remove_inst(i);
        let _ = f.commit(token);
        assert_ne!(f.revision(), r0);
    }

    #[test]
    fn speculated_blocks_cover_touched_and_new_blocks() {
        let (types, mut f, i, _v) = speculation_sample();
        let entry = f.entry_block();
        let other = f.add_block("other");

        let token = f.snapshot();
        f.remove_inst(i);
        let nb = f.add_block("spec");
        let (ni, _) = f.create_inst(InstData {
            opcode: Opcode::Add,
            ty: types.i32(),
            operands: vec![f.param(0), f.param(1)],
            block: nb,
            extra: crate::inst::InstExtra::None,
        });
        f.append_inst(nb, ni);
        let touched = f.speculated_blocks();
        assert!(touched.contains(&entry));
        assert!(touched.contains(&nb));
        assert!(!touched.contains(&other), "untouched block reported");
        f.rollback(token);
    }

    #[test]
    fn absorb_interned_values_catches_a_clone_up() {
        let (types, mut f, _i, _v) = speculation_sample();
        let mut shadow = f.clone();
        let a = f.const_int(types.i64(), 5);
        let b = f.undef(types.i32());
        shadow.absorb_interned_values(&f);
        assert_eq!(shadow.num_values(), f.num_values());
        assert_eq!(shadow.const_int(types.i64(), 5), a);
        assert_eq!(shadow.undef(types.i32()), b);
    }

    #[test]
    fn clone_does_not_carry_an_open_snapshot() {
        let (_types, mut f, i, _v) = speculation_sample();
        let token = f.snapshot();
        f.remove_inst(i);
        let clone = f.clone();
        assert!(!clone.in_speculation());
        f.rollback(token);
        // The clone keeps the speculative state it was copied from.
        assert!(!clone.is_live(i));
        assert!(f.is_live(i));
    }

    #[test]
    fn use_map_counts() {
        let (types, mut f) = sample();
        let bb = f.add_block("entry");
        let a = f.param(0);
        let (i1, v1) = f.create_inst(InstData {
            opcode: Opcode::Add,
            ty: types.i32(),
            operands: vec![a, a],
            block: bb,
            extra: crate::inst::InstExtra::None,
        });
        f.append_inst(bb, i1);
        let (i2, _) = f.create_inst(InstData {
            opcode: Opcode::Mul,
            ty: types.i32(),
            operands: vec![v1, a],
            block: bb,
            extra: crate::inst::InstExtra::None,
        });
        f.append_inst(bb, i2);
        let uses = f.compute_uses();
        assert_eq!(uses.count(a), 3);
        assert_eq!(uses.count(v1), 1);
        assert_eq!(uses.of(v1)[0].0, i2);
    }
}
