//! Functions: arenas of values, instructions, and blocks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide revision source. Revisions are cache keys, never printed,
/// so a global atomic keeps them unique across threads (the parallel
/// driver mutates function clones concurrently) without any coordination.
static REVISION_COUNTER: AtomicU64 = AtomicU64::new(1);

fn next_revision() -> u64 {
    REVISION_COUNTER.fetch_add(1, Ordering::Relaxed)
}

use crate::block::{BlockData, BlockId};
use crate::inst::{InstData, InstId, Opcode};
use crate::types::{TypeId, TypeStore};
use crate::value::{ConstKey, FuncId, GlobalId, ValueDef, ValueId};

/// Memory-effect annotation, used for call reordering decisions.
///
/// Definitions default to [`Effects::ReadWrite`]; declarations carry the
/// annotation explicitly, like LLVM's `readnone`/`readonly` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Effects {
    /// Neither reads nor writes memory; a pure function of its arguments.
    ReadNone,
    /// May read but not write memory.
    ReadOnly,
    /// May read and write memory (the conservative default).
    #[default]
    ReadWrite,
}

impl Effects {
    /// Printer mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Effects::ReadNone => "readnone",
            Effects::ReadOnly => "readonly",
            Effects::ReadWrite => "readwrite",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(name: &str) -> Option<Self> {
        Some(match name {
            "readnone" => Effects::ReadNone,
            "readonly" => Effects::ReadOnly,
            "readwrite" => Effects::ReadWrite,
            _ => return None,
        })
    }
}

/// A function definition or declaration.
///
/// All values, instructions, and blocks of the function live in arenas owned
/// by the function and are referred to by ids, so cloning a function (for
/// speculative transformation) is a plain deep copy.
#[derive(Debug, Clone)]
pub struct Function {
    /// Symbol name, unique within the module.
    pub name: String,
    param_tys: Vec<TypeId>,
    /// Return type.
    pub ret_ty: TypeId,
    /// True if this function has no body.
    pub is_declaration: bool,
    /// Memory-effect annotation (meaningful mostly for declarations).
    pub effects: Effects,
    values: Vec<ValueDef>,
    insts: Vec<InstData>,
    inst_results: Vec<ValueId>,
    live: Vec<bool>,
    blocks: Vec<BlockData>,
    params: Vec<ValueId>,
    const_map: HashMap<ConstKey, ValueId>,
    /// Structural revision, used by analysis caches as a validity key.
    /// Assigned from a process-wide counter on creation and re-assigned by
    /// every mutator that can change the arenas, so two functions carrying
    /// the same revision are clones with identical arenas. Cloning keeps
    /// the revision (a clone *is* the same structure), which lets an
    /// analysis computed on one clone serve the other — ids are arena
    /// indices and line up exactly.
    ///
    /// The plain metadata fields (`name`, `effects`, …) do not bump the
    /// revision; revision-keyed caches must only hold analyses derived
    /// from the arenas (CFG, instructions, values).
    revision: u64,
}

impl Function {
    /// Creates an empty function *definition* with the given signature.
    /// Parameters are materialized as values immediately.
    pub fn new(name: impl Into<String>, param_tys: Vec<TypeId>, ret_ty: TypeId) -> Self {
        let mut f = Function {
            name: name.into(),
            param_tys: param_tys.clone(),
            ret_ty,
            is_declaration: false,
            effects: Effects::ReadWrite,
            values: Vec::new(),
            insts: Vec::new(),
            inst_results: Vec::new(),
            live: Vec::new(),
            blocks: Vec::new(),
            params: Vec::new(),
            const_map: HashMap::new(),
            revision: next_revision(),
        };
        for (i, &ty) in param_tys.iter().enumerate() {
            let v = f.push_value(ValueDef::Param {
                index: i as u32,
                ty,
            });
            f.params.push(v);
        }
        f
    }

    /// Creates a function *declaration* (no body) with the given effects.
    pub fn declare(
        name: impl Into<String>,
        param_tys: Vec<TypeId>,
        ret_ty: TypeId,
        effects: Effects,
    ) -> Self {
        let mut f = Function::new(name, param_tys, ret_ty);
        f.is_declaration = true;
        f.effects = effects;
        f
    }

    /// Current structural revision. Two functions with equal revisions are
    /// clones of the same state: analyses computed against one are valid
    /// for the other. Any arena mutation assigns a globally fresh value,
    /// so a stale cache entry can never collide with a new state.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Marks the arenas as changed by taking a fresh global revision.
    fn bump_revision(&mut self) {
        self.revision = next_revision();
    }

    /// Parameter types.
    pub fn param_tys(&self) -> &[TypeId] {
        &self.param_tys
    }

    /// Parameter values, in order.
    pub fn params(&self) -> &[ValueId] {
        &self.params
    }

    /// The `index`-th parameter value.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn param(&self, index: usize) -> ValueId {
        self.params[index]
    }

    fn push_value(&mut self, def: ValueDef) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(def);
        id
    }

    /// Definition of value `v`.
    pub fn value(&self, v: ValueId) -> &ValueDef {
        &self.values[v.index()]
    }

    /// Number of value slots (including interned constants).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Number of instruction slots (including dead ones).
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Data of instruction `i`.
    pub fn inst(&self, i: InstId) -> &InstData {
        &self.insts[i.index()]
    }

    /// Mutable data of instruction `i`. Conservatively counts as a
    /// structural mutation (the caller may rewrite operands or the
    /// terminator), so it bumps the revision.
    pub fn inst_mut(&mut self, i: InstId) -> &mut InstData {
        self.bump_revision();
        &mut self.insts[i.index()]
    }

    /// The SSA value produced by instruction `i`.
    pub fn inst_result(&self, i: InstId) -> ValueId {
        self.inst_results[i.index()]
    }

    /// Whether instruction `i` is still attached to a block.
    pub fn is_live(&self, i: InstId) -> bool {
        self.live[i.index()]
    }

    /// Interns an integer constant.
    pub fn const_int(&mut self, ty: TypeId, value: i64) -> ValueId {
        let key = ConstKey::Int(ty, value);
        if let Some(&v) = self.const_map.get(&key) {
            return v;
        }
        let v = self.push_value(ValueDef::ConstInt { ty, value });
        self.const_map.insert(key, v);
        v
    }

    /// Interns a floating-point constant (stored as `f64` bits).
    pub fn const_float(&mut self, ty: TypeId, value: f64) -> ValueId {
        self.const_float_bits(ty, value.to_bits())
    }

    /// Interns a floating-point constant from its exact `f64` bit pattern.
    /// Needed to round-trip NaN payloads, which `f64` arithmetic would not
    /// preserve.
    pub fn const_float_bits(&mut self, ty: TypeId, bits: u64) -> ValueId {
        let key = ConstKey::Float(ty, bits);
        if let Some(&v) = self.const_map.get(&key) {
            return v;
        }
        let v = self.push_value(ValueDef::ConstFloat { ty, bits });
        self.const_map.insert(key, v);
        v
    }

    /// Interns the address of a module global.
    pub fn global_addr(&mut self, g: GlobalId) -> ValueId {
        let key = ConstKey::Global(g);
        if let Some(&v) = self.const_map.get(&key) {
            return v;
        }
        let v = self.push_value(ValueDef::GlobalAddr(g));
        self.const_map.insert(key, v);
        v
    }

    /// Interns the address of a module function.
    pub fn func_addr(&mut self, f: FuncId) -> ValueId {
        let key = ConstKey::Func(f);
        if let Some(&v) = self.const_map.get(&key) {
            return v;
        }
        let v = self.push_value(ValueDef::FuncAddr(f));
        self.const_map.insert(key, v);
        v
    }

    /// Interns an `undef` of the given type.
    pub fn undef(&mut self, ty: TypeId) -> ValueId {
        let key = ConstKey::Undef(ty);
        if let Some(&v) = self.const_map.get(&key) {
            return v;
        }
        let v = self.push_value(ValueDef::Undef(ty));
        self.const_map.insert(key, v);
        v
    }

    /// The type of a value.
    pub fn value_ty(&self, v: ValueId, types: &TypeStore) -> TypeId {
        match self.value(v) {
            ValueDef::Inst(i) => self.inst(*i).ty,
            ValueDef::Param { ty, .. } => *ty,
            ValueDef::ConstInt { ty, .. } => *ty,
            ValueDef::ConstFloat { ty, .. } => *ty,
            ValueDef::GlobalAddr(_) | ValueDef::FuncAddr(_) => types.ptr(),
            ValueDef::Undef(ty) => *ty,
        }
    }

    /// Appends a new empty block.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.bump_revision();
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockData::new(name));
        id
    }

    /// Block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Data of block `b`.
    pub fn block(&self, b: BlockId) -> &BlockData {
        &self.blocks[b.index()]
    }

    /// Mutable data of block `b`. Conservatively counts as a structural
    /// mutation (the caller may edit the instruction list), so it bumps
    /// the revision.
    pub fn block_mut(&mut self, b: BlockId) -> &mut BlockData {
        self.bump_revision();
        &mut self.blocks[b.index()]
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks (e.g. a declaration).
    pub fn entry_block(&self) -> BlockId {
        assert!(!self.blocks.is_empty(), "function has no blocks");
        BlockId(0)
    }

    /// Finds a block by label.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.name == name)
            .map(|i| BlockId(i as u32))
    }

    /// Creates a detached instruction and its result value. The caller must
    /// attach it to a block with [`Function::append_inst`] or
    /// [`Function::insert_inst`].
    pub fn create_inst(&mut self, data: InstData) -> (InstId, ValueId) {
        self.bump_revision();
        let id = InstId(self.insts.len() as u32);
        self.insts.push(data);
        self.live.push(false);
        let v = self.push_value(ValueDef::Inst(id));
        self.inst_results.push(v);
        (id, v)
    }

    /// Appends an instruction to the end of `block`.
    pub fn append_inst(&mut self, block: BlockId, inst: InstId) {
        self.bump_revision();
        self.insts[inst.index()].block = block;
        self.live[inst.index()] = true;
        self.blocks[block.index()].insts.push(inst);
    }

    /// Inserts an instruction at position `pos` inside `block`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is past the end of the block.
    pub fn insert_inst(&mut self, block: BlockId, pos: usize, inst: InstId) {
        self.bump_revision();
        self.insts[inst.index()].block = block;
        self.live[inst.index()] = true;
        self.blocks[block.index()].insts.insert(pos, inst);
    }

    /// Detaches an instruction from its block. Its value slot remains but
    /// must no longer be referenced by live instructions.
    pub fn remove_inst(&mut self, inst: InstId) {
        if !self.live[inst.index()] {
            return;
        }
        self.bump_revision();
        let block = self.insts[inst.index()].block;
        let list = &mut self.blocks[block.index()].insts;
        if let Some(pos) = list.iter().position(|&i| i == inst) {
            list.remove(pos);
        }
        self.live[inst.index()] = false;
    }

    /// Position of `inst` within its block, or `None` if detached.
    pub fn position_in_block(&self, inst: InstId) -> Option<usize> {
        if !self.live[inst.index()] {
            return None;
        }
        let block = self.insts[inst.index()].block;
        self.blocks[block.index()]
            .insts
            .iter()
            .position(|&i| i == inst)
    }

    /// Replaces every use of `old` with `new` across all live instructions.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        self.bump_revision();
        for (idx, inst) in self.insts.iter_mut().enumerate() {
            if !self.live[idx] {
                continue;
            }
            for op in inst.operands.iter_mut() {
                if *op == old {
                    *op = new;
                }
            }
        }
    }

    /// Computes the def-use map: for every value, the list of
    /// `(user instruction, operand index)` pairs among live instructions.
    pub fn compute_uses(&self) -> UseMap {
        let mut uses: Vec<Vec<(InstId, usize)>> = vec![Vec::new(); self.values.len()];
        for b in self.block_ids() {
            for &i in &self.block(b).insts {
                for (op_idx, &op) in self.inst(i).operands.iter().enumerate() {
                    uses[op.index()].push((i, op_idx));
                }
            }
        }
        UseMap { uses }
    }

    /// Iterates over all live instructions in layout order.
    pub fn live_insts(&self) -> impl Iterator<Item = InstId> + '_ {
        self.block_ids()
            .flat_map(move |b| self.block(b).insts.iter().copied())
    }

    /// The terminator of `block`, if the block is non-empty and ends with one.
    pub fn terminator(&self, block: BlockId) -> Option<InstId> {
        let last = self.block(block).last_inst()?;
        if self.inst(last).opcode.is_terminator() {
            Some(last)
        } else {
            None
        }
    }

    /// CFG successors of `block`.
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        match self.terminator(block) {
            Some(t) => self.inst(t).successors(),
            None => Vec::new(),
        }
    }

    /// CFG predecessor map for all blocks.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.successors(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// Total number of live instructions.
    pub fn num_live_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// True if `v` is a phi instruction result.
    pub fn is_phi(&self, v: ValueId) -> bool {
        match self.value(v) {
            ValueDef::Inst(i) => self.inst(*i).opcode == Opcode::Phi,
            _ => false,
        }
    }

    /// Rewrites every [`TypeId`] stored in this function through `map`.
    ///
    /// Covers the signature, value definitions, instruction result types,
    /// and the `gep`/`alloca` element-type payloads, then rebuilds the
    /// constant-interning map (whose keys embed type ids). Used when a
    /// function is transplanted between modules whose type stores interned
    /// types in a different order.
    pub fn remap_types(&mut self, map: impl Fn(TypeId) -> TypeId) {
        self.bump_revision();
        for ty in self.param_tys.iter_mut() {
            *ty = map(*ty);
        }
        self.ret_ty = map(self.ret_ty);
        for def in self.values.iter_mut() {
            match def {
                ValueDef::Param { ty, .. }
                | ValueDef::ConstInt { ty, .. }
                | ValueDef::Undef(ty) => *ty = map(*ty),
                ValueDef::ConstFloat { ty, .. } => *ty = map(*ty),
                ValueDef::Inst(_) | ValueDef::GlobalAddr(_) | ValueDef::FuncAddr(_) => {}
            }
        }
        for inst in self.insts.iter_mut() {
            inst.ty = map(inst.ty);
            match &mut inst.extra {
                crate::inst::InstExtra::Gep { elem_ty }
                | crate::inst::InstExtra::Alloca { elem_ty } => *elem_ty = map(*elem_ty),
                _ => {}
            }
        }
        self.rebuild_const_map();
    }

    /// Rewrites every [`GlobalId`] referenced by this function through
    /// `map`, then rebuilds the constant-interning map.
    pub fn remap_globals(&mut self, map: impl Fn(GlobalId) -> GlobalId) {
        self.bump_revision();
        for def in self.values.iter_mut() {
            if let ValueDef::GlobalAddr(g) = def {
                *g = map(*g);
            }
        }
        self.rebuild_const_map();
    }

    /// Rewrites every [`FuncId`] referenced by this function (direct call
    /// callees and function-address constants) through `map`, then rebuilds
    /// the constant-interning map.
    pub fn remap_funcs(&mut self, map: impl Fn(FuncId) -> FuncId) {
        self.bump_revision();
        for def in self.values.iter_mut() {
            if let ValueDef::FuncAddr(f) = def {
                *f = map(*f);
            }
        }
        for inst in self.insts.iter_mut() {
            if let crate::inst::InstExtra::Call { callee } = &mut inst.extra {
                *callee = map(*callee);
            }
        }
        self.rebuild_const_map();
    }

    /// Recomputes the constant-interning map from the value table. Needed
    /// after a remap rewrites ids that appear inside [`ConstKey`]s.
    ///
    /// If a remap made two previously distinct constants identical, the
    /// later value slot wins future interning lookups; existing operands
    /// keep referring to their original slots, which stay valid.
    fn rebuild_const_map(&mut self) {
        self.const_map.clear();
        for (idx, def) in self.values.iter().enumerate() {
            let key = match def {
                ValueDef::ConstInt { ty, value } => ConstKey::Int(*ty, *value),
                ValueDef::ConstFloat { ty, bits } => ConstKey::Float(*ty, *bits),
                ValueDef::GlobalAddr(g) => ConstKey::Global(*g),
                ValueDef::FuncAddr(f) => ConstKey::Func(*f),
                ValueDef::Undef(ty) => ConstKey::Undef(*ty),
                ValueDef::Inst(_) | ValueDef::Param { .. } => continue,
            };
            self.const_map.insert(key, ValueId(idx as u32));
        }
    }
}

/// Def-use information computed by [`Function::compute_uses`].
#[derive(Debug, Clone)]
pub struct UseMap {
    uses: Vec<Vec<(InstId, usize)>>,
}

impl UseMap {
    /// Users of value `v` as `(instruction, operand index)` pairs.
    pub fn of(&self, v: ValueId) -> &[(InstId, usize)] {
        &self.uses[v.index()]
    }

    /// Number of uses of `v`.
    pub fn count(&self, v: ValueId) -> usize {
        self.uses[v.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeStore;

    fn sample() -> (TypeStore, Function) {
        let types = TypeStore::new();
        let f = Function::new("f", vec![types.i32(), types.i32()], types.i32());
        (types, f)
    }

    #[test]
    fn params_are_materialized() {
        let (types, f) = sample();
        assert_eq!(f.params().len(), 2);
        assert_eq!(f.value_ty(f.param(0), &types), types.i32());
    }

    #[test]
    fn constant_interning() {
        let (types, mut f) = sample();
        let a = f.const_int(types.i32(), 7);
        let b = f.const_int(types.i32(), 7);
        let c = f.const_int(types.i64(), 7);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let x = f.const_float(types.double(), 1.5);
        let y = f.const_float(types.double(), 1.5);
        assert_eq!(x, y);
    }

    #[test]
    fn inst_lifecycle() {
        let (types, mut f) = sample();
        let bb = f.add_block("entry");
        let a = f.param(0);
        let b = f.param(1);
        let (i, v) = f.create_inst(InstData {
            opcode: Opcode::Add,
            ty: types.i32(),
            operands: vec![a, b],
            block: bb,
            extra: crate::inst::InstExtra::None,
        });
        assert!(!f.is_live(i));
        f.append_inst(bb, i);
        assert!(f.is_live(i));
        assert_eq!(f.position_in_block(i), Some(0));
        assert_eq!(f.inst_result(i), v);
        assert_eq!(f.value_ty(v, &types), types.i32());

        f.remove_inst(i);
        assert!(!f.is_live(i));
        assert_eq!(f.block(bb).insts.len(), 0);
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let (types, mut f) = sample();
        let bb = f.add_block("entry");
        let a = f.param(0);
        let b = f.param(1);
        let (i, v1) = f.create_inst(InstData {
            opcode: Opcode::Add,
            ty: types.i32(),
            operands: vec![a, b],
            block: bb,
            extra: crate::inst::InstExtra::None,
        });
        f.append_inst(bb, i);
        let c = f.const_int(types.i32(), 3);
        f.replace_all_uses(a, c);
        assert_eq!(f.inst(i).operands[0], c);
        assert_eq!(f.inst(i).operands[1], b);
        let _ = v1;
    }

    #[test]
    fn remaps_rewrite_ids_and_rebuild_interning() {
        let (types, mut f) = sample();
        let bb = f.add_block("entry");
        let g = GlobalId::from_index(2);
        let callee = FuncId::from_index(1);
        let c = f.const_int(types.i32(), 5);
        let ga = f.global_addr(g);
        let (i, _) = f.create_inst(InstData {
            opcode: Opcode::Call,
            ty: types.i32(),
            operands: vec![c, ga],
            block: bb,
            extra: crate::inst::InstExtra::Call { callee },
        });
        f.append_inst(bb, i);

        f.remap_globals(|old| GlobalId::from_index(old.index() + 10));
        f.remap_funcs(|old| FuncId::from_index(old.index() + 10));
        let shifted = GlobalId::from_index(12);
        assert_eq!(f.value(ga), &ValueDef::GlobalAddr(shifted));
        match &f.inst(i).extra {
            crate::inst::InstExtra::Call { callee } => {
                assert_eq!(*callee, FuncId::from_index(11));
            }
            other => panic!("unexpected extra {other:?}"),
        }
        // The rebuilt interning map resolves the *new* ids to the same slots.
        assert_eq!(f.global_addr(shifted), ga);
        assert_eq!(f.const_int(types.i32(), 5), c);

        // Type remap rewrites result types, signature, and const keys.
        let bump = |t: TypeId| TypeId(t.0 + 1);
        let old_ret = f.ret_ty;
        f.remap_types(bump);
        assert_eq!(f.ret_ty, bump(old_ret));
        assert_eq!(f.inst(i).ty, bump(types.i32()));
        assert_eq!(f.const_int(bump(types.i32()), 5), c);
    }

    #[test]
    fn revisions_track_structural_mutation() {
        let (types, mut f) = sample();
        let r0 = f.revision();

        // A clone is the same structure: identical revision.
        let clone = f.clone();
        assert_eq!(clone.revision(), r0);

        // Reading never bumps.
        let _ = f.params();
        let _ = f.num_values();
        assert_eq!(f.revision(), r0);

        // Every structural mutation takes a globally fresh revision.
        let bb = f.add_block("entry");
        let r1 = f.revision();
        assert_ne!(r1, r0);
        let (i, v) = f.create_inst(InstData {
            opcode: Opcode::Add,
            ty: types.i32(),
            operands: vec![f.param(0), f.param(1)],
            block: bb,
            extra: crate::inst::InstExtra::None,
        });
        f.append_inst(bb, i);
        let r2 = f.revision();
        assert_ne!(r2, r1);
        f.replace_all_uses(v, f.param(0));
        assert_ne!(f.revision(), r2);
        let r3 = f.revision();
        f.remove_inst(i);
        assert_ne!(f.revision(), r3);

        // Removing an already-detached instruction is a no-op.
        let r4 = f.revision();
        f.remove_inst(i);
        assert_eq!(f.revision(), r4);

        // The untouched clone still carries the original revision, and a
        // mutation on it diverges to a value the original never had.
        let mut clone = clone;
        assert_eq!(clone.revision(), r0);
        clone.add_block("entry");
        assert_ne!(clone.revision(), f.revision());
    }

    #[test]
    fn use_map_counts() {
        let (types, mut f) = sample();
        let bb = f.add_block("entry");
        let a = f.param(0);
        let (i1, v1) = f.create_inst(InstData {
            opcode: Opcode::Add,
            ty: types.i32(),
            operands: vec![a, a],
            block: bb,
            extra: crate::inst::InstExtra::None,
        });
        f.append_inst(bb, i1);
        let (i2, _) = f.create_inst(InstData {
            opcode: Opcode::Mul,
            ty: types.i32(),
            operands: vec![v1, a],
            block: bb,
            extra: crate::inst::InstExtra::None,
        });
        f.append_inst(bb, i2);
        let uses = f.compute_uses();
        assert_eq!(uses.count(a), 3);
        assert_eq!(uses.count(v1), 1);
        assert_eq!(uses.of(v1)[0].0, i2);
    }
}
