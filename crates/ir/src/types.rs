//! Type system for the RoLAG IR.
//!
//! Types are interned in a per-module [`TypeStore`] and referred to by
//! [`TypeId`]. Pointers are *opaque* (as in modern LLVM): a pointer type does
//! not know its pointee; instructions that need an element type (`gep`,
//! `load`, `alloca`) carry it explicitly.

use std::collections::HashMap;
use std::fmt;

/// An interned reference to a type inside a [`TypeStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub(crate) u32);

impl TypeId {
    /// Raw index of this type inside its store.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Structural description of a type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum TypeKind {
    /// The absence of a value (function return / `store` result).
    Void,
    /// An integer of the given bit width (1..=128).
    Int(u16),
    /// 32-bit IEEE-754 float.
    Float,
    /// 64-bit IEEE-754 float.
    Double,
    /// Opaque pointer (64-bit).
    Ptr,
    /// Fixed-length array.
    Array { elem: TypeId, len: u64 },
    /// Struct with the given field types (naturally aligned, non-packed).
    Struct { fields: Vec<TypeId> },
    /// Function signature. Used for declarations and call-type equivalence.
    Func { ret: TypeId, params: Vec<TypeId> },
}

/// Interner for [`TypeKind`]s.
///
/// Commonly used types are pre-interned and available through cheap accessor
/// methods such as [`TypeStore::i32`] and [`TypeStore::ptr`].
#[derive(Debug, Clone)]
pub struct TypeStore {
    kinds: Vec<TypeKind>,
    map: HashMap<TypeKind, TypeId>,
    void: TypeId,
    i1: TypeId,
    i8: TypeId,
    i16: TypeId,
    i32: TypeId,
    i64: TypeId,
    float: TypeId,
    double: TypeId,
    ptr: TypeId,
}

impl Default for TypeStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TypeStore {
    /// Creates a store with the common scalar types pre-interned.
    pub fn new() -> Self {
        let mut store = TypeStore {
            kinds: Vec::new(),
            map: HashMap::new(),
            void: TypeId(0),
            i1: TypeId(0),
            i8: TypeId(0),
            i16: TypeId(0),
            i32: TypeId(0),
            i64: TypeId(0),
            float: TypeId(0),
            double: TypeId(0),
            ptr: TypeId(0),
        };
        store.void = store.intern(TypeKind::Void);
        store.i1 = store.intern(TypeKind::Int(1));
        store.i8 = store.intern(TypeKind::Int(8));
        store.i16 = store.intern(TypeKind::Int(16));
        store.i32 = store.intern(TypeKind::Int(32));
        store.i64 = store.intern(TypeKind::Int(64));
        store.float = store.intern(TypeKind::Float);
        store.double = store.intern(TypeKind::Double);
        store.ptr = store.intern(TypeKind::Ptr);
        store
    }

    /// Interns `kind`, returning the canonical [`TypeId`] for it.
    pub fn intern(&mut self, kind: TypeKind) -> TypeId {
        if let Some(&id) = self.map.get(&kind) {
            return id;
        }
        let id = TypeId(self.kinds.len() as u32);
        self.kinds.push(kind.clone());
        self.map.insert(kind, id);
        id
    }

    /// Looks up the structural kind of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this store.
    pub fn kind(&self, id: TypeId) -> &TypeKind {
        &self.kinds[id.index()]
    }

    /// `void`
    pub fn void(&self) -> TypeId {
        self.void
    }
    /// `i1`
    pub fn i1(&self) -> TypeId {
        self.i1
    }
    /// `i8`
    pub fn i8(&self) -> TypeId {
        self.i8
    }
    /// `i16`
    pub fn i16(&self) -> TypeId {
        self.i16
    }
    /// `i32`
    pub fn i32(&self) -> TypeId {
        self.i32
    }
    /// `i64`
    pub fn i64(&self) -> TypeId {
        self.i64
    }
    /// `float`
    pub fn float(&self) -> TypeId {
        self.float
    }
    /// `double`
    pub fn double(&self) -> TypeId {
        self.double
    }
    /// Opaque pointer.
    pub fn ptr(&self) -> TypeId {
        self.ptr
    }

    /// Interns an integer type of the given bit width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 128.
    pub fn int(&mut self, bits: u16) -> TypeId {
        assert!((1..=128).contains(&bits), "invalid integer width {bits}");
        self.intern(TypeKind::Int(bits))
    }

    /// Interns `[len x elem]`.
    pub fn array(&mut self, elem: TypeId, len: u64) -> TypeId {
        self.intern(TypeKind::Array { elem, len })
    }

    /// Interns a struct type with the given fields.
    pub fn struct_(&mut self, fields: Vec<TypeId>) -> TypeId {
        self.intern(TypeKind::Struct { fields })
    }

    /// Interns a function signature type.
    pub fn func(&mut self, ret: TypeId, params: Vec<TypeId>) -> TypeId {
        self.intern(TypeKind::Func { ret, params })
    }

    /// Returns true if `id` is an integer type.
    pub fn is_int(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Int(_))
    }

    /// Returns true if `id` is `float` or `double`.
    pub fn is_float(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Float | TypeKind::Double)
    }

    /// Returns true if `id` is a pointer.
    pub fn is_ptr(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Ptr)
    }

    /// Bit width of an integer type, or `None` for non-integers.
    pub fn int_width(&self, id: TypeId) -> Option<u16> {
        match self.kind(id) {
            TypeKind::Int(w) => Some(*w),
            _ => None,
        }
    }

    /// In-memory size of the type in bytes.
    ///
    /// Integers round up to the next power-of-two byte size (capped at 16);
    /// structs use natural alignment with padding, matching a typical
    /// x86-64 C ABI layout.
    pub fn size_of(&self, id: TypeId) -> u64 {
        match self.kind(id) {
            TypeKind::Void => 0,
            TypeKind::Int(bits) => int_byte_size(*bits),
            TypeKind::Float => 4,
            TypeKind::Double => 8,
            TypeKind::Ptr => 8,
            TypeKind::Array { elem, len } => self.size_of(*elem) * len,
            TypeKind::Struct { fields } => {
                let mut offset = 0u64;
                let mut max_align = 1u64;
                for &f in fields {
                    let align = self.align_of(f);
                    max_align = max_align.max(align);
                    offset = round_up(offset, align) + self.size_of(f);
                }
                round_up(offset, max_align)
            }
            TypeKind::Func { .. } => 0,
        }
    }

    /// Natural alignment of the type in bytes.
    pub fn align_of(&self, id: TypeId) -> u64 {
        match self.kind(id) {
            TypeKind::Void | TypeKind::Func { .. } => 1,
            TypeKind::Int(bits) => int_byte_size(*bits).min(8),
            TypeKind::Float => 4,
            TypeKind::Double => 8,
            TypeKind::Ptr => 8,
            TypeKind::Array { elem, .. } => self.align_of(*elem),
            TypeKind::Struct { fields } => {
                fields.iter().map(|&f| self.align_of(f)).max().unwrap_or(1)
            }
        }
    }

    /// Byte offset of field `index` inside struct type `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a struct or `index` is out of bounds.
    pub fn field_offset(&self, id: TypeId, index: usize) -> u64 {
        match self.kind(id) {
            TypeKind::Struct { fields } => {
                let fields = fields.clone();
                assert!(index < fields.len(), "field index out of bounds");
                let mut offset = 0u64;
                for (i, &f) in fields.iter().enumerate() {
                    offset = round_up(offset, self.align_of(f));
                    if i == index {
                        return offset;
                    }
                    offset += self.size_of(f);
                }
                unreachable!()
            }
            other => panic!("field_offset on non-struct type {other:?}"),
        }
    }

    /// Whether two types are *equivalent* in the paper's sense (§IV-B):
    /// bit-for-bit losslessly bitcastable. Identical types are always
    /// equivalent; distinct scalar types are equivalent when they have the
    /// same bit size and the same register class (int/ptr vs float).
    pub fn equivalent(&self, a: TypeId, b: TypeId) -> bool {
        if a == b {
            return true;
        }
        let class = |t: TypeId| match self.kind(t) {
            TypeKind::Int(_) | TypeKind::Ptr => 0u8,
            TypeKind::Float | TypeKind::Double => 1,
            _ => 2,
        };
        class(a) == class(b) && class(a) != 2 && self.size_of(a) == self.size_of(b)
    }

    /// Number of interned types.
    pub fn num_types(&self) -> usize {
        self.kinds.len()
    }

    /// Interns every type of `other` with index `>= base_len` into `self`,
    /// returning the full old→new id mapping for `other`'s id space
    /// (identity below `base_len`).
    ///
    /// Intended for merging a worker store back into the store it was
    /// cloned from: `base_len` is the clone-time type count, so ids below
    /// it mean the same type in both stores. Relies on the interner's
    /// append-only invariant that a compound kind only references ids
    /// interned before it.
    pub fn absorb(&mut self, other: &TypeStore, base_len: usize) -> Vec<TypeId> {
        let mut map: Vec<TypeId> = (0..other.kinds.len() as u32).map(TypeId).collect();
        for i in base_len..other.kinds.len() {
            let remapped = match &other.kinds[i] {
                TypeKind::Array { elem, len } => TypeKind::Array {
                    elem: map[elem.index()],
                    len: *len,
                },
                TypeKind::Struct { fields } => TypeKind::Struct {
                    fields: fields.iter().map(|f| map[f.index()]).collect(),
                },
                TypeKind::Func { ret, params } => TypeKind::Func {
                    ret: map[ret.index()],
                    params: params.iter().map(|p| map[p.index()]).collect(),
                },
                scalar => scalar.clone(),
            };
            map[i] = self.intern(remapped);
        }
        map
    }

    /// Renders `id` as IR text (e.g. `i32`, `[4 x i32]`).
    pub fn display(&self, id: TypeId) -> String {
        match self.kind(id) {
            TypeKind::Void => "void".to_string(),
            TypeKind::Int(w) => format!("i{w}"),
            TypeKind::Float => "float".to_string(),
            TypeKind::Double => "double".to_string(),
            TypeKind::Ptr => "ptr".to_string(),
            TypeKind::Array { elem, len } => {
                format!("[{} x {}]", len, self.display(*elem))
            }
            TypeKind::Struct { fields } => {
                let fields: Vec<String> = fields.iter().map(|&f| self.display(f)).collect();
                format!("{{ {} }}", fields.join(", "))
            }
            TypeKind::Func { ret, params } => {
                let params: Vec<String> = params.iter().map(|&p| self.display(p)).collect();
                format!("fn({}) -> {}", params.join(", "), self.display(*ret))
            }
        }
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

fn int_byte_size(bits: u16) -> u64 {
    let bytes = (bits as u64).div_ceil(8);
    bytes.next_power_of_two().min(16)
}

fn round_up(value: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (value + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut store = TypeStore::new();
        let a = store.int(32);
        let b = store.int(32);
        assert_eq!(a, b);
        assert_eq!(a, store.i32());
    }

    #[test]
    fn distinct_types_get_distinct_ids() {
        let mut store = TypeStore::new();
        assert_ne!(store.int(32), store.int(64));
        assert_ne!(store.float(), store.double());
    }

    #[test]
    fn array_sizes() {
        let mut store = TypeStore::new();
        let arr = store.array(store.i32(), 10);
        assert_eq!(store.size_of(arr), 40);
        assert_eq!(store.align_of(arr), 4);
    }

    #[test]
    fn struct_layout_with_padding() {
        let mut store = TypeStore::new();
        // { i8, i32, i8 } -> offsets 0, 4, 8; size rounded to 12.
        let s = store.struct_(vec![store.i8(), store.i32(), store.i8()]);
        assert_eq!(store.field_offset(s, 0), 0);
        assert_eq!(store.field_offset(s, 1), 4);
        assert_eq!(store.field_offset(s, 2), 8);
        assert_eq!(store.size_of(s), 12);
        assert_eq!(store.align_of(s), 4);
    }

    #[test]
    fn odd_integer_widths_round_up() {
        let mut store = TypeStore::new();
        let i24 = store.int(24);
        assert_eq!(store.size_of(i24), 4);
        let i65 = store.int(65);
        assert_eq!(store.size_of(i65), 16);
    }

    #[test]
    fn equivalence_follows_bit_size_and_class() {
        let mut store = TypeStore::new();
        assert!(store.equivalent(store.i64(), store.ptr()));
        assert!(store.equivalent(store.i32(), store.i32()));
        let i24 = store.int(24);
        // i24 occupies 4 bytes but is not the same bit size as i32; we still
        // treat byte-size equality as the equivalence criterion, like a
        // lossless bitcast through memory.
        assert!(store.equivalent(i24, store.i32()));
        assert!(!store.equivalent(store.i32(), store.i64()));
        assert!(!store.equivalent(store.float(), store.i32()));
        assert!(!store.equivalent(store.float(), store.double()));
    }

    #[test]
    fn absorb_merges_worker_types() {
        let mut base = TypeStore::new();
        let base_len = base.num_types();
        let mut worker = base.clone();
        // Worker interns new compound types in its own order.
        let w_arr = worker.array(worker.i32(), 4);
        let w_nest = worker.array(w_arr, 2);
        // Base meanwhile interned something else, shifting indices.
        let b_other = base.array(base.i64(), 7);
        let map = base.absorb(&worker, base_len);
        // Pre-existing ids are identity-mapped.
        assert_eq!(map[base.i32().index()], base.i32());
        // Worker types land in base with correct structure.
        let merged_arr = map[w_arr.index()];
        let merged_nest = map[w_nest.index()];
        assert_eq!(base.display(merged_arr), "[4 x i32]");
        assert_eq!(base.display(merged_nest), "[2 x [4 x i32]]");
        assert_ne!(merged_arr, b_other);
        // Absorbing twice is idempotent.
        let map2 = base.absorb(&worker, base_len);
        assert_eq!(map, map2);
    }

    #[test]
    fn display_forms() {
        let mut store = TypeStore::new();
        let arr = store.array(store.i8(), 3);
        let s = store.struct_(vec![store.i32(), arr]);
        assert_eq!(store.display(s), "{ i32, [3 x i8] }");
        let f = store.func(store.void(), vec![store.ptr()]);
        assert_eq!(store.display(f), "fn(ptr) -> void");
    }
}
