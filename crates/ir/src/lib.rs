//! # rolag-ir
//!
//! SSA intermediate representation for the RoLAG loop-rolling reproduction
//! (CGO 2022, "Loop Rolling for Code Size Reduction").
//!
//! This crate is the project's stand-in for LLVM IR: a typed SSA IR with
//! basic blocks, phis, `gep`-style address arithmetic, direct calls with
//! memory-effect annotations, and opaque pointers. It ships with:
//!
//! * arena-based [`Module`]/[`Function`] data structures ([`module`],
//!   [`function`]);
//! * an ergonomic [`builder`];
//! * a textual [`printer`] and round-tripping [`parser`];
//! * a structural/type/dominance [`verify`]er;
//! * constant folding ([`fold`]) and dead-code elimination ([`dce`]);
//! * a reference [`interp`]reter used as the behavioural oracle by the
//!   transformation crates;
//! * a miniature [`filecheck`] matcher for golden tests over printed IR.
//!
//! ## Example
//!
//! ```
//! use rolag_ir::builder::FuncBuilder;
//! use rolag_ir::interp::{Interpreter, IValue};
//! use rolag_ir::module::Module;
//!
//! let mut module = Module::new("demo");
//! let i32t = module.types.i32();
//! let mut fb = FuncBuilder::new(&mut module, "double_plus_one", vec![i32t], i32t);
//! let x = fb.param(0);
//! fb.block("entry");
//! fb.ins(|b| {
//!     let two = b.i32_const(2);
//!     let one = b.i32_const(1);
//!     let d = b.mul(x, two);
//!     let r = b.add(d, one);
//!     b.ret(Some(r));
//! });
//! fb.finish();
//!
//! let mut interp = Interpreter::new(&module);
//! let out = interp.run("double_plus_one", &[IValue::Int(20)]).unwrap();
//! assert_eq!(out.ret, IValue::Int(41));
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod builder;
pub mod dce;
pub mod filecheck;
pub mod fold;
pub mod function;
pub mod inst;
pub mod interp;
pub mod module;
pub mod parser;
pub mod printer;
pub mod serialization;
pub mod types;
pub mod value;
pub mod verify;

pub use block::{BlockData, BlockId};
pub use builder::{Builder, FuncBuilder};
pub use function::{Effects, Function, SnapshotToken, SpeculationLog, UseMap};
pub use inst::{FloatPredicate, InstData, InstExtra, InstId, IntPredicate, NeutralElement, Opcode};
pub use module::{GlobalData, GlobalInit, Module};
pub use serialization::{decode_module, encode_module, DecodeError};
pub use types::{TypeId, TypeKind, TypeStore};
pub use value::{FuncId, GlobalId, ValueDef, ValueId};
