//! A miniature FileCheck-style matcher for golden tests over printed IR.
//!
//! Directives (one per line of the check script):
//!
//! * `CHECK: <substr>` — some line at or after the current position
//!   contains `<substr>`;
//! * `CHECK-NEXT: <substr>` — the immediately following line contains it;
//! * `CHECK-NOT: <substr>` — no line between the previous match and the
//!   next positive match (or the end) contains it;
//! * `CHECK-COUNT-<n>: <substr>` — exactly `n` lines of the *whole input*
//!   contain it (position does not advance).
//!
//! Matching is substring-based after whitespace normalization (runs of
//! spaces collapse), which keeps checks robust against formatting drift.
//!
//! Every failure carries the 1-based line and column of the offending
//! directive in the script, and [`CheckError::render`] produces a
//! caret diagnostic in the same `origin:line:col: error:` shape the
//! pipeline-spec parser uses — so a failing lit golden points straight
//! at the directive that missed.

/// Outcome of a check run. Every variant records the 1-based `line` and
/// `col` of the directive in the check script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A `CHECK`/`CHECK-NEXT` directive found no matching line.
    NotFound {
        /// The directive text.
        directive: String,
        /// 0-based index of the input line where the search started.
        from_line: usize,
        /// 1-based script line of the directive.
        line: usize,
        /// 1-based script column of the directive.
        col: usize,
    },
    /// A `CHECK-NOT` pattern appeared in the forbidden region.
    Forbidden {
        /// The directive text.
        directive: String,
        /// The offending input line.
        input_line: String,
        /// 1-based script line of the directive.
        line: usize,
        /// 1-based script column of the directive.
        col: usize,
    },
    /// A `CHECK-COUNT-n` directive counted a different number.
    WrongCount {
        /// The directive text.
        directive: String,
        /// Expected occurrences.
        expected: usize,
        /// Found occurrences.
        found: usize,
        /// 1-based script line of the directive.
        line: usize,
        /// 1-based script column of the directive.
        col: usize,
    },
    /// A malformed directive in the script.
    BadDirective {
        /// The directive text.
        directive: String,
        /// 1-based script line of the directive.
        line: usize,
        /// 1-based script column of the directive.
        col: usize,
    },
}

impl CheckError {
    /// 1-based script line of the failed directive.
    pub fn line(&self) -> usize {
        match self {
            CheckError::NotFound { line, .. }
            | CheckError::Forbidden { line, .. }
            | CheckError::WrongCount { line, .. }
            | CheckError::BadDirective { line, .. } => *line,
        }
    }

    /// 1-based script column of the failed directive.
    pub fn col(&self) -> usize {
        match self {
            CheckError::NotFound { col, .. }
            | CheckError::Forbidden { col, .. }
            | CheckError::WrongCount { col, .. }
            | CheckError::BadDirective { col, .. } => *col,
        }
    }

    /// The failure message without position information (the body of
    /// [`std::fmt::Display`] and [`CheckError::render`]).
    pub fn message(&self) -> String {
        match self {
            CheckError::NotFound {
                directive,
                from_line,
                ..
            } => format!("no match for {directive:?} after input line {from_line}"),
            CheckError::Forbidden {
                directive,
                input_line,
                ..
            } => format!("{directive:?} matched forbidden line {input_line:?}"),
            CheckError::WrongCount {
                directive,
                expected,
                found,
                ..
            } => format!("{directive:?}: expected {expected}, found {found}"),
            CheckError::BadDirective { directive, .. } => format!("bad directive {directive:?}"),
        }
    }

    /// A caret diagnostic pointing at the directive in `script`, in the
    /// pipeline-spec parser's `origin:line:col: error:` shape:
    ///
    /// ```text
    /// tests/lit/sum.rir:7:3: error: no match for "CHECK: rolag.loop" after input line 4
    ///   ; CHECK: rolag.loop
    ///     ^
    /// ```
    pub fn render(&self, origin: &str, script: &str) -> String {
        let raw = script.lines().nth(self.line() - 1).unwrap_or("");
        let pad = " ".repeat(self.col().saturating_sub(1));
        format!(
            "{origin}:{}:{}: error: {}\n  {raw}\n  {pad}^",
            self.line(),
            self.col(),
            self.message()
        )
    }
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line(), self.col(), self.message())
    }
}

impl std::error::Error for CheckError {}

fn normalize(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// A `CHECK-NOT` pattern pending its closing positive match, with the
/// script position of the directive that introduced it.
struct PendingNot {
    pattern: String,
    line: usize,
    col: usize,
}

/// Runs `script` against `input`.
///
/// # Errors
///
/// Returns the first failed directive, carrying its script line/column.
pub fn filecheck(input: &str, script: &str) -> Result<(), CheckError> {
    let lines: Vec<String> = input.lines().map(normalize).collect();
    let mut pos = 0usize; // next line index eligible for matching
    let mut pending_nots: Vec<PendingNot> = Vec::new();

    let check_nots =
        |nots: &[PendingNot], lines: &[String], lo: usize, hi: usize| -> Result<(), CheckError> {
            for not in nots {
                for line in &lines[lo..hi.min(lines.len())] {
                    if line.contains(not.pattern.as_str()) {
                        return Err(CheckError::Forbidden {
                            directive: format!("CHECK-NOT: {}", not.pattern),
                            input_line: line.clone(),
                            line: not.line,
                            col: not.col,
                        });
                    }
                }
            }
            Ok(())
        };

    for (line_idx, raw) in script.lines().enumerate() {
        let directive = raw.trim();
        if directive.is_empty() || directive.starts_with("//") {
            continue;
        }
        // 1-based position of the directive within the raw script line.
        let line_no = line_idx + 1;
        let col_no = raw.chars().take_while(|c| c.is_whitespace()).count() + 1;
        if let Some(pat) = directive.strip_prefix("CHECK-NEXT:") {
            let pat = normalize(pat);
            check_nots(&pending_nots, &lines, pos, pos)?;
            pending_nots.clear();
            if pos >= lines.len() || !lines[pos].contains(pat.as_str()) {
                return Err(CheckError::NotFound {
                    directive: directive.to_string(),
                    from_line: pos,
                    line: line_no,
                    col: col_no,
                });
            }
            pos += 1;
        } else if let Some(pat) = directive.strip_prefix("CHECK-NOT:") {
            pending_nots.push(PendingNot {
                pattern: normalize(pat),
                line: line_no,
                col: col_no,
            });
        } else if let Some(rest) = directive.strip_prefix("CHECK-COUNT-") {
            let bad = || CheckError::BadDirective {
                directive: directive.to_string(),
                line: line_no,
                col: col_no,
            };
            let (n, pat) = rest.split_once(':').ok_or_else(bad)?;
            let expected: usize = n.trim().parse().map_err(|_| bad())?;
            let pat = normalize(pat);
            let found = lines.iter().filter(|l| l.contains(pat.as_str())).count();
            if found != expected {
                return Err(CheckError::WrongCount {
                    directive: directive.to_string(),
                    expected,
                    found,
                    line: line_no,
                    col: col_no,
                });
            }
        } else if let Some(pat) = directive.strip_prefix("CHECK:") {
            let pat = normalize(pat);
            let hit = lines[pos..]
                .iter()
                .position(|l| l.contains(pat.as_str()))
                .map(|k| pos + k);
            match hit {
                Some(k) => {
                    check_nots(&pending_nots, &lines, pos, k)?;
                    pending_nots.clear();
                    pos = k + 1;
                }
                None => {
                    return Err(CheckError::NotFound {
                        directive: directive.to_string(),
                        from_line: pos,
                        line: line_no,
                        col: col_no,
                    })
                }
            }
        } else {
            return Err(CheckError::BadDirective {
                directive: directive.to_string(),
                line: line_no,
                col: col_no,
            });
        }
    }
    check_nots(&pending_nots, &lines, pos, lines.len())?;
    Ok(())
}

/// Panicking wrapper for use in tests: prints the full input on failure.
///
/// # Panics
///
/// Panics with a diagnostic when any directive fails.
pub fn assert_filecheck(input: &str, script: &str) {
    if let Err(e) = filecheck(input, script) {
        panic!(
            "FileCheck failed: {}\n--- input ---\n{input}\n--- script ---\n{script}",
            e.render("<script>", script)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INPUT: &str = "\
func @f() {
entry:
  %1 = add i32 %p0, i32 1
  %2 = mul i32 %1, %1
  ret %2
}
";

    #[test]
    fn check_matches_in_order() {
        filecheck(INPUT, "CHECK: func @f\nCHECK: add i32\nCHECK: ret %2").unwrap();
        // Out of order fails.
        assert!(matches!(
            filecheck(INPUT, "CHECK: ret %2\nCHECK: add i32"),
            Err(CheckError::NotFound { .. })
        ));
    }

    #[test]
    fn check_next_requires_adjacency() {
        filecheck(INPUT, "CHECK: add i32\nCHECK-NEXT: mul i32").unwrap();
        assert!(matches!(
            filecheck(INPUT, "CHECK: entry:\nCHECK-NEXT: mul i32"),
            Err(CheckError::NotFound { .. })
        ));
    }

    #[test]
    fn check_not_scans_the_gap() {
        filecheck(INPUT, "CHECK: entry:\nCHECK-NOT: sub\nCHECK: ret").unwrap();
        assert!(matches!(
            filecheck(INPUT, "CHECK: entry:\nCHECK-NOT: mul\nCHECK: ret"),
            Err(CheckError::Forbidden { .. })
        ));
        // A trailing CHECK-NOT scans to the end.
        assert!(matches!(
            filecheck(INPUT, "CHECK: entry:\nCHECK-NOT: ret"),
            Err(CheckError::Forbidden { .. })
        ));
    }

    #[test]
    fn check_count_counts() {
        filecheck(INPUT, "CHECK-COUNT-2: i32").unwrap_or_else(|e| panic!("{e}"));
        assert!(matches!(
            filecheck(INPUT, "CHECK-COUNT-3: add"),
            Err(CheckError::WrongCount { found: 1, .. })
        ));
    }

    #[test]
    fn whitespace_is_normalized() {
        filecheck(INPUT, "CHECK: %1   =   add").unwrap();
    }

    #[test]
    fn bad_directives_error() {
        assert!(matches!(
            filecheck(INPUT, "CHEK: add"),
            Err(CheckError::BadDirective { .. })
        ));
        assert!(matches!(
            filecheck(INPUT, "CHECK-COUNT-x: add"),
            Err(CheckError::BadDirective { .. })
        ));
    }

    #[test]
    fn errors_carry_script_line_and_column() {
        // Directive on script line 3, indented two spaces -> column 3.
        let script = "CHECK: func @f\n\n  CHECK: sub i64";
        let err = filecheck(INPUT, script).unwrap_err();
        assert_eq!((err.line(), err.col()), (3, 3));

        // A failing CHECK-NOT points at the NOT directive, not the
        // positive match that closed its region.
        let script = "CHECK: entry:\nCHECK-NOT: mul\nCHECK: ret";
        let err = filecheck(INPUT, script).unwrap_err();
        assert_eq!((err.line(), err.col()), (2, 1));
    }

    #[test]
    fn render_points_a_caret_at_the_directive() {
        let script = "CHECK: func @f\n  CHECK: sub i64";
        let err = filecheck(INPUT, script).unwrap_err();
        let rendered = err.render("golden.rir", script);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(
            lines[0],
            "golden.rir:2:3: error: no match for \"CHECK: sub i64\" after input line 1"
        );
        assert_eq!(lines[1], "    CHECK: sub i64");
        assert_eq!(lines[2], "    ^", "caret sits under the directive");
    }
}
