//! A miniature FileCheck-style matcher for golden tests over printed IR.
//!
//! Directives (one per line of the check script):
//!
//! * `CHECK: <substr>` — some line at or after the current position
//!   contains `<substr>`;
//! * `CHECK-NEXT: <substr>` — the immediately following line contains it;
//! * `CHECK-NOT: <substr>` — no line between the previous match and the
//!   next positive match (or the end) contains it;
//! * `CHECK-COUNT-<n>: <substr>` — exactly `n` lines of the *whole input*
//!   contain it (position does not advance).
//!
//! Matching is substring-based after whitespace normalization (runs of
//! spaces collapse), which keeps checks robust against formatting drift.

/// Outcome of a check run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A `CHECK`/`CHECK-NEXT` directive found no matching line.
    NotFound {
        /// The directive text.
        directive: String,
        /// 0-based index of the line where the search started.
        from_line: usize,
    },
    /// A `CHECK-NOT` pattern appeared in the forbidden region.
    Forbidden {
        /// The directive text.
        directive: String,
        /// The offending input line.
        line: String,
    },
    /// A `CHECK-COUNT-n` directive counted a different number.
    WrongCount {
        /// The directive text.
        directive: String,
        /// Expected occurrences.
        expected: usize,
        /// Found occurrences.
        found: usize,
    },
    /// A malformed directive in the script.
    BadDirective(String),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::NotFound {
                directive,
                from_line,
            } => write!(f, "no match for {directive:?} after line {from_line}"),
            CheckError::Forbidden { directive, line } => {
                write!(f, "{directive:?} matched forbidden line {line:?}")
            }
            CheckError::WrongCount {
                directive,
                expected,
                found,
            } => write!(f, "{directive:?}: expected {expected}, found {found}"),
            CheckError::BadDirective(d) => write!(f, "bad directive {d:?}"),
        }
    }
}

impl std::error::Error for CheckError {}

fn normalize(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Runs `script` against `input`.
///
/// # Errors
///
/// Returns the first failed directive.
pub fn filecheck(input: &str, script: &str) -> Result<(), CheckError> {
    let lines: Vec<String> = input.lines().map(normalize).collect();
    let mut pos = 0usize; // next line index eligible for matching
    let mut pending_nots: Vec<String> = Vec::new();

    let check_nots =
        |nots: &[String], lines: &[String], lo: usize, hi: usize| -> Result<(), CheckError> {
            for not in nots {
                for line in &lines[lo..hi.min(lines.len())] {
                    if line.contains(not.as_str()) {
                        return Err(CheckError::Forbidden {
                            directive: format!("CHECK-NOT: {not}"),
                            line: line.clone(),
                        });
                    }
                }
            }
            Ok(())
        };

    for raw in script.lines() {
        let directive = raw.trim();
        if directive.is_empty() || directive.starts_with("//") {
            continue;
        }
        if let Some(pat) = directive.strip_prefix("CHECK-NEXT:") {
            let pat = normalize(pat);
            check_nots(&pending_nots, &lines, pos, pos)?;
            pending_nots.clear();
            if pos >= lines.len() || !lines[pos].contains(pat.as_str()) {
                return Err(CheckError::NotFound {
                    directive: directive.to_string(),
                    from_line: pos,
                });
            }
            pos += 1;
        } else if let Some(pat) = directive.strip_prefix("CHECK-NOT:") {
            pending_nots.push(normalize(pat));
        } else if let Some(rest) = directive.strip_prefix("CHECK-COUNT-") {
            let (n, pat) = rest
                .split_once(':')
                .ok_or_else(|| CheckError::BadDirective(directive.to_string()))?;
            let expected: usize = n
                .trim()
                .parse()
                .map_err(|_| CheckError::BadDirective(directive.to_string()))?;
            let pat = normalize(pat);
            let found = lines.iter().filter(|l| l.contains(pat.as_str())).count();
            if found != expected {
                return Err(CheckError::WrongCount {
                    directive: directive.to_string(),
                    expected,
                    found,
                });
            }
        } else if let Some(pat) = directive.strip_prefix("CHECK:") {
            let pat = normalize(pat);
            let hit = lines[pos..]
                .iter()
                .position(|l| l.contains(pat.as_str()))
                .map(|k| pos + k);
            match hit {
                Some(k) => {
                    check_nots(&pending_nots, &lines, pos, k)?;
                    pending_nots.clear();
                    pos = k + 1;
                }
                None => {
                    return Err(CheckError::NotFound {
                        directive: directive.to_string(),
                        from_line: pos,
                    })
                }
            }
        } else {
            return Err(CheckError::BadDirective(directive.to_string()));
        }
    }
    check_nots(&pending_nots, &lines, pos, lines.len())?;
    Ok(())
}

/// Panicking wrapper for use in tests: prints the full input on failure.
///
/// # Panics
///
/// Panics with a diagnostic when any directive fails.
pub fn assert_filecheck(input: &str, script: &str) {
    if let Err(e) = filecheck(input, script) {
        panic!("FileCheck failed: {e}\n--- input ---\n{input}\n--- script ---\n{script}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INPUT: &str = "\
func @f() {
entry:
  %1 = add i32 %p0, i32 1
  %2 = mul i32 %1, %1
  ret %2
}
";

    #[test]
    fn check_matches_in_order() {
        filecheck(INPUT, "CHECK: func @f\nCHECK: add i32\nCHECK: ret %2").unwrap();
        // Out of order fails.
        assert!(matches!(
            filecheck(INPUT, "CHECK: ret %2\nCHECK: add i32"),
            Err(CheckError::NotFound { .. })
        ));
    }

    #[test]
    fn check_next_requires_adjacency() {
        filecheck(INPUT, "CHECK: add i32\nCHECK-NEXT: mul i32").unwrap();
        assert!(matches!(
            filecheck(INPUT, "CHECK: entry:\nCHECK-NEXT: mul i32"),
            Err(CheckError::NotFound { .. })
        ));
    }

    #[test]
    fn check_not_scans_the_gap() {
        filecheck(INPUT, "CHECK: entry:\nCHECK-NOT: sub\nCHECK: ret").unwrap();
        assert!(matches!(
            filecheck(INPUT, "CHECK: entry:\nCHECK-NOT: mul\nCHECK: ret"),
            Err(CheckError::Forbidden { .. })
        ));
        // A trailing CHECK-NOT scans to the end.
        assert!(matches!(
            filecheck(INPUT, "CHECK: entry:\nCHECK-NOT: ret"),
            Err(CheckError::Forbidden { .. })
        ));
    }

    #[test]
    fn check_count_counts() {
        filecheck(INPUT, "CHECK-COUNT-2: i32").unwrap_or_else(|e| panic!("{e}"));
        assert!(matches!(
            filecheck(INPUT, "CHECK-COUNT-3: add"),
            Err(CheckError::WrongCount { found: 1, .. })
        ));
    }

    #[test]
    fn whitespace_is_normalized() {
        filecheck(INPUT, "CHECK: %1   =   add").unwrap();
    }

    #[test]
    fn bad_directives_error() {
        assert!(matches!(
            filecheck(INPUT, "CHEK: add"),
            Err(CheckError::BadDirective(_))
        ));
        assert!(matches!(
            filecheck(INPUT, "CHECK-COUNT-x: add"),
            Err(CheckError::BadDirective(_))
        ));
    }
}
