//! Basic blocks.

use crate::inst::InstId;

/// Index of a basic block in its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Reconstructs a block id from a raw index.
    pub fn from_index(index: usize) -> Self {
        BlockId(index as u32)
    }
}

/// A basic block: a label and an ordered instruction list whose last
/// instruction is the terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockData {
    /// Label, unique within the function.
    pub name: String,
    /// Ordered instructions; the terminator is last.
    pub insts: Vec<InstId>,
}

impl BlockData {
    /// Creates an empty block with the given label.
    pub fn new(name: impl Into<String>) -> Self {
        BlockData {
            name: name.into(),
            insts: Vec::new(),
        }
    }

    /// Last instruction, if any (the terminator once the block is complete).
    pub fn last_inst(&self) -> Option<InstId> {
        self.insts.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_basics() {
        let mut b = BlockData::new("entry");
        assert_eq!(b.last_inst(), None);
        b.insts.push(InstId(0));
        b.insts.push(InstId(1));
        assert_eq!(b.last_inst(), Some(InstId(1)));
        assert_eq!(b.name, "entry");
    }
}
