//! SSA values.
//!
//! Every operand in the IR is a [`ValueId`] indexing a per-function value
//! table. A value is either the result of an instruction, a function
//! parameter, an interned constant, the address of a global, or `undef`.

use crate::inst::InstId;
use crate::types::TypeId;

/// Index of a value in its function's value table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub(crate) u32);

impl ValueId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Reconstructs a value id from a raw index.
    pub fn from_index(index: usize) -> Self {
        ValueId(index as u32)
    }
}

/// Index of a global variable in the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub(crate) u32);

impl GlobalId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Reconstructs a global id from a raw index.
    pub fn from_index(index: usize) -> Self {
        GlobalId(index as u32)
    }
}

/// Index of a function in the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub(crate) u32);

impl FuncId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Reconstructs a function id from a raw index.
    pub fn from_index(index: usize) -> Self {
        FuncId(index as u32)
    }
}

/// What a value *is*.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum ValueDef {
    /// Result of an instruction.
    Inst(InstId),
    /// The `index`-th parameter of the enclosing function.
    Param { index: u32, ty: TypeId },
    /// Integer constant. `value` holds the sign-extended bit pattern.
    ConstInt { ty: TypeId, value: i64 },
    /// Floating-point constant, stored as raw IEEE-754 bits of the `f64`
    /// superset representation.
    ConstFloat { ty: TypeId, bits: u64 },
    /// Address of a module global (type `ptr`).
    GlobalAddr(GlobalId),
    /// Address of a module function (type `ptr`).
    FuncAddr(FuncId),
    /// Undefined value of the given type.
    Undef(TypeId),
}

impl ValueDef {
    /// Returns the instruction id if this value is an instruction result.
    pub fn as_inst(&self) -> Option<InstId> {
        match self {
            ValueDef::Inst(id) => Some(*id),
            _ => None,
        }
    }

    /// Returns the integer constant payload, if any.
    pub fn as_const_int(&self) -> Option<i64> {
        match self {
            ValueDef::ConstInt { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// True for constants, globals, and function addresses — values that
    /// need no computation.
    pub fn is_constant(&self) -> bool {
        matches!(
            self,
            ValueDef::ConstInt { .. }
                | ValueDef::ConstFloat { .. }
                | ValueDef::GlobalAddr(_)
                | ValueDef::FuncAddr(_)
                | ValueDef::Undef(_)
        )
    }
}

/// Interning key for function-local constants.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum ConstKey {
    Int(TypeId, i64),
    Float(TypeId, u64),
    Global(GlobalId),
    Func(FuncId),
    Undef(TypeId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_def_classification() {
        let c = ValueDef::ConstInt {
            ty: TypeId(1),
            value: 7,
        };
        assert!(c.is_constant());
        assert_eq!(c.as_const_int(), Some(7));
        assert_eq!(c.as_inst(), None);

        let p = ValueDef::Param {
            index: 0,
            ty: TypeId(1),
        };
        assert!(!p.is_constant());
    }

    #[test]
    fn id_round_trips() {
        assert_eq!(ValueId::from_index(42).index(), 42);
        assert_eq!(GlobalId::from_index(3).index(), 3);
        assert_eq!(FuncId::from_index(9).index(), 9);
    }
}
