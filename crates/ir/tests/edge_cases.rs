//! Edge-case tests for the IR substrate: parser/printer corners, interpreter
//! faults and casts, and regressions for bugs found during development.

use rolag_ir::interp::{ExecError, IValue, Interpreter};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::verify::verify_module;

fn run(text: &str, entry: &str, args: &[IValue]) -> Result<IValue, ExecError> {
    let m = parse_module(text).unwrap();
    let mut i = Interpreter::new(&m);
    i.run(entry, args).map(|o| o.ret)
}

#[test]
fn bytes_globals_round_trip() {
    let text = "module \"b\"\nglobal @raw : [4 x i8] = bytes [222, 173, 190, 239]\n";
    let m = parse_module(text).unwrap();
    let printed = print_module(&m);
    assert!(printed.contains("bytes [222, 173, 190, 239]"));
    let m2 = parse_module(&printed).unwrap();
    assert_eq!(print_module(&m2), printed);

    // The interpreter sees the raw bytes.
    let text2 = format!(
        "{text}func @f() -> i32 {{\nentry:\n  %p = gep i8, @raw, i64 1\n  %v = load i8, %p\n  %w = zext i32 %v\n  ret %w\n}}\n"
    );
    assert_eq!(run(&text2, "f", &[]), Ok(IValue::Int(173)));
}

#[test]
fn undef_operands_round_trip() {
    let text =
        "module \"u\"\nfunc @f() -> i32 {\nentry:\n  %1 = add i32 i32 undef, i32 1\n  ret %1\n}\n";
    let m = parse_module(text).unwrap();
    let printed = print_module(&m);
    assert!(printed.contains("i32 undef"));
    // Undef evaluates as 0 in the interpreter (a fixed, deterministic choice).
    assert_eq!(run(text, "f", &[]), Ok(IValue::Int(1)));
}

#[test]
fn effects_annotations_round_trip() {
    for eff in ["readnone", "readonly", "readwrite"] {
        let text = format!("module \"e\"\ndeclare @x(i32 %p0) -> i32 {eff}\n");
        let m = parse_module(&text).unwrap();
        assert!(print_module(&m).contains(eff));
    }
}

#[test]
fn division_by_zero_faults() {
    let text = "module \"d\"\nfunc @f(i32 %p0) -> i32 {\nentry:\n  %1 = sdiv i32 i32 7, %p0\n  ret %1\n}\n";
    assert_eq!(run(text, "f", &[IValue::Int(0)]), Err(ExecError::DivByZero));
    assert_eq!(run(text, "f", &[IValue::Int(2)]), Ok(IValue::Int(3)));
}

#[test]
fn shift_amounts_mask_to_width() {
    // Shifting an i32 by 33 behaves like shifting by 1 (x86 semantics).
    let text = "module \"s\"\nfunc @f(i32 %p0) -> i32 {\nentry:\n  %1 = shl i32 %p0, i32 33\n  ret %1\n}\n";
    assert_eq!(run(text, "f", &[IValue::Int(5)]), Ok(IValue::Int(10)));
}

#[test]
fn sext_zext_trunc_chain() {
    let text = r#"
module "c"
func @f(i8 %p0) -> i64 {
entry:
  %z = zext i32 %p0
  %s = sext i64 %p0
  %zz = zext i64 %z
  %sum = add i64 %s, %zz
  ret %sum
}
"#;
    // p0 = -1 (i8): sext -> -1, zext(i32) -> 255 -> zext(i64) 255.
    assert_eq!(run(text, "f", &[IValue::Int(-1)]), Ok(IValue::Int(254)));
}

#[test]
fn float_rounds_through_f32() {
    let text = r#"
module "f"
func @f() -> i1 {
entry:
  %a = fadd float float 0.1, float 0.2
  %b = fadd double double 0.1, double 0.2
  %aw = fpext double %a
  %c = fcmp oeq %aw, %b
  ret %c
}
"#;
    // 0.1f + 0.2f != 0.1 + 0.2 exactly.
    assert_eq!(run(text, "f", &[]), Ok(IValue::Int(0)));
}

#[test]
fn negative_gep_indices_work() {
    let text = r#"
module "g"
global @a : [8 x i32] = ints i32 [10, 20, 30, 40, 50, 60, 70, 80]
func @f() -> i32 {
entry:
  %end = gep i32, @a, i64 7
  %p = gep i32, %end, i64 -2
  %v = load i32, %p
  ret %v
}
"#;
    assert_eq!(run(text, "f", &[]), Ok(IValue::Int(60)));
}

#[test]
fn out_of_bounds_faults_cleanly() {
    let text = r#"
module "o"
global @a : [2 x i32] = zero
func @f() -> i32 {
entry:
  %p = gep i32, @a, i64 1000000
  %v = load i32, %p
  ret %v
}
"#;
    assert!(matches!(
        run(text, "f", &[]),
        Err(ExecError::OutOfBounds { .. })
    ));
}

#[test]
fn recursive_internal_calls() {
    let text = r#"
module "r"
func @fact(i64 %p0) -> i64 {
entry:
  %c = icmp sle %p0, i64 1
  condbr %c, base, rec
base:
  ret i64 1
rec:
  %n1 = sub i64 %p0, i64 1
  %f = call i64 @fact(%n1)
  %r = mul i64 %p0, %f
  ret %r
}
"#;
    assert_eq!(
        run(text, "fact", &[IValue::Int(10)]),
        Ok(IValue::Int(3628800))
    );
}

// --- regressions for bugs found during development ------------------------

/// The constant folder used to evaluate division/remainder/shift on the raw
/// 64-bit payload of narrow constants, disagreeing with the interpreter
/// (found by `proptest_ir::folder_matches_interpreter_on_binops`).
#[test]
fn regression_fold_normalizes_narrow_constants() {
    use rolag_ir::fold::eval_int_binop;
    use rolag_ir::{Opcode, TypeStore};
    let types = TypeStore::new();
    let i8t = types.i8();
    // 300 as an i8 is 44; 300 % 7 would be 6, but 44 % 7 = 2.
    assert_eq!(eval_int_binop(&types, Opcode::SRem, i8t, 300, 7), Some(2));
    // i64::MIN / -1 overflows: refuse to fold.
    let i64t = types.i64();
    assert_eq!(
        eval_int_binop(&types, Opcode::SDiv, i64t, i64::MIN, -1),
        None
    );
}

/// `check_equivalence` must ignore constant data that only the transformed
/// module has (rolled modules gain rodata arrays).
#[test]
fn regression_equivalence_ignores_new_rodata() {
    let a = parse_module(
        "module \"a\"\nglobal @g : [2 x i32] = zero\nfunc @f() -> void {\nentry:\n  store i32 1, @g\n  ret\n}\n",
    )
    .unwrap();
    let b = parse_module(
        "module \"a\"\nglobal @g : [2 x i32] = zero\nconst @extra : [4 x i32] = ints i32 [9,8,7,6]\nfunc @f() -> void {\nentry:\n  store i32 1, @g\n  ret\n}\n",
    )
    .unwrap();
    rolag_ir::interp::check_equivalence(&a, &b, "f", &[]).expect("extra rodata is fine");
}

/// Unreachable blocks are sealed with `unreachable` rather than left empty,
/// so DCE output always verifies.
#[test]
fn regression_dce_seals_unreachable_blocks() {
    let text = r#"
module "t"
func @f(i32 %p0) -> i32 {
entry:
  br join
orphan:
  %1 = add i32 %p0, i32 5
  br join
join:
  %2 = phi i32 [ %p0, entry ], [ %1, orphan ]
  ret %2
}
"#;
    let mut m = parse_module(text).unwrap();
    rolag_ir::dce::run_dce(&mut m);
    verify_module(&m).expect("sealed module verifies");
}
