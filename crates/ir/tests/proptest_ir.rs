//! Property-based tests of the IR substrate itself:
//!
//! * printing then parsing any generated module is a fixed point;
//! * the constant folder agrees with the interpreter on every binop;
//! * DCE and simplification never change observable behaviour.
//!
//! Uses the seeded in-repo harness (`rolag_prng::check`); a failure prints
//! the derived seed needed to replay the exact case.

use rolag_ir::builder::FuncBuilder;
use rolag_ir::fold::{eval_icmp, eval_int_binop};
use rolag_ir::interp::{check_equivalence, IValue, Interpreter};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::verify::verify_module;
use rolag_ir::{IntPredicate, Module, Opcode};
use rolag_prng::{check::run_cases, ChaCha8Rng, Rng, RngCore};

fn int_binops() -> Vec<Opcode> {
    vec![
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::SDiv,
        Opcode::UDiv,
        Opcode::SRem,
        Opcode::URem,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::LShr,
        Opcode::AShr,
    ]
}

fn predicates() -> Vec<IntPredicate> {
    vec![
        IntPredicate::Eq,
        IntPredicate::Ne,
        IntPredicate::Slt,
        IntPredicate::Sle,
        IntPredicate::Sgt,
        IntPredicate::Sge,
        IntPredicate::Ult,
        IntPredicate::Ule,
        IntPredicate::Ugt,
        IntPredicate::Uge,
    ]
}

/// Builds `fn f(a, b) -> opcode(a, b)` over the given integer width.
fn binop_module(opcode: Opcode, width: u16) -> Module {
    let mut m = Module::new("fold");
    let ty = m.types.int(width);
    let mut fb = FuncBuilder::new(&mut m, "f", vec![ty, ty], ty);
    let a = fb.param(0);
    let b = fb.param(1);
    fb.block("entry");
    fb.ins(|bu| {
        let r = bu.binop(opcode, a, b);
        bu.ret(Some(r));
    });
    fb.finish();
    m
}

/// The static folder and the dynamic interpreter agree on every integer
/// binop, across widths (including wrapping and shift masking).
#[test]
fn folder_matches_interpreter_on_binops() {
    run_cases(
        "folder_matches_interpreter_on_binops",
        256,
        0x1401,
        |rng, _| {
            let opcode = int_binops()[rng.gen_range(0usize..13)];
            let width = [8u16, 16, 32, 64][rng.gen_range(0usize..4)];
            let a = rng.next_u64() as i64;
            let b = rng.next_u64() as i64;
            let m = binop_module(opcode, width);
            let types = &m.types;
            let ty = {
                let mut fresh = m.types.clone();
                fresh.int(width)
            };
            let folded = eval_int_binop(types, opcode, ty, a, b);
            let mut interp = Interpreter::new(&m);
            // Arguments arrive sign-extended like the interpreter stores them.
            let norm = |v: i64| rolag_ir::fold::normalize_int(types, ty, v);
            let result = interp.run("f", &[IValue::Int(norm(a)), IValue::Int(norm(b))]);
            match (folded, result) {
                (Some(expect), Ok(out)) => assert_eq!(out.ret, IValue::Int(expect)),
                (None, Err(_)) => {} // division by zero on both sides
                (None, Ok(out)) => {
                    panic!("folder refused but interpreter produced {:?}", out.ret);
                }
                (Some(e), Err(err)) => {
                    panic!("folder produced {e} but interpreter faulted: {err}");
                }
            }
        },
    );
}

/// `eval_icmp` is a total order consistent with Rust's own semantics.
#[test]
fn icmp_matches_rust_semantics() {
    run_cases("icmp_matches_rust_semantics", 256, 0x1402, |rng, _| {
        let pred = predicates()[rng.gen_range(0usize..10)];
        let a = rng.next_u32() as i32;
        let b = rng.next_u32() as i32;
        let types = rolag_ir::TypeStore::new();
        let ty = types.i32();
        let got = eval_icmp(&types, pred, ty, a as i64, b as i64);
        let expect = match pred {
            IntPredicate::Eq => a == b,
            IntPredicate::Ne => a != b,
            IntPredicate::Slt => a < b,
            IntPredicate::Sle => a <= b,
            IntPredicate::Sgt => a > b,
            IntPredicate::Sge => a >= b,
            IntPredicate::Ult => (a as u32) < b as u32,
            IntPredicate::Ule => (a as u32) <= b as u32,
            IntPredicate::Ugt => (a as u32) > b as u32,
            IntPredicate::Uge => (a as u32) >= b as u32,
        };
        assert_eq!(got, expect, "{pred:?} on ({a}, {b})");
    });
}

fn gen_ops(rng: &mut ChaCha8Rng, max: usize) -> Vec<(usize, i64)> {
    let n = rng.gen_range(1..=max);
    (0..n)
        .map(|_| (rng.gen_range(0usize..6), rng.gen_range(-100i64..100)))
        .collect()
}

/// Random straight-line functions print → parse → print to a fixed
/// point, and the re-parsed module behaves identically.
#[test]
fn print_parse_fixed_point() {
    run_cases("print_parse_fixed_point", 128, 0x1403, |rng, _| {
        let ops = gen_ops(rng, 29);
        let arg = rng.gen_range(-1000i64..1000);
        let mut m = Module::new("rt");
        let i32t = m.types.i32();
        let arr = m.types.array(i32t, 8);
        let g = m.add_zero_global("g", arr);
        let mut fb = FuncBuilder::new(&mut m, "f", vec![i32t], i32t);
        let p = fb.param(0);
        fb.block("entry");
        fb.ins(|b| {
            let mut acc = p;
            for &(kind, c) in &ops {
                let cv = b.iconst(b.types.i32(), c);
                acc = match kind {
                    0 => b.add(acc, cv),
                    1 => b.sub(acc, cv),
                    2 => b.mul(acc, cv),
                    3 => b.xor(acc, cv),
                    4 => {
                        let base = b.global(g);
                        let idx = b.i64_const((c.unsigned_abs() % 8) as i64);
                        let q = b.gep(b.types.i32(), base, &[idx]);
                        b.store(acc, q);
                        acc
                    }
                    _ => {
                        let base = b.global(g);
                        let idx = b.i64_const((c.unsigned_abs() % 8) as i64);
                        let q = b.gep(b.types.i32(), base, &[idx]);
                        let v = b.load(b.types.i32(), q);
                        b.add(acc, v)
                    }
                };
            }
            b.ret(Some(acc));
        });
        fb.finish();
        verify_module(&m).expect("generated module verifies");

        let printed = print_module(&m);
        let reparsed = parse_module(&printed).expect("printed module parses back");
        let printed2 = print_module(&reparsed);
        assert_eq!(printed, printed2, "printing is a fixed point");
        check_equivalence(&m, &reparsed, "f", &[IValue::Int(arg)])
            .expect("reparsed module behaves identically");
    });
}

/// simplify + DCE never change observable behaviour.
#[test]
fn cleanup_preserves_behaviour() {
    run_cases("cleanup_preserves_behaviour", 128, 0x1404, |rng, _| {
        let ops = gen_ops(rng, 29);
        let arg = rng.gen_range(-1000i64..1000);
        let mut m = Module::new("cl");
        let i32t = m.types.i32();
        let arr = m.types.array(i32t, 8);
        let g = m.add_zero_global("g", arr);
        let mut fb = FuncBuilder::new(&mut m, "f", vec![i32t], i32t);
        let p = fb.param(0);
        fb.block("entry");
        fb.ins(|b| {
            let mut acc = p;
            let mut dead = p;
            for &(kind, c) in &ops {
                let cv = b.iconst(b.types.i32(), c);
                match kind {
                    0 => acc = b.add(acc, cv),
                    1 => acc = b.mul(acc, cv),
                    2 => dead = b.xor(dead, cv), // dead chain
                    3 => {
                        let z = b.iconst(b.types.i32(), 0);
                        acc = b.add(acc, z); // identity, folds away
                    }
                    4 => {
                        let base = b.global(g);
                        let idx = b.i64_const((c.unsigned_abs() % 8) as i64);
                        let q = b.gep(b.types.i32(), base, &[idx]);
                        b.store(acc, q);
                    }
                    _ => {
                        let x = b.iconst(b.types.i32(), c);
                        let y = b.iconst(b.types.i32(), 7);
                        let f = b.mul(x, y); // constant, folds away
                        acc = b.add(acc, f);
                    }
                }
            }
            b.ret(Some(acc));
        });
        fb.finish();

        let mut cleaned = m.clone();
        let id = cleaned.func_by_name("f").unwrap();
        let (func, types) = cleaned.func_and_types_mut(id);
        rolag_ir::fold::simplify_function(func, types);
        let snapshot = cleaned.clone();
        let func = cleaned.func_mut(id);
        rolag_ir::dce::run_dce_on(&snapshot, func);
        verify_module(&cleaned).expect("cleaned verifies");
        check_equivalence(&m, &cleaned, "f", &[IValue::Int(arg)])
            .expect("cleanup preserves behaviour");
    });
}
