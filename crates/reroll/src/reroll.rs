//! LLVM-style loop rerolling (§II of the paper, Figs. 1–2).
//!
//! The pass only considers *single-block loops* that look like the result of
//! partial unrolling:
//!
//! * a basic induction variable `iv` incremented by the unroll factor `f`;
//! * *root* instructions `add iv, k` for every `k in 1..f`;
//! * `f` isomorphic instruction sets, one per unrolled iteration, collected
//!   by following definition-use chains from `iv` and the roots;
//! * nothing else in the block besides the latch (`iv+f`, compare, branch).
//!
//! If all constraints hold, iterations `1..f` are deleted and the increment
//! becomes 1. Accumulator chains (reductions) are supported by letting an
//! operand pair with the previous iteration's counterpart of the chain head,
//! like LLVM's reroll does for reductions.

use std::collections::{HashMap, HashSet};

use rolag_analysis::dom::DomTree;
use rolag_analysis::loops::{find_induction_vars, find_loops, trip_count, IndVar, Loop};
use rolag_ir::{Function, InstExtra, InstId, Module, Opcode, ValueId};

/// Result of attempting to reroll one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RerollOutcome {
    /// The loop was rerolled from the given factor down to step 1.
    Rerolled {
        /// Unroll factor that was undone.
        factor: u32,
    },
    /// The loop does not match the required shape.
    NotApplicable,
}

/// Statistics of a pass run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RerollStats {
    /// Single-block loops examined.
    pub examined: u64,
    /// Loops successfully rerolled.
    pub rerolled: u64,
}

/// Reroll every eligible loop in the function. Returns statistics.
pub fn reroll_function(module: &Module, func: &mut Function) -> RerollStats {
    let mut stats = RerollStats::default();
    loop {
        let dom = DomTree::compute(func);
        let loops = find_loops(func, &dom);
        let mut changed = false;
        for lp in &loops {
            if !lp.is_single_block() {
                continue;
            }
            stats.examined += 1;
            if let RerollOutcome::Rerolled { .. } = try_reroll(module, func, lp) {
                stats.rerolled += 1;
                changed = true;
                break; // ids changed; re-analyze
            }
        }
        if !changed {
            break;
        }
    }
    stats
}

/// Reroll every eligible loop in every function of `module`.
pub fn reroll_module(module: &mut Module) -> RerollStats {
    let ids: Vec<_> = module.func_ids().collect();
    let mut total = RerollStats::default();
    for id in ids {
        if module.func(id).is_declaration {
            continue;
        }
        let mut func = module.func(id).clone();
        let stats = reroll_function(module, &mut func);
        module.replace_func(id, func);
        total.examined += stats.examined;
        total.rerolled += stats.rerolled;
    }
    total
}

fn try_reroll(module: &Module, func: &mut Function, lp: &Loop) -> RerollOutcome {
    let header = lp.header;

    // One basic induction variable with integer step >= 2 (the factor).
    let ivs: Vec<IndVar> = find_induction_vars(module, func, lp);
    let Some(tc) = trip_count(module, func, lp) else {
        return RerollOutcome::NotApplicable;
    };
    let iv = &tc.iv;
    if iv.step < 2 {
        return RerollOutcome::NotApplicable;
    }
    let factor = iv.step as u32;
    // Exactness: the rerolled loop (step 1) must execute factor * trips
    // iterations. We require a statically known trip count, like the
    // divisibility condition of the unroller.
    let Some(_trips) = tc.known_trips else {
        return RerollOutcome::NotApplicable;
    };
    if ivs.len() != 1 {
        return RerollOutcome::NotApplicable;
    }

    // Find roots: `add iv, k` for k = 1..factor, each exactly once.
    let block_insts: Vec<InstId> = func.block(header).insts.clone();
    let in_block: HashSet<InstId> = block_insts.iter().copied().collect();
    let mut roots: Vec<Option<InstId>> = vec![None; factor as usize]; // [1..factor)
    for &i in &block_insts {
        if i == iv.step_inst {
            continue;
        }
        let data = func.inst(i);
        if data.opcode != Opcode::Add || data.operands.len() != 2 {
            continue;
        }
        let k = if data.operands[0] == iv.phi_value {
            func.value(data.operands[1]).as_const_int()
        } else if data.operands[1] == iv.phi_value {
            func.value(data.operands[0]).as_const_int()
        } else {
            None
        };
        let Some(k) = k else { continue };
        if k >= 1 && (k as u32) < factor {
            if roots[k as usize].is_some() {
                return RerollOutcome::NotApplicable; // duplicate root
            }
            roots[k as usize] = Some(i);
        }
    }
    let roots: Vec<InstId> = match roots[1..].iter().copied().collect::<Option<Vec<_>>>() {
        Some(r) => r,
        None => return RerollOutcome::NotApplicable,
    };

    // Latch set: increment, compare, terminator.
    let term = func.terminator(header).expect("loop has terminator");
    let latch: HashSet<InstId> = [iv.step_inst, tc.cmp, term].into_iter().collect();

    // Collect the per-iteration sets by following def-use chains.
    let uses = func.compute_uses();
    let collect_set = |start_users_of: ValueId, exclude: &HashSet<InstId>| -> Vec<InstId> {
        let mut set: HashSet<InstId> = HashSet::new();
        let mut work: Vec<InstId> = uses
            .of(start_users_of)
            .iter()
            .map(|&(u, _)| u)
            .filter(|u| in_block.contains(u) && !exclude.contains(u))
            .collect();
        while let Some(i) = work.pop() {
            if !set.insert(i) {
                continue;
            }
            for &(u, _) in uses.of(func.inst_result(i)) {
                if in_block.contains(&u) && !exclude.contains(&u) && !set.contains(&u) {
                    work.push(u);
                }
            }
        }
        let mut ordered: Vec<InstId> = set.into_iter().collect();
        ordered.sort_by_key(|&i| func.position_in_block(i).unwrap_or(usize::MAX));
        ordered
    };

    let mut exclude: HashSet<InstId> = latch.clone();
    exclude.extend(roots.iter().copied());
    // Phis (the iv and any accumulators) are loop plumbing, never part of a
    // replicated iteration.
    exclude.extend(
        block_insts
            .iter()
            .copied()
            .filter(|&i| func.inst(i).opcode == Opcode::Phi),
    );
    // Reachability sets: users of iv / each root, transitively. Through an
    // accumulator chain, iteration k's instructions are reachable from
    // every root j <= k, so each instruction belongs to the *latest* root
    // that reaches it: subtract each set's successors from it.
    let base_set = collect_set(iv.phi_value, &exclude);
    let mut sets: Vec<Vec<InstId>> = vec![base_set];
    for &r in &roots {
        sets.push(collect_set(func.inst_result(r), &exclude));
    }
    let mut later: HashSet<InstId> = HashSet::new();
    for k in (0..sets.len()).rev() {
        sets[k].retain(|i| !later.contains(i));
        later.extend(sets[k].iter().copied());
    }

    // Accumulator phis (non-iv) of the loop, allowed as cross-iteration
    // links.
    let acc_phis: HashSet<ValueId> = func
        .block(header)
        .insts
        .iter()
        .take_while(|&&i| func.inst(i).opcode == Opcode::Phi)
        .filter(|&&i| i != iv.phi)
        .map(|&i| func.inst_result(i))
        .collect();

    // Isomorphism check, pairing element-wise in block order.
    let n = sets[0].len();
    if n == 0 || sets.iter().any(|s| s.len() != n) {
        return RerollOutcome::NotApplicable;
    }
    // LLVM's pass only manages "simple array operations, such as array
    // initialization and element-wise addition" (§V-C): multi-statement
    // bodies (more than one store per iteration) defeat it.
    let stores_in_base = sets[0]
        .iter()
        .filter(|&&i| func.inst(i).opcode == Opcode::Store)
        .count();
    if stores_in_base > 1 {
        return RerollOutcome::NotApplicable;
    }
    // Coverage: every instruction in the block is accounted for.
    let mut covered: HashSet<InstId> = HashSet::new();
    covered.extend(latch.iter().copied());
    covered.extend(roots.iter().copied());
    for &i in &block_insts {
        if func.inst(i).opcode == Opcode::Phi {
            covered.insert(i);
        }
    }
    for s in &sets {
        covered.extend(s.iter().copied());
    }
    if block_insts.iter().any(|i| !covered.contains(i)) {
        return RerollOutcome::NotApplicable;
    }

    // map[k]: base-iteration value -> iteration-k value.
    let mut maps: Vec<HashMap<ValueId, ValueId>> = vec![HashMap::new(); factor as usize];
    for (k, &r) in roots.iter().enumerate() {
        maps[k + 1].insert(iv.phi_value, func.inst_result(r));
    }
    // Reverse map for the transform: iteration-k value -> base value.
    let mut reverse: HashMap<ValueId, ValueId> = HashMap::new();

    for k in 1..factor as usize {
        for (x0, xk) in sets[0].clone().into_iter().zip(sets[k].clone()) {
            let d0 = func.inst(x0).clone();
            let dk = func.inst(xk).clone();
            if d0.opcode != dk.opcode
                || d0.ty != dk.ty
                || d0.operands.len() != dk.operands.len()
                || !extras_match(&d0.extra, &dk.extra)
            {
                return RerollOutcome::NotApplicable;
            }
            for (&a0, &ak) in d0.operands.iter().zip(&dk.operands) {
                if a0 == ak {
                    continue; // loop-invariant or identical
                }
                if maps[k].get(&a0) == Some(&ak) {
                    continue; // iv/root or previously paired counterpart
                }
                // Accumulator rule: a0 is a non-iv phi; iteration k uses the
                // (k-1)-counterpart of the chain head x0 (for k == 1, x0
                // itself). Like LLVM, only plain add/fadd reduction chains
                // are recognized.
                if acc_phis.contains(&a0) && matches!(d0.opcode, Opcode::Add | Opcode::FAdd) {
                    let prev = if k == 1 {
                        Some(func.inst_result(x0))
                    } else {
                        maps[k - 1].get(&func.inst_result(x0)).copied()
                    };
                    if prev == Some(ak) {
                        continue;
                    }
                }
                return RerollOutcome::NotApplicable;
            }
            maps[k].insert(func.inst_result(x0), func.inst_result(xk));
            reverse.insert(func.inst_result(xk), func.inst_result(x0));
        }
    }

    // Roots and replicated iterations must not escape the loop.
    for &r in &roots {
        for &(user, _) in uses.of(func.inst_result(r)) {
            if !in_block.contains(&user) {
                return RerollOutcome::NotApplicable;
            }
        }
    }

    // --- transform -----------------------------------------------------------
    // Redirect all remaining uses of replica values to their base values
    // (covers accumulator phi back-edges and exit uses of the final value).
    let redirects: Vec<(ValueId, ValueId)> = reverse.iter().map(|(&a, &b)| (a, b)).collect();
    for (from, to) in redirects {
        func.replace_all_uses(from, to);
    }
    // Delete replicas and roots.
    for s in &sets[1..] {
        for &i in s {
            func.remove_inst(i);
        }
    }
    for &r in &roots {
        func.remove_inst(r);
    }
    // Step becomes 1.
    let one = func.const_int(func.value_ty(iv.phi_value, &module.types), 1);
    let step_data = func.inst_mut(iv.step_inst);
    if step_data.operands[0] == iv.phi_value {
        step_data.operands[1] = one;
    } else {
        step_data.operands[0] = one;
    }

    RerollOutcome::Rerolled { factor }
}

fn extras_match(a: &InstExtra, b: &InstExtra) -> bool {
    match (a, b) {
        (InstExtra::None, InstExtra::None) => true,
        (InstExtra::Icmp(x), InstExtra::Icmp(y)) => x == y,
        (InstExtra::Fcmp(x), InstExtra::Fcmp(y)) => x == y,
        (InstExtra::Gep { elem_ty: x }, InstExtra::Gep { elem_ty: y }) => x == y,
        (InstExtra::Call { callee: x }, InstExtra::Call { callee: y }) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolag_ir::interp::check_equivalence;
    use rolag_ir::parser::parse_module;
    use rolag_ir::verify::verify_module;

    /// Figure 1a: the canonical partially unrolled loop.
    const FIG1: &str = r#"
module "fig1"
global @a : [30 x i32] = zero
func @f(i32 %p0) -> void {
entry:
  br loop
loop:
  %iv = phi i32 [ i32 0, entry ], [ %ivn, loop ]
  %m0 = mul i32 %p0, %iv
  %x0 = gep i32, @a, %iv
  store %m0, %x0
  %iv1 = add i32 %iv, i32 1
  %m1 = mul i32 %p0, %iv1
  %x1 = gep i32, @a, %iv1
  store %m1, %x1
  %iv2 = add i32 %iv, i32 2
  %m2 = mul i32 %p0, %iv2
  %x2 = gep i32, @a, %iv2
  store %m2, %x2
  %ivn = add i32 %iv, i32 3
  %cmp = icmp slt %ivn, i32 30
  condbr %cmp, loop, exit
exit:
  ret
}
"#;

    #[test]
    fn rerolls_figure1_loop() {
        let orig = parse_module(FIG1).unwrap();
        let mut m = orig.clone();
        let stats = reroll_module(&mut m);
        assert_eq!(stats.rerolled, 1);
        verify_module(&m).expect("verifies");
        check_equivalence(&orig, &m, "f", &[rolag_ir::interp::IValue::Int(7)]).expect("equivalent");
        // Loop shrank to one iteration: phi, mul, gep, store, add, cmp, br.
        let f = m.func(m.func_by_name("f").unwrap());
        let lp = f.block_by_name("loop").unwrap();
        assert_eq!(f.block(lp).insts.len(), 7);
    }

    #[test]
    fn rerolls_reduction_accumulator() {
        let text = r#"
module "red"
global @a : [16 x i32] = ints i32 [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]
func @f() -> i32 {
entry:
  br loop
loop:
  %iv = phi i32 [ i32 0, entry ], [ %ivn, loop ]
  %acc = phi i32 [ i32 0, entry ], [ %a1, loop ]
  %g0 = gep i32, @a, %iv
  %v0 = load i32, %g0
  %a0 = add i32 %acc, %v0
  %iv1 = add i32 %iv, i32 1
  %g1 = gep i32, @a, %iv1
  %v1 = load i32, %g1
  %a1 = add i32 %a0, %v1
  %ivn = add i32 %iv, i32 2
  %cmp = icmp slt %ivn, i32 16
  condbr %cmp, loop, exit
exit:
  ret %a1
}
"#;
        let orig = parse_module(text).unwrap();
        let mut m = orig.clone();
        let stats = reroll_module(&mut m);
        assert_eq!(stats.rerolled, 1);
        verify_module(&m).expect("verifies");
        check_equivalence(&orig, &m, "f", &[]).expect("equivalent");
    }

    #[test]
    fn rejects_non_isomorphic_iterations() {
        // Second iteration multiplies instead of storing the same shape.
        let text = r#"
module "t"
global @a : [16 x i32] = zero
func @f(i32 %p0) -> void {
entry:
  br loop
loop:
  %iv = phi i32 [ i32 0, entry ], [ %ivn, loop ]
  %x0 = gep i32, @a, %iv
  store %p0, %x0
  %iv1 = add i32 %iv, i32 1
  %m1 = mul i32 %p0, i32 3
  %x1 = gep i32, @a, %iv1
  store %m1, %x1
  %ivn = add i32 %iv, i32 2
  %cmp = icmp slt %ivn, i32 16
  condbr %cmp, loop, exit
exit:
  ret
}
"#;
        let mut m = parse_module(text).unwrap();
        assert_eq!(reroll_module(&mut m).rerolled, 0);
    }

    #[test]
    fn rejects_rolled_loops_and_straight_line_code() {
        // A step-1 loop has no roots; straight-line code has no loops.
        let text = r#"
module "t"
global @a : [8 x i32] = zero
func @f() -> void {
entry:
  br loop
loop:
  %iv = phi i32 [ i32 0, entry ], [ %ivn, loop ]
  %x0 = gep i32, @a, %iv
  store %iv, %x0
  %ivn = add i32 %iv, i32 1
  %cmp = icmp slt %ivn, i32 8
  condbr %cmp, loop, exit
exit:
  ret
}
func @g(ptr %p0) -> void {
entry:
  store i32 1, %p0
  %q = gep i32, %p0, i64 1
  store i32 2, %q
  ret
}
"#;
        let mut m = parse_module(text).unwrap();
        let stats = reroll_module(&mut m);
        assert_eq!(stats.rerolled, 0);
        assert_eq!(stats.examined, 1);
    }

    #[test]
    fn rejects_escaping_roots() {
        // iv+1 is used after the loop: deleting it would break the exit.
        let text = r#"
module "t"
global @a : [8 x i32] = zero
func @f() -> i32 {
entry:
  br loop
loop:
  %iv = phi i32 [ i32 0, entry ], [ %ivn, loop ]
  %x0 = gep i32, @a, %iv
  store %iv, %x0
  %iv1 = add i32 %iv, i32 1
  %x1 = gep i32, @a, %iv1
  store %iv1, %x1
  %ivn = add i32 %iv, i32 2
  %cmp = icmp slt %ivn, i32 8
  condbr %cmp, loop, exit
exit:
  ret %iv1
}
"#;
        let mut m = parse_module(text).unwrap();
        assert_eq!(reroll_module(&mut m).rerolled, 0);
    }

    #[test]
    fn reroll_inverts_the_unroller() {
        // unroll x4 then reroll must reproduce a 1-step loop.
        let text = r#"
module "t"
global @a : [32 x i32] = zero
func @f() -> void {
entry:
  br loop
loop:
  %iv = phi i32 [ i32 0, entry ], [ %ivn, loop ]
  %g = gep i32, @a, %iv
  %m = mul i32 %iv, i32 3
  store %m, %g
  %ivn = add i32 %iv, i32 1
  %cmp = icmp slt %ivn, i32 32
  condbr %cmp, loop, exit
exit:
  ret
}
"#;
        let orig = parse_module(text).unwrap();
        let mut unrolled = orig.clone();
        rolag_transforms::unroll::unroll_module(&mut unrolled, 4);
        rolag_transforms::pipeline::cleanup_module(&mut unrolled);
        let mut rerolled = unrolled.clone();
        let stats = reroll_module(&mut rerolled);
        assert_eq!(stats.rerolled, 1);
        verify_module(&rerolled).expect("verifies");
        check_equivalence(&orig, &rerolled, "f", &[]).expect("equivalent to original");
        let f = rerolled.func(rerolled.func_by_name("f").unwrap());
        let lp = f.block_by_name("loop").unwrap();
        // phi, gep, mul, store, add, cmp, condbr
        assert_eq!(f.block(lp).insts.len(), 7);
    }
}
