//! # rolag-reroll
//!
//! The baseline: an LLVM-style loop *rerolling* pass (§II of the RoLAG
//! paper). It reverts partial unrolling of single-block loops — and only
//! that: it cannot handle straight-line code, which is exactly the gap
//! RoLAG fills.
//!
//! ```
//! use rolag_ir::parser::parse_module;
//! use rolag_reroll::reroll_module;
//!
//! let text = r#"
//! module "t"
//! global @a : [8 x i32] = zero
//! func @f() -> void {
//! entry:
//!   br loop
//! loop:
//!   %iv = phi i32 [ i32 0, entry ], [ %ivn, loop ]
//!   %x0 = gep i32, @a, %iv
//!   store %iv, %x0
//!   %iv1 = add i32 %iv, i32 1
//!   %x1 = gep i32, @a, %iv1
//!   store %iv1, %x1
//!   %ivn = add i32 %iv, i32 2
//!   %cmp = icmp slt %ivn, i32 8
//!   condbr %cmp, loop, exit
//! exit:
//!   ret
//! }
//! "#;
//! let mut m = parse_module(text).unwrap();
//! assert_eq!(reroll_module(&mut m).rerolled, 1);
//! ```

#![warn(missing_docs)]

pub mod reroll;

pub use reroll::{reroll_function, reroll_module, RerollOutcome, RerollStats};
