//! The newline-delimited JSON request/response protocol.
//!
//! One request per line, one response line per request, in order. A
//! connection (or the stdin batch) is a stream of requests:
//!
//! ```text
//! {"id": "r1", "module": "<IR text>", "options": "default", "client": "a"}
//! {"id": "r2", "cmd": "stats"}
//! {"id": "r3", "cmd": "shutdown"}
//! ```
//!
//! * A **roll** request carries a full textual-IR module. The service
//!   parses, verifies, rolls it through the shared worker pool and
//!   cross-request store, and answers with the transformed module plus
//!   per-request and cumulative metrics. `options` names a preset
//!   ([`options_preset`]); absent means `default`. `client` is an opaque
//!   label echoed in logs — content addressing makes the cache shared
//!   across clients by construction, so it carries no semantics.
//! * `{"cmd": "stats"}` answers with cumulative metrics only.
//! * `{"cmd": "shutdown"}` acknowledges and closes the server loop
//!   (socket mode exits the process; batch mode stops reading).
//!
//! Responses are single-line JSON objects echoing `id`, with `"ok"`
//! telling the two shapes apart: `{"id", "ok": true, "module", "stats":
//! {...}, "request": {...}, "cumulative": {...}}` on success and
//! `{"id", "ok": false, "error": "..."}` on failure. Malformed request
//! lines get an error response with `"id": null`.

use rolag::RolagOptions;

use crate::json::{escaped, parse, Json};

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Roll a textual-IR module.
    Roll {
        /// Echo token for the response.
        id: String,
        /// Textual IR of the module to roll.
        module: String,
        /// Options preset name (see [`options_preset`]).
        options: String,
        /// Opaque client label.
        client: Option<String>,
    },
    /// Report cumulative service metrics.
    Stats {
        /// Echo token for the response.
        id: String,
    },
    /// Acknowledge and stop serving.
    Shutdown {
        /// Echo token for the response.
        id: String,
    },
}

impl Request {
    /// The request's echo token.
    pub fn id(&self) -> &str {
        match self {
            Request::Roll { id, .. } | Request::Stats { id } | Request::Shutdown { id } => id,
        }
    }

    /// Renders the request as one NDJSON line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Request::Roll {
                id,
                module,
                options,
                client,
            } => {
                let mut out = format!(
                    "{{\"id\": {}, \"module\": {}, \"options\": {}",
                    escaped(id),
                    escaped(module),
                    escaped(options)
                );
                if let Some(client) = client {
                    out.push_str(&format!(", \"client\": {}", escaped(client)));
                }
                out.push('}');
                out
            }
            Request::Stats { id } => format!("{{\"id\": {}, \"cmd\": \"stats\"}}", escaped(id)),
            Request::Shutdown { id } => {
                format!("{{\"id\": {}, \"cmd\": \"shutdown\"}}", escaped(id))
            }
        }
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = parse(line)?;
    let id = doc
        .get("id")
        .and_then(Json::as_str)
        .ok_or("request is missing a string \"id\"")?
        .to_string();
    if let Some(cmd) = doc.get("cmd").and_then(Json::as_str) {
        return match cmd {
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(format!("unknown cmd {other:?}")),
        };
    }
    let module = doc
        .get("module")
        .and_then(Json::as_str)
        .ok_or("request has neither \"cmd\" nor a string \"module\"")?
        .to_string();
    let options = doc
        .get("options")
        .and_then(Json::as_str)
        .unwrap_or("default")
        .to_string();
    let client = doc.get("client").and_then(Json::as_str).map(str::to_string);
    Ok(Request::Roll {
        id,
        module,
        options,
        client,
    })
}

/// Resolves an options preset name. The presets are the same spellings the
/// pass registry exposes, so a service request and a `rolag-opt` run agree
/// on what e.g. `"extended"` means.
pub fn options_preset(name: &str) -> Option<RolagOptions> {
    match name {
        "default" => Some(RolagOptions::default()),
        "extended" => Some(RolagOptions::with_extensions()),
        "no-special" => Some(RolagOptions::no_special_nodes()),
        "validated" | "tv" => Some(RolagOptions::validated()),
        "measured" => Some(RolagOptions::measured()),
        _ => None,
    }
}

/// A parsed response line — the client-side view of what the server sent.
#[derive(Debug, Clone, Default)]
pub struct Reply {
    /// Echoed request id (empty for malformed-line errors).
    pub id: String,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Error message, for `ok == false`.
    pub error: Option<String>,
    /// The rolled module text, for successful roll requests.
    pub module: Option<String>,
    /// Loops committed in this request.
    pub rolled: u64,
    /// Function definitions in this request.
    pub functions: u64,
    /// Definitions replayed from the cross-request store.
    pub store_hits: u64,
    /// Definitions rolled because the store missed.
    pub store_misses: u64,
    /// This request's wall-clock in the server, nanoseconds.
    pub wall_ns: u64,
    /// Cumulative store hit rate after this request, `0.0..=1.0`.
    pub cumulative_hit_rate: f64,
}

fn num(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_num).unwrap_or(0.0) as u64
}

/// Parses one response line.
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    let doc = parse(line)?;
    let ok = doc
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or("response is missing \"ok\"")?;
    let id = doc
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let request = doc.get("request");
    let cumulative = doc.get("cumulative");
    Ok(Reply {
        id,
        ok,
        error: doc.get("error").and_then(Json::as_str).map(str::to_string),
        module: doc.get("module").and_then(Json::as_str).map(str::to_string),
        rolled: doc
            .get("stats")
            .map(|s| num(s, "rolled"))
            .unwrap_or_default(),
        functions: request.map(|r| num(r, "functions")).unwrap_or_default(),
        store_hits: request.map(|r| num(r, "store_hits")).unwrap_or_default(),
        store_misses: request.map(|r| num(r, "store_misses")).unwrap_or_default(),
        wall_ns: request.map(|r| num(r, "wall_ns")).unwrap_or_default(),
        cumulative_hit_rate: cumulative
            .and_then(|c| c.get("hit_rate"))
            .and_then(Json::as_num)
            .unwrap_or(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Roll {
                id: "r1".into(),
                module: "module \"m\"\n".into(),
                options: "measured".into(),
                client: Some("ci".into()),
            },
            Request::Roll {
                id: "r2".into(),
                module: "module \"m\"\n".into(),
                options: "default".into(),
                client: None,
            },
            Request::Stats { id: "r3".into() },
            Request::Shutdown { id: "r4".into() },
        ];
        for req in reqs {
            let line = req.render();
            assert!(!line.contains('\n'), "one request per line");
            assert_eq!(parse_request(&line).unwrap(), req);
        }
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"module\": \"m\"}").is_err(), "missing id");
        assert!(parse_request("{\"id\": \"x\"}").is_err(), "missing body");
        assert!(parse_request("{\"id\": \"x\", \"cmd\": \"reboot\"}").is_err());
    }

    #[test]
    fn presets_cover_the_registry_spellings() {
        for name in ["default", "extended", "no-special", "validated", "measured"] {
            assert!(options_preset(name).is_some(), "{name}");
        }
        assert!(options_preset("turbo").is_none());
        assert!(options_preset("measured").unwrap().measured_cost);
        assert!(options_preset("validated").unwrap().validate);
    }
}
