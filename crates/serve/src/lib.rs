//! # rolag-serve
//!
//! A persistent compilation service for the RoLAG IR: a long-lived daemon
//! that accepts streams of textual-IR modules — over a unix socket or as
//! a stdin batch — rolls them through the parallel memoizing driver, and
//! **content-addresses every function** so structurally identical code
//! arriving from different clients (or different requests of the same
//! client) compiles exactly once.
//!
//! The pieces, each its own module:
//!
//! * [`json`] — a hand-rolled JSON codec (the workspace has no external
//!   dependencies).
//! * [`proto`] — the newline-delimited JSON request/response protocol and
//!   the options presets.
//! * [`server`] — the [`Server`]: one persistent
//!   [`WorkerPool`](rolag_par::WorkerPool) plus one bounded
//!   [`MemoStore`](rolag::MemoStore) shared by every connection, and the
//!   cumulative metrics (per-request and cumulative hit rates, funcs/sec,
//!   p50/p99 latency).
//!
//! The cache is keyed by the *closure key* of [`rolag::store_key`]:
//! canonical function text plus the printed definitions of every
//! referenced global, the signature/effects of every callee, and the
//! options fingerprint. A hit therefore guarantees the cached rolled body
//! is byte-identical to what rolling the request cold would produce —
//! the property `tests/serve_determinism.rs` pins over the repro corpus
//! and a generator sweep.
//!
//! ```
//! use rolag_serve::{Server, ServerConfig};
//! use rolag_serve::proto::parse_reply;
//!
//! let server = Server::new(&ServerConfig { jobs: 2, capacity: 64 });
//! let line = r#"{"id": "r1", "module": "module \"m\"\nfunc @f() -> void {\nentry:\n  ret\n}\n"}"#;
//! let (response, shutdown) = server.handle_line(line);
//! assert!(!shutdown);
//! assert!(parse_reply(&response).unwrap().ok);
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod proto;
pub mod server;

pub use server::{Server, ServerConfig, Snapshot};
