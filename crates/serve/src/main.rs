//! `rolag-serve` — the persistent compilation daemon.
//!
//! ```text
//! rolag-serve --stdio [--jobs N] [--capacity N]
//! rolag-serve --socket <path> [--jobs N] [--capacity N]
//! rolag-serve --check-bench <BENCH_serve.json>
//! ```
//!
//! * `--stdio` — batch mode: read NDJSON requests from stdin, answer each
//!   on stdout, exit at EOF or on a `shutdown` command. A final metrics
//!   snapshot goes to stderr.
//! * `--socket <path>` — daemon mode: bind a unix socket and serve one
//!   thread per connection, all sharing one worker pool and one
//!   content-addressed store. A `shutdown` request acknowledges, then
//!   exits the process.
//! * `--jobs N` — worker threads in the persistent pool (0 = all cores).
//! * `--capacity N` — cross-request store capacity, in cached bodies.
//! * `--check-bench <path>` — validate the schema of a `BENCH_serve.json`
//!   produced by the serve bench and exit (0 valid, 1 not). Used by CI.
//!
//! Exit status: 0 on clean shutdown, 1 on usage/IO/schema errors.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::process::ExitCode;
use std::sync::Arc;

use rolag_serve::json::{parse, Json};
use rolag_serve::{Server, ServerConfig};

#[derive(Debug, Default)]
struct Cli {
    stdio: bool,
    socket: Option<String>,
    check_bench: Option<String>,
    config: ServerConfig,
}

fn usage() -> &'static str {
    "usage: rolag-serve (--stdio | --socket <path> | --check-bench <json>) \
     [--jobs N] [--capacity N]"
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stdio" => cli.stdio = true,
            "--socket" => {
                cli.socket = Some(it.next().ok_or("--socket needs a path")?.clone());
            }
            "--check-bench" => {
                cli.check_bench = Some(it.next().ok_or("--check-bench needs a path")?.clone());
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                cli.config.jobs = v.parse().map_err(|_| format!("bad job count {v}"))?;
            }
            "--capacity" => {
                let v = it.next().ok_or("--capacity needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad capacity {v}"))?;
                if n == 0 {
                    return Err("capacity must be >= 1".into());
                }
                cli.config.capacity = n;
            }
            "-h" | "--help" => return Err(usage().into()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    let modes = usize::from(cli.stdio)
        + usize::from(cli.socket.is_some())
        + usize::from(cli.check_bench.is_some());
    if modes != 1 {
        return Err(usage().into());
    }
    Ok(cli)
}

/// Serves one line stream: reads requests from `input`, writes responses
/// to `output`. Returns true if a shutdown request ended the stream.
fn serve_stream(
    server: &Server,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<bool> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = server.handle_line(&line);
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

fn run_stdio(config: &ServerConfig) -> ExitCode {
    let server = Server::new(config);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match serve_stream(&server, stdin.lock(), stdout.lock()) {
        Ok(_) => {
            eprintln!("rolag-serve: {}", server.snapshot().to_json());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rolag-serve: io error: {e}");
            ExitCode::from(1)
        }
    }
}

fn run_socket(path: &str, config: &ServerConfig) -> ExitCode {
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("rolag-serve: cannot bind {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let server = Arc::new(Server::new(config));
    eprintln!(
        "rolag-serve: listening on {path} ({} workers, capacity {})",
        server.worker_count(),
        config.capacity
    );
    for conn in listener.incoming() {
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rolag-serve: accept: {e}");
                continue;
            }
        };
        let server = Arc::clone(&server);
        let sock = path.to_string();
        std::thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(s) => BufReader::new(s),
                Err(e) => {
                    eprintln!("rolag-serve: clone: {e}");
                    return;
                }
            };
            match serve_stream(&server, reader, &stream) {
                Ok(true) => {
                    // Shutdown was acknowledged on the stream; drop the
                    // socket file and end the whole process.
                    eprintln!("rolag-serve: {}", server.snapshot().to_json());
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    let _ = std::fs::remove_file(&sock);
                    std::process::exit(0);
                }
                Ok(false) => {}
                Err(e) => eprintln!("rolag-serve: connection: {e}"),
            }
        });
    }
    ExitCode::SUCCESS
}

/// Schema of `BENCH_serve.json`: the members the acceptance criteria and
/// the CI gate read, with their types. Extra members are allowed.
fn check_bench(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let num = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_num)
            .ok_or(format!("{path}: missing numeric \"{key}\""))
    };
    if doc.get("bench").and_then(Json::as_str) != Some("serve") {
        return Err(format!("{path}: \"bench\" must be \"serve\""));
    }
    let workload = doc
        .get("workload")
        .ok_or(format!("{path}: missing \"workload\""))?;
    for key in ["modules", "functions", "duplication"] {
        workload
            .get(key)
            .and_then(Json::as_num)
            .ok_or(format!("{path}: missing numeric workload.{key}"))?;
    }
    for phase in ["cold", "warm"] {
        let obj = doc
            .get(phase)
            .ok_or(format!("{path}: missing \"{phase}\""))?;
        for key in ["p50_ns", "p99_ns", "mean_ns", "funcs_per_sec"] {
            obj.get(key)
                .and_then(Json::as_num)
                .ok_or(format!("{path}: missing numeric {phase}.{key}"))?;
        }
    }
    let pressure = doc
        .get("pressure")
        .ok_or(format!("{path}: missing \"pressure\""))?;
    let evictions = pressure
        .get("evictions")
        .and_then(Json::as_num)
        .ok_or(format!("{path}: missing numeric pressure.evictions"))?;
    if evictions < 1.0 {
        return Err(format!(
            "{path}: pressure.evictions {evictions} — the pressure phase must \
             actually exercise clock eviction"
        ));
    }
    let pressure_hit_rate = pressure
        .get("hit_rate")
        .and_then(Json::as_num)
        .ok_or(format!("{path}: missing numeric pressure.hit_rate"))?;
    if !(0.0..=1.0).contains(&pressure_hit_rate) {
        return Err(format!(
            "{path}: pressure.hit_rate {pressure_hit_rate} out of range"
        ));
    }
    let hit_rate = num("hit_rate")?;
    let speedup = num("warm_speedup_p50")?;
    if !(0.0..=1.0).contains(&hit_rate) {
        return Err(format!("{path}: hit_rate {hit_rate} out of range"));
    }
    if hit_rate < 0.5 {
        return Err(format!(
            "{path}: hit_rate {hit_rate:.3} below the 0.5 acceptance floor"
        ));
    }
    if speedup < 2.0 {
        return Err(format!(
            "{path}: warm_speedup_p50 {speedup:.2} below the 2x acceptance floor"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    if let Some(path) = &cli.check_bench {
        return match check_bench(path) {
            Ok(()) => {
                println!("ok: {path} matches the serve bench schema");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        };
    }
    if let Some(path) = &cli.socket {
        return run_socket(path, &cli.config);
    }
    run_stdio(&cli.config)
}
