//! A minimal JSON codec for the service protocol.
//!
//! The workspace is dependency-free by policy, so the NDJSON wire format
//! is parsed and rendered by hand. The subset is exactly what the
//! protocol needs: objects, arrays, strings with full escape handling,
//! numbers (kept as `f64`; every counter the protocol carries fits well
//! inside the 2^53 exact-integer range), booleans, and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integers round-trip exactly up to 2^53.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is normalized (sorted) — the protocol never
    /// relies on member order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.get(key),
            _ => None,
        }
    }
}

/// Renders `s` as a JSON string literal (quotes included) into `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

/// Parses one JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(text, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", b as char))
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(text, bytes, pos),
        Some(b'[') => parse_array(text, bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(text, bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(text, bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad keyword at byte {pos}"))
    }
}

fn parse_number(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    text[start..*pos]
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number at byte {start}"))
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = text.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        // Surrogate pairs: only needed for astral-plane
                        // text, which IR never contains, but handled so
                        // the codec is complete.
                        let c = if (0xd800..0xdc00).contains(&code) {
                            if !text[*pos..].starts_with("\\u") {
                                return Err("lone high surrogate".into());
                            }
                            let low = text
                                .get(*pos + 2..*pos + 6)
                                .ok_or("truncated low surrogate")?;
                            let low = u32::from_str_radix(low, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            *pos += 6;
                            0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                        } else {
                            code
                        };
                        out.push(char::from_u32(c).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            _ => {
                // Consume one UTF-8 character (multi-byte sequences are
                // copied verbatim).
                let c = text[*pos..].chars().next().ok_or("bad UTF-8")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = BTreeMap::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(text, bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(text, bytes, pos)?;
        members.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn parse_array(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(text, bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escaped_ir_text() {
        let ir = "module \"m\"\nfunc @f() -> void {\nentry:\n  ret\n}\n";
        let doc = format!("{{\"module\": {}, \"n\": 3, \"ok\": true}}", escaped(ir));
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed.get("module").and_then(Json::as_str), Some(ir));
        assert_eq!(parsed.get("n").and_then(Json::as_num), Some(3.0));
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn parses_nested_structure_and_rejects_trailing_junk() {
        let parsed = parse("{\"a\": [1, {\"b\": null}, \"x\\u0041\"]}").unwrap();
        let Json::Arr(items) = parsed.get("a").unwrap() else {
            panic!("array");
        };
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].as_str(), Some("xA"));
        assert!(parse("{} junk").is_err());
        assert!(parse("{\"unterminated").is_err());
    }

    #[test]
    fn escape_handles_control_characters() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let obj = format!("{{\"k\": {}}}", escaped(s));
        assert_eq!(
            parse(&obj).unwrap().get("k").and_then(Json::as_str),
            Some(s)
        );
    }
}
