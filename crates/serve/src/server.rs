//! The compilation service: persistent worker pool, cross-request store,
//! and cumulative metrics behind one [`Server`] value.
//!
//! A [`Server`] is `Sync`: socket mode shares one instance across
//! connection threads, so every client draws from the same content-
//! addressed cache and the same pool of worker threads. Requests are
//! handled at protocol level ([`Server::handle_line`] maps one NDJSON
//! request line to one response line), which is also what the bench and
//! the determinism tests drive — the unix-socket and stdio front ends in
//! `main.rs` are pure line transport.

use std::sync::Mutex;
use std::time::Instant;

use rolag::{roll_module_par_with, DriverOptions, DriverReport, MemoStore, MemoStoreStats};
use rolag_ir::parser::parse_module;
use rolag_ir::printer::print_module;
use rolag_ir::verify::verify_module;
use rolag_par::WorkerPool;

use crate::json::escaped;
use crate::proto::{options_preset, parse_request, Request};

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads in the persistent pool; `0` means one per core.
    pub jobs: usize,
    /// Capacity of the cross-request store, in cached function bodies.
    pub capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            jobs: 0,
            capacity: 4096,
        }
    }
}

/// Cumulative service counters, updated per request.
#[derive(Debug, Default)]
struct Metrics {
    requests: u64,
    errors: u64,
    functions: u64,
    /// Sum of per-request wall time — the denominator of `funcs_per_sec`
    /// (service time, not elapsed time, so concurrent connections don't
    /// deflate it).
    busy_ns: u128,
    /// Per-request latency samples for the percentile report.
    latency_ns: Vec<u64>,
}

/// A point-in-time snapshot of the service metrics.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Roll requests answered (including failed ones).
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Function definitions processed.
    pub functions: u64,
    /// Cross-request store counters.
    pub store: MemoStoreStats,
    /// Functions per second of service time.
    pub funcs_per_sec: f64,
    /// Median request latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_ns: u64,
}

impl Snapshot {
    /// The snapshot's `"cumulative"` JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"errors\": {}, \"functions\": {}, \
             \"store_hits\": {}, \"store_misses\": {}, \"hit_rate\": {:.4}, \
             \"entries\": {}, \"capacity\": {}, \"evictions\": {}, \
             \"funcs_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}}}",
            self.requests,
            self.errors,
            self.functions,
            self.store.hits,
            self.store.misses,
            self.store.hit_rate(),
            self.store.entries,
            self.store.capacity,
            self.store.evictions,
            self.funcs_per_sec,
            self.p50_ns,
            self.p99_ns
        )
    }
}

/// Nearest-rank percentile over an unsorted sample set.
fn percentile_ns(samples: &[u64], pct: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The persistent compilation service.
pub struct Server {
    pool: WorkerPool,
    store: MemoStore,
    metrics: Mutex<Metrics>,
}

impl Server {
    /// A server with `config.jobs` persistent workers and a store bounded
    /// to `config.capacity` entries.
    pub fn new(config: &ServerConfig) -> Self {
        Server {
            pool: WorkerPool::new(config.jobs),
            store: MemoStore::new(config.capacity),
            metrics: Mutex::new(Metrics::default()),
        }
    }

    /// The metrics guard, recovering from a poisoned mutex. A request
    /// thread that panics while holding the lock poisons it; treating that
    /// as fatal would fail every later request on a healthy server. The
    /// counters are monotone totals, so the worst a mid-update panic can
    /// leave behind is one half-recorded request.
    fn metrics(&self) -> std::sync::MutexGuard<'_, Metrics> {
        self.metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Worker threads in the persistent pool.
    pub fn worker_count(&self) -> usize {
        self.pool.worker_count()
    }

    /// Handles one NDJSON request line; returns the response line (no
    /// trailing newline) and whether the request asked the server to shut
    /// down.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        match parse_request(line) {
            Ok(req) => self.handle(&req),
            Err(e) => (
                format!(
                    "{{\"id\": null, \"ok\": false, \"error\": {}}}",
                    escaped(&e)
                ),
                false,
            ),
        }
    }

    /// Handles one parsed request.
    pub fn handle(&self, req: &Request) -> (String, bool) {
        match req {
            Request::Roll {
                id,
                module,
                options,
                ..
            } => (self.roll(id, module, options), false),
            Request::Stats { id } => (
                format!(
                    "{{\"id\": {}, \"ok\": true, \"cumulative\": {}}}",
                    escaped(id),
                    self.snapshot().to_json()
                ),
                false,
            ),
            Request::Shutdown { id } => (
                format!(
                    "{{\"id\": {}, \"ok\": true, \"shutdown\": true}}",
                    escaped(id)
                ),
                true,
            ),
        }
    }

    /// Rolls one module and renders the response line.
    fn roll(&self, id: &str, text: &str, options: &str) -> String {
        let start = Instant::now();
        let result = self.roll_inner(text, options);
        let wall_ns = start.elapsed().as_nanos();
        let mut m = self.metrics();
        m.requests += 1;
        m.busy_ns += wall_ns;
        m.latency_ns.push(wall_ns as u64);
        match result {
            Ok((printed, report)) => {
                m.functions += report.functions as u64;
                drop(m);
                let cumulative = self.snapshot().to_json();
                format!(
                    "{{\"id\": {id}, \"ok\": true, \"module\": {module}, \
                     \"stats\": {{\"rolled\": {rolled}, \"attempted\": {attempted}, \
                     \"size_before\": {before}, \"size_after\": {after}, \
                     \"reduction_percent\": {red:.2}}}, \
                     \"request\": {{\"functions\": {functions}, \"unique\": {unique}, \
                     \"cache_hits\": {cache_hits}, \"store_hits\": {sh}, \
                     \"store_misses\": {sm}, \"hit_rate\": {hr:.4}, \
                     \"wall_ns\": {wall_ns}}}, \
                     \"cumulative\": {cumulative}}}",
                    id = escaped(id),
                    module = escaped(&printed),
                    rolled = report.stats.rolled,
                    attempted = report.stats.attempted,
                    before = report.stats.size_before,
                    after = report.stats.size_after,
                    red = report.stats.reduction_percent(),
                    functions = report.functions,
                    unique = report.unique,
                    cache_hits = report.cache_hits,
                    sh = report.store_hits,
                    sm = report.store_misses,
                    hr = report.store_hit_rate(),
                )
            }
            Err(e) => {
                m.errors += 1;
                drop(m);
                format!(
                    "{{\"id\": {}, \"ok\": false, \"error\": {}}}",
                    escaped(id),
                    escaped(&e)
                )
            }
        }
    }

    /// Parse → verify → roll → print, against the shared pool and store.
    fn roll_inner(&self, text: &str, options: &str) -> Result<(String, DriverReport), String> {
        let opts =
            options_preset(options).ok_or_else(|| format!("unknown options preset {options:?}"))?;
        let mut module =
            parse_module(text).map_err(|e| format!("{}:{}: {}", e.line, e.col, e.message))?;
        verify_module(&module)
            .map_err(|errors| format!("module does not verify: {}", errors[0]))?;
        let report = roll_module_par_with(
            &mut module,
            &opts,
            &DriverOptions::default(),
            Some(&self.pool),
            Some(&self.store),
        );
        Ok((print_module(&module), report))
    }

    /// Current cumulative metrics.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics();
        let secs = m.busy_ns as f64 / 1e9;
        Snapshot {
            requests: m.requests,
            errors: m.errors,
            functions: m.functions,
            store: self.store.stats(),
            funcs_per_sec: if secs > 0.0 {
                m.functions as f64 / secs
            } else {
                0.0
            },
            p50_ns: percentile_ns(&m.latency_ns, 50.0),
            p99_ns: percentile_ns(&m.latency_ns, 99.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_reply;

    const ROLLABLE: &str = r#"
module "m"
global @a : [8 x i32] = zero
func @fill() -> void {
entry:
  %g0 = gep i32, @a, i64 0
  store i32 0, %g0
  %g1 = gep i32, @a, i64 1
  store i32 5, %g1
  %g2 = gep i32, @a, i64 2
  store i32 10, %g2
  %g3 = gep i32, @a, i64 3
  store i32 15, %g3
  %g4 = gep i32, @a, i64 4
  store i32 20, %g4
  %g5 = gep i32, @a, i64 5
  store i32 25, %g5
  ret
}
"#;

    fn roll_request(id: &str) -> String {
        Request::Roll {
            id: id.into(),
            module: ROLLABLE.into(),
            options: "default".into(),
            client: None,
        }
        .render()
    }

    #[test]
    fn identical_requests_hit_the_store() {
        let server = Server::new(&ServerConfig {
            jobs: 2,
            capacity: 64,
        });
        let (first, stop) = server.handle_line(&roll_request("r1"));
        assert!(!stop);
        let first = parse_reply(&first).unwrap();
        assert!(first.ok, "{:?}", first.error);
        assert_eq!(first.rolled, 1);
        assert_eq!((first.store_hits, first.store_misses), (0, 1));

        let (second, _) = server.handle_line(&roll_request("r2"));
        let second = parse_reply(&second).unwrap();
        assert!(second.ok);
        assert_eq!((second.store_hits, second.store_misses), (1, 0));
        assert_eq!(
            first.module, second.module,
            "cache-served output must be byte-identical"
        );
        assert!((second.cumulative_hit_rate - 0.5).abs() < 1e-9);

        let snap = server.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.functions, 2);
        assert!(snap.p50_ns > 0 && snap.p99_ns >= snap.p50_ns);
        assert!(snap.funcs_per_sec > 0.0);
    }

    #[test]
    fn errors_are_reported_per_request_and_counted() {
        let server = Server::new(&ServerConfig {
            jobs: 1,
            capacity: 8,
        });
        for (line, expect) in [
            ("{\"id\": \"b1\", \"module\": \"not ir\"}", "error"),
            ("{\"id\"", "id"),
            (
                "{\"id\": \"b2\", \"module\": \"module \\\"m\\\"\\n\", \"options\": \"turbo\"}",
                "preset",
            ),
        ] {
            let (resp, stop) = server.handle_line(line);
            assert!(!stop);
            let reply = parse_reply(&resp).unwrap();
            assert!(!reply.ok);
            assert!(
                reply.error.as_deref().unwrap_or("").contains(expect)
                    || !reply.error.as_deref().unwrap_or("").is_empty(),
                "{resp}"
            );
        }
        // The malformed line is not a roll request; the two bad rolls are.
        assert_eq!(server.snapshot().errors, 2);
    }

    #[test]
    fn stats_and_shutdown_commands_answer_in_protocol() {
        let server = Server::new(&ServerConfig {
            jobs: 1,
            capacity: 8,
        });
        let (resp, stop) = server.handle_line("{\"id\": \"s\", \"cmd\": \"stats\"}");
        assert!(!stop);
        let reply = parse_reply(&resp).unwrap();
        assert!(reply.ok && reply.id == "s");

        let (resp, stop) = server.handle_line("{\"id\": \"q\", \"cmd\": \"shutdown\"}");
        assert!(stop, "shutdown must stop the serving loop");
        assert!(parse_reply(&resp).unwrap().ok);
    }

    #[test]
    fn requests_survive_a_poisoned_metrics_lock() {
        let server = Server::new(&ServerConfig {
            jobs: 1,
            capacity: 8,
        });
        let (resp, _) = server.handle_line(&roll_request("before"));
        assert!(parse_reply(&resp).unwrap().ok);

        // A request thread that panics while holding the metrics lock —
        // the mid-request failure mode that used to take down every
        // later request with a "metrics lock" panic.
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let _guard = server.metrics.lock().unwrap();
                panic!("injected mid-request panic");
            });
            assert!(handle.join().is_err(), "injection thread must panic");
        });
        assert!(server.metrics.lock().is_err(), "lock must be poisoned");

        // Later roll and stats requests on the same server still succeed.
        let (resp, stop) = server.handle_line(&roll_request("after"));
        assert!(!stop);
        let reply = parse_reply(&resp).unwrap();
        assert!(reply.ok, "{:?}", reply.error);
        assert_eq!(reply.rolled, 1);

        let (resp, stop) = server.handle_line("{\"id\": \"s\", \"cmd\": \"stats\"}");
        assert!(!stop);
        assert!(parse_reply(&resp).unwrap().ok);

        let snap = server.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.errors, 0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&samples, 50.0), 50);
        assert_eq!(percentile_ns(&samples, 99.0), 99);
        assert_eq!(percentile_ns(&[7], 99.0), 7);
        assert_eq!(percentile_ns(&[], 50.0), 0);
    }
}
