//! Serve bench: replays a many-client workload against one [`Server`]
//! and writes `BENCH_serve.json` at the repository root.
//!
//! The workload is the evaluation corpus with controlled duplication:
//! every module (unrolled TSVC kernels plus an AnghaBench-like slice) is
//! submitted three times — one cold round, two warm rounds — as if three
//! clients compiled the same code, under the `validated` preset (the
//! service's home turf: a cold roll pays per-rewrite translation
//! validation, a store hit replays the already-validated body and its
//! verdict). The report separates cold and warm per-request latency
//! (p50/p99/mean), throughput (funcs/sec of service time), and the
//! cross-request cache hit rate; `rolag-serve --check-bench` validates
//! the schema and the acceptance floors (hit rate ≥ 0.5, warm p50 ≥ 2x
//! better than cold).

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use rolag_ir::printer::print_module;
use rolag_serve::proto::{parse_reply, Request};
use rolag_serve::{Server, ServerConfig};
use rolag_suites::angha::{generate, AnghaConfig};
use rolag_suites::tsvc::{all_kernels, build_kernel_module};
use rolag_transforms::{cleanup_module, cse_module, unroll_module};

/// The workload: one textual module per entry, pre-unrolled TSVC kernels
/// first, then the angha slice.
fn workload_modules() -> Vec<String> {
    let mut modules = Vec::new();
    for spec in all_kernels().iter().take(24) {
        let mut m = build_kernel_module(spec);
        unroll_module(&mut m, 8);
        cse_module(&mut m);
        cleanup_module(&mut m);
        modules.push(print_module(&m));
    }
    let corpus = generate(&AnghaConfig {
        seed: 0x5e7e,
        functions: 40,
    });
    for (_, _, m) in &corpus.entries {
        modules.push(print_module(m));
    }
    modules
}

struct Phase {
    latencies_ns: Vec<u64>,
    functions: u64,
    /// Rolled module text per request, for byte-identity checks between
    /// rounds (a store hit must reproduce the cold output exactly).
    outputs: Vec<String>,
}

impl Phase {
    fn percentile(&self, pct: f64) -> u64 {
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    fn mean_ns(&self) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        (self.latencies_ns.iter().map(|&n| n as u128).sum::<u128>()
            / self.latencies_ns.len() as u128) as u64
    }

    fn funcs_per_sec(&self) -> f64 {
        let secs = self.latencies_ns.iter().map(|&n| n as u128).sum::<u128>() as f64 / 1e9;
        if secs > 0.0 {
            self.functions as f64 / secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}, \"funcs_per_sec\": {:.1}}}",
            self.percentile(50.0),
            self.percentile(99.0),
            self.mean_ns(),
            self.funcs_per_sec()
        )
    }
}

/// Submits every module once, as `client`, and collects per-request
/// latency. Panics on any protocol-level failure — a bench over a broken
/// service would report nonsense.
fn run_round(server: &Server, modules: &[String], client: &str) -> Phase {
    let mut phase = Phase {
        latencies_ns: Vec::with_capacity(modules.len()),
        functions: 0,
        outputs: Vec::with_capacity(modules.len()),
    };
    for (i, text) in modules.iter().enumerate() {
        let line = Request::Roll {
            id: format!("{client}-{i}"),
            module: text.clone(),
            options: "validated".into(),
            client: Some(client.into()),
        }
        .render();
        let start = Instant::now();
        let (response, _) = server.handle_line(&line);
        phase.latencies_ns.push(start.elapsed().as_nanos() as u64);
        let reply = parse_reply(&response).expect("well-formed response");
        assert!(reply.ok, "request {client}-{i} failed: {:?}", reply.error);
        phase.functions += reply.functions;
        phase.outputs.push(reply.module.unwrap_or_default());
    }
    phase
}

fn main() {
    let modules = workload_modules();
    let server = Server::new(&ServerConfig {
        jobs: 0,
        capacity: 4096,
    });

    // Three clients submit the identical corpus: one cold round, two warm.
    let cold = run_round(&server, &modules, "client-cold");
    let warm1 = run_round(&server, &modules, "client-warm1");
    let warm2 = run_round(&server, &modules, "client-warm2");
    assert_eq!(warm1.outputs, cold.outputs, "warm replay diverged");
    assert_eq!(warm2.outputs, cold.outputs, "warm replay diverged");
    let warm = Phase {
        latencies_ns: [warm1.latencies_ns, warm2.latencies_ns].concat(),
        functions: warm1.functions + warm2.functions,
        outputs: Vec::new(),
    };

    // Eviction pressure: the same corpus against a store much smaller
    // than the working set, three rounds, so the clock hand sweeps every
    // shard and keys are evicted and re-inserted. The outputs must stay
    // byte-identical to the well-provisioned server's cold round — a
    // replayed re-inserted entry is indistinguishable from a cold roll.
    let pressure_capacity = 16;
    let small = Server::new(&ServerConfig {
        jobs: 0,
        capacity: pressure_capacity,
    });
    let mut pressure_rounds = Vec::new();
    for round in 1..=3 {
        pressure_rounds.push(run_round(&small, &modules, &format!("pressure-{round}")));
    }
    let pressure_snap = small.snapshot();
    assert!(
        pressure_snap.store.evictions > 0,
        "capacity {pressure_capacity} must evict under a {}-module working set",
        modules.len()
    );
    for (round, phase) in pressure_rounds.iter().enumerate() {
        assert_eq!(
            phase.outputs,
            cold.outputs,
            "pressure round {} diverged from the cold outputs",
            round + 1
        );
    }

    let snap = server.snapshot();
    let hit_rate = snap.store.hit_rate();
    let warm_speedup_p50 = cold.percentile(50.0) as f64 / warm.percentile(50.0).max(1) as f64;
    println!(
        "serve: {} modules x3, hit rate {:.3}, cold p50 {:.2} ms, warm p50 {:.2} ms ({warm_speedup_p50:.1}x)",
        modules.len(),
        hit_rate,
        cold.percentile(50.0) as f64 / 1e6,
        warm.percentile(50.0) as f64 / 1e6,
    );
    println!(
        "pressure: capacity {pressure_capacity}, hit rate {:.3}, {} evictions, outputs byte-identical",
        pressure_snap.store.hit_rate(),
        pressure_snap.store.evictions,
    );

    let mut json = String::from("{\n  \"bench\": \"serve\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"modules\": {}, \"functions\": {}, \"requests\": {}, \"duplication\": 3.0}},",
        modules.len(),
        cold.functions,
        3 * modules.len()
    );
    let _ = writeln!(json, "  \"cold\": {},", cold.to_json());
    let _ = writeln!(json, "  \"warm\": {},", warm.to_json());
    let _ = writeln!(json, "  \"hit_rate\": {hit_rate:.4},");
    let _ = writeln!(json, "  \"warm_speedup_p50\": {warm_speedup_p50:.3},");
    let _ = writeln!(
        json,
        "  \"pressure\": {{\"capacity\": {}, \"requests\": {}, \"hit_rate\": {:.4}, \
         \"evictions\": {}, \"entries\": {}, \"byte_identical\": true}},",
        pressure_capacity,
        3 * modules.len(),
        pressure_snap.store.hit_rate(),
        pressure_snap.store.evictions,
        pressure_snap.store.entries
    );
    let _ = writeln!(json, "  \"cumulative\": {}", snap.to_json());
    json.push_str("}\n");

    // CARGO_MANIFEST_DIR is crates/serve; the JSON belongs at the repo root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let path = root.join("BENCH_serve.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
